"""Trace exporters: JSONL event logs and Chrome trace-event JSON.

Two output formats, same event stream:

* **JSONL** — one event per line in the recorder's own schema
  (:meth:`TraceEvent.as_dict`), exact round-trip via :func:`read_jsonl`;
  grep/`jq`-friendly for scripted analysis.
* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` object
  format understood by Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``.  Track labels are mapped to numeric pids/tids with
  ``"M"`` metadata records, timestamps are converted to microseconds, and
  metric series are attached as ``"C"`` counter samples — so one file shows
  query lifecycles as async tracks, shards as processes, volumes/CPU as
  threads and MPL/queue-depth as counter lanes.

:func:`validate_chrome_trace` checks the structural rules of the format and
is used by tests and the CI observability job before uploading artifacts.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.events import (
    PH_ASYNC_BEGIN,
    PH_ASYNC_END,
    PH_COMPLETE,
    PH_COUNTER,
    PH_INSTANT,
    PH_METADATA,
    TraceEvent,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder, TraceRecorder

#: Bumped whenever the JSONL schema changes shape.
JSONL_SCHEMA_VERSION = 1

_EventSource = Union[FlightRecorder, TraceRecorder, Iterable[TraceEvent]]


def _events_of(source: _EventSource) -> List[TraceEvent]:
    if isinstance(source, FlightRecorder):
        return list(source.events)
    if isinstance(source, TraceRecorder):
        return list(source.events)
    return list(source)


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def to_jsonl(source: _EventSource) -> str:
    """Serialise events as JSONL: a header line, then one event per line."""
    events = _events_of(source)
    lines = [json.dumps({"schema": "repro-trace-jsonl",
                         "version": JSONL_SCHEMA_VERSION,
                         "events": len(events)})]
    lines.extend(json.dumps(event.as_dict(), sort_keys=True)
                 for event in events)
    return "\n".join(lines) + "\n"


def write_jsonl(source: _EventSource, path: str) -> int:
    """Write the JSONL log to ``path``; returns the number of events."""
    events = _events_of(source)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_jsonl(events))
    return len(events)


def read_jsonl(text_or_path: str, from_path: bool = False) -> List[TraceEvent]:
    """Parse a JSONL log back into events (exact round-trip of `to_jsonl`)."""
    if from_path:
        with open(text_or_path, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = text_or_path
    events: List[TraceEvent] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        if payload.get("schema") == "repro-trace-jsonl":
            continue
        events.append(TraceEvent.from_dict(payload))
    return events


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------

def _seconds_to_us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def chrome_trace(
    source: _EventSource,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Build a Perfetto-loadable Chrome trace-event object.

    When ``source`` is a :class:`FlightRecorder` its metrics registry is
    attached automatically (pass ``metrics`` explicitly to override).
    """
    if metrics is None and isinstance(source, FlightRecorder):
        metrics = source.metrics
    events = _events_of(source)

    pid_ids: Dict[str, int] = {}
    tid_ids: Dict[Tuple[str, str], int] = {}
    trace_events: List[Dict[str, object]] = []

    def pid_of(label: str) -> int:
        pid = pid_ids.get(label)
        if pid is None:
            pid = pid_ids[label] = len(pid_ids) + 1
            trace_events.append({
                "name": "process_name", "ph": PH_METADATA, "pid": pid,
                "tid": 0, "args": {"name": label},
            })
        return pid

    def tid_of(pid_label: str, tid_label: str) -> int:
        key = (pid_label, tid_label)
        tid = tid_ids.get(key)
        if tid is None:
            tid = tid_ids[key] = len(tid_ids) + 1
            trace_events.append({
                "name": "thread_name", "ph": PH_METADATA,
                "pid": pid_of(pid_label), "tid": tid,
                "args": {"name": tid_label},
            })
        return tid

    for event in events:
        record: Dict[str, object] = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.ph,
            "ts": _seconds_to_us(event.ts),
            "pid": pid_of(event.pid),
            "tid": tid_of(event.pid, event.tid),
        }
        if event.ph == PH_COMPLETE:
            record["dur"] = _seconds_to_us(event.dur)
        if event.ph == PH_INSTANT:
            record["s"] = "t"  # thread-scoped instant
        if event.ph in (PH_ASYNC_BEGIN, PH_ASYNC_END):
            record["id"] = event.id
        if event.args:
            record["args"] = dict(event.args)
        trace_events.append(record)

    if metrics is not None:
        counter_pid = pid_of("metrics")
        for name in metrics.names():
            for ts, value in metrics.series(name):
                trace_events.append({
                    "name": name,
                    "ph": PH_COUNTER,
                    "ts": _seconds_to_us(ts),
                    "pid": counter_pid,
                    "tid": 0,
                    "args": {"value": value},
                })

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs", "clock": "simulated"},
    }


def write_chrome_trace(
    source: _EventSource,
    path: str,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Write the Chrome trace JSON to ``path``; returns the payload."""
    payload = chrome_trace(source, metrics=metrics)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return payload


#: Phases that must carry a ``dur`` field.
_NEEDS_DUR = {PH_COMPLETE}
#: Phases that must carry an ``id`` field.
_NEEDS_ID = {PH_ASYNC_BEGIN, PH_ASYNC_END}
#: All phases the exporter may legally emit.
_KNOWN_PHASES = {PH_COMPLETE, PH_INSTANT, PH_ASYNC_BEGIN, PH_ASYNC_END,
                 PH_METADATA, PH_COUNTER}


def validate_chrome_trace(payload: Dict[str, object]) -> int:
    """Structurally validate a Chrome trace-event object.

    Checks the trace-event format rules Perfetto relies on: the
    ``traceEvents`` array exists, every record names a known phase, spans
    carry non-negative ``dur``, async events carry ``id``, timestamped
    records carry non-negative numeric ``ts`` and integer ``pid``/``tid``,
    and every referenced pid/tid has a matching metadata record.  Returns
    the number of non-metadata events; raises ``ValueError`` on the first
    violation.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload must contain a 'traceEvents' array")

    named_pids = set()
    named_tids = set()
    for index, record in enumerate(events):
        if not isinstance(record, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        if record.get("ph") == PH_METADATA:
            if record.get("name") == "process_name":
                named_pids.add(record.get("pid"))
            elif record.get("name") == "thread_name":
                named_tids.add((record.get("pid"), record.get("tid")))

    count = 0
    for index, record in enumerate(events):
        where = f"traceEvents[{index}]"
        ph = record.get("ph")
        if ph not in _KNOWN_PHASES:
            raise ValueError(f"{where}: unknown phase {ph!r}")
        if not isinstance(record.get("name"), str) or not record["name"]:
            raise ValueError(f"{where}: missing event name")
        if ph == PH_METADATA:
            continue
        count += 1
        ts = record.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where}: bad timestamp {ts!r}")
        pid = record.get("pid")
        tid = record.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            raise ValueError(f"{where}: pid/tid must be integers")
        if pid not in named_pids:
            raise ValueError(f"{where}: pid {pid} has no process_name metadata")
        if ph not in (PH_COUNTER,) and (pid, tid) not in named_tids:
            raise ValueError(f"{where}: tid {tid} has no thread_name metadata")
        if ph in _NEEDS_DUR:
            dur = record.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: complete event needs dur >= 0")
        if ph in _NEEDS_ID:
            if record.get("id") is None:
                raise ValueError(f"{where}: async event needs an id")
    return count
