"""Flight recorder: tracing, metric timelines and scheduler self-profiling.

The observability layer of the repo.  Everything here is opt-in: the run
entry points (:func:`repro.sim.runner.run_simulation`,
:func:`repro.service.server.run_service`,
:func:`repro.cluster.coordinator.run_cluster_service`) take an ``obs``
argument — an :class:`~repro.common.config.ObservabilityConfig` or a
pre-built :class:`FlightRecorder` — and with ``obs=None`` (the default) no
recorder exists and simulation outcomes are bit-for-bit identical to the
uninstrumented code.

* :mod:`repro.obs.events` / :mod:`repro.obs.recorder` -- typed trace events
  on the simulated clock, buffered by the :class:`FlightRecorder`;
* :mod:`repro.obs.metrics` -- counters/gauges/histograms sampled on the
  shared clock (queue depth, MPL, volume utilisation, hit rate, ...);
* :mod:`repro.obs.profile` -- :class:`SchedulerProfile`, the per-phase
  wall-clock breakdown of the event core;
* :mod:`repro.obs.export` -- JSONL and Perfetto-loadable Chrome trace-event
  JSON exporters plus a structural validator;
* :mod:`repro.obs.postmortem` -- always-on per-query
  :class:`LatencyBreakdown` (critical-path latency attribution; phase
  seconds sum exactly to end-to-end latency) and the per-class
  :class:`BlameReport` aggregation — the one subsystem here that is *on*
  by default, because its stamps are plain floats on existing events;
* :mod:`repro.obs.alerts` -- multi-window SLO error-budget burn-rate
  detectors and windowed utilisation threshold alerts over the run's busy
  timelines, rendered as a health digest naming the top-blamed phase.
"""

from typing import Optional

from repro.metrics.timeline import default_window, render_timeline
from repro.obs.alerts import (
    Alert,
    AlertPolicy,
    BurnRateRule,
    QueryCompletion,
    ThresholdRule,
    burn_rate_points,
    evaluate_alerts,
    render_health_digest,
    utilisation_points,
)
from repro.obs.events import TraceEvent
from repro.obs.export import (
    chrome_trace,
    read_jsonl,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.postmortem import (
    BREAKDOWN_PHASES,
    CONSERVATION_TOL,
    BlameReport,
    ClassBlame,
    LatencyBreakdown,
    assemble_cluster_breakdown,
    build_blame_report,
    build_breakdown,
    build_single_node_breakdown,
)
from repro.obs.profile import (
    PhaseStats,
    SchedulerProfile,
    render_scheduler_profile,
)
from repro.obs.recorder import (
    FlightRecorder,
    ObservabilityLike,
    TraceRecorder,
    build_flight_recorder,
)


def render_run_timelines(
    flight: FlightRecorder,
    t_end: Optional[float] = None,
    window_s: Optional[float] = None,
    title: str = "Run timelines",
) -> str:
    """Drill-down view of a traced run: every metric series, windowed.

    One row per time window, one column per recorded series (queue depths,
    MPL, volume utilisation, hit rate, starvation count), each cell the
    time-weighted mean (and peak) over the window — enough to localise an
    SLO violation to a window and component.  Respects the
    ``timeline_window_s`` knob of the recorder's config.
    """
    if flight.metrics is None:
        return "(metrics recording was disabled)"
    series = {
        name: flight.metrics.series(name) for name in flight.metrics.names()
    }
    if window_s is None:
        window_s = flight.config.timeline_window_s
    return render_timeline(series, window_s=window_s, t_end=t_end, title=title)


__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "FlightRecorder",
    "ObservabilityLike",
    "build_flight_recorder",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SchedulerProfile",
    "PhaseStats",
    "render_scheduler_profile",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "render_run_timelines",
    "render_timeline",
    "default_window",
    "LatencyBreakdown",
    "BlameReport",
    "ClassBlame",
    "build_breakdown",
    "build_single_node_breakdown",
    "assemble_cluster_breakdown",
    "build_blame_report",
    "BREAKDOWN_PHASES",
    "CONSERVATION_TOL",
    "Alert",
    "AlertPolicy",
    "BurnRateRule",
    "ThresholdRule",
    "QueryCompletion",
    "evaluate_alerts",
    "render_health_digest",
    "burn_rate_points",
    "utilisation_points",
]
