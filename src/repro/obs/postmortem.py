"""Always-on per-query latency attribution ("where did this query's time go").

Every completed query — single-node :class:`repro.sim.results.QueryResult`
and cluster :class:`repro.cluster.coordinator.ClusterQueryRecord` alike —
carries a :class:`LatencyBreakdown`: the query's end-to-end latency cut
into non-overlapping phases that sum back to the total, exactly.  Unlike
the flight recorder (opt-in, bounded buffer), breakdowns are *always on*:
they are assembled from timestamps the event cores already produce, cost a
handful of float additions per query, and never alter a scheduling
decision (the existing golden-trace fingerprints pin this).

Cluster queries are attributed along the **critical path**: the chain of
the sub-query whose gather completed the whole query — admission wait,
coordinator classify/scatter CPU, any hedge/re-scatter/orphan penalty,
scatter NIC, shard queue, the shard's own disk-seek/disk-transfer/CPU
split, then gather NIC and gather/merge CPU.  Because each stamp on that
chain is the *actual* event time, the phases telescope to the end-to-end
latency; any floating-point residual (sub-nanosecond) is folded into the
largest execution phase so the conservation law holds bit-tight.

:func:`build_blame_report` aggregates breakdowns into per-class blame
tables ("interactive p95 = 61% disk transfer, 22% admission wait") which
:func:`repro.service.slo.render_blame_table` renders and the alerting
engine (:mod:`repro.obs.alerts`) uses to name the top-blamed phase of a
firing alert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.metrics.stats import percentile

#: Breakdown phases in pipeline order (also presentation order).
BREAKDOWN_PHASES = (
    "admission_wait",
    "coordinator_cpu",
    "rescatter_wait",
    "orphan_wait",
    "hedge_wait",
    "scatter_nic",
    "shard_queue",
    "disk_seek",
    "disk_transfer",
    "cpu_execute",
    "gather_nic",
    "gather_cpu",
)

#: Phases measured inside a shard's (or the single node's) event core.
EXECUTION_PHASES = ("disk_seek", "disk_transfer", "cpu_execute")

#: Absolute tolerance of the conservation law ``sum(phases) == total``.
CONSERVATION_TOL = 1e-9

#: Largest bookkeeping residual the builders will silently fold away;
#: anything bigger is a real accounting bug and raises.
_RESIDUAL_TOL = 1e-6


@dataclass(frozen=True)
class LatencyBreakdown:
    """One query's end-to-end latency, cut into non-overlapping phases.

    ``total`` is the query's end-to-end latency (submission to completion);
    the twelve phase fields partition it exactly — :meth:`validate` asserts
    ``sum(phases) == total`` within :data:`CONSERVATION_TOL`.  Phases that
    a given mode never exercises (e.g. NIC hops on a single node, hedge
    penalties on a healthy run) are simply zero.
    """

    total: float = 0.0
    admission_wait: float = 0.0
    #: Coordinator classify + scatter-build CPU (cluster only).
    coordinator_cpu: float = 0.0
    #: Time between scatter-readiness and the critical copy's dispatch,
    #: when that copy was a re-scatter after a shard kill.
    rescatter_wait: float = 0.0
    #: Same, when the group waited orphaned for a repair (R=1 kills).
    orphan_wait: float = 0.0
    #: Same, when the critical copy was a hedge (covers the original's
    #: futile head start).
    hedge_wait: float = 0.0
    #: Coordinator NIC + owning shard NIC, scatter direction.
    scatter_nic: float = 0.0
    #: Delivered-to-started wait in the shard's pending buffer.
    shard_queue: float = 0.0
    #: Execution-time stalls attributed to disk positioning.
    disk_seek: float = 0.0
    #: Execution-time stalls attributed to disk data transfer.
    disk_transfer: float = 0.0
    #: CPU service time, including processor-sharing stretch.
    cpu_execute: float = 0.0
    #: Shard NIC + coordinator NIC, gather direction.
    gather_nic: float = 0.0
    #: Gather bookkeeping (plus final merge) on the coordinator CPU.
    gather_cpu: float = 0.0
    #: Shard the critical path ran on (``-1`` for single-node queries).
    critical_shard: int = -1
    #: How the critical copy was dispatched: ``"original"``,
    #: ``"rescatter"``, ``"orphan"`` or ``"hedge"``.
    origin: str = "original"

    def phase_seconds(self) -> Dict[str, float]:
        """Phase name -> seconds, in pipeline order."""
        return {name: getattr(self, name) for name in BREAKDOWN_PHASES}

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly view."""
        payload: Dict[str, object] = {"total": self.total}
        payload.update(self.phase_seconds())
        payload["critical_shard"] = self.critical_shard
        payload["origin"] = self.origin
        return payload

    def top_phase(self) -> Tuple[str, float]:
        """The largest phase and its share of the total (0.0 when idle)."""
        name = max(BREAKDOWN_PHASES, key=lambda phase: getattr(self, phase))
        seconds = getattr(self, name)
        if self.total <= 0.0:
            return name, 0.0
        return name, seconds / self.total

    def validate(self, end_to_end: Optional[float] = None,
                 where: str = "latency breakdown") -> None:
        """Assert the conservation law (and agreement with ``end_to_end``).

        Raises :class:`~repro.common.errors.SimulationError` when any phase
        is negative/non-finite or the phases do not sum to ``total`` within
        :data:`CONSERVATION_TOL`.
        """
        for name in BREAKDOWN_PHASES:
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0.0:
                raise SimulationError(
                    f"{where}: phase {name} is invalid ({value!r})"
                )
        total = math.fsum(self.phase_seconds().values())
        if abs(total - self.total) > CONSERVATION_TOL:
            raise SimulationError(
                f"{where}: phases sum to {total!r} but total is "
                f"{self.total!r} (residual {total - self.total:.3e})"
            )
        if end_to_end is not None and abs(self.total - end_to_end) > CONSERVATION_TOL:
            raise SimulationError(
                f"{where}: breakdown total {self.total!r} disagrees with "
                f"end-to-end latency {end_to_end!r}"
            )

    def render(self) -> str:
        """Multi-line text view of one query's breakdown (non-zero phases)."""
        lines = [f"end-to-end {self.total:.4f}s"]
        for name, seconds in self.phase_seconds().items():
            if seconds <= 0.0:
                continue
            share = seconds / self.total if self.total > 0 else 0.0
            lines.append(f"  {name:<16} {seconds:>9.4f}s  {share:>6.1%}")
        if self.critical_shard >= 0:
            lines.append(
                f"  critical path: shard {self.critical_shard} "
                f"({self.origin} dispatch)"
            )
        return "\n".join(lines)


def _fold_residual(
    total: float, phases: Dict[str, float], where: str
) -> Dict[str, float]:
    """Clamp sub-tolerance negatives and fold the float residual away.

    The residual is folded into the largest *execution* phase (falling
    back to the largest phase overall) so exact stamp differences like
    ``admission_wait`` stay exact.  A residual beyond ``_RESIDUAL_TOL`` is
    an accounting bug, not rounding, and raises.
    """
    for name, value in phases.items():
        if not math.isfinite(value):
            raise SimulationError(f"{where}: phase {name} is {value!r}")
        if value < 0.0:
            if value < -_RESIDUAL_TOL:
                raise SimulationError(
                    f"{where}: phase {name} is negative ({value!r})"
                )
            phases[name] = 0.0
    residual = total - math.fsum(phases.values())
    if abs(residual) > _RESIDUAL_TOL:
        raise SimulationError(
            f"{where}: breakdown loses {residual:.3e}s of the "
            f"{total!r}s end-to-end latency"
        )
    sinks = [name for name in EXECUTION_PHASES if phases.get(name, 0.0) > 0.0]
    sink = max(sinks or list(phases), key=lambda name: phases[name])
    folded = phases[sink] + residual
    phases[sink] = max(0.0, folded)
    return phases


def build_breakdown(
    total: float,
    where: str = "latency breakdown",
    critical_shard: int = -1,
    origin: str = "original",
    **phases: float,
) -> LatencyBreakdown:
    """Assemble a validated :class:`LatencyBreakdown` from raw phase seconds.

    Unnamed phases default to zero; tiny negative phases (epsilon slack in
    the event cores' time comparisons) are clamped and the floating-point
    residual is folded into the largest execution phase, so the returned
    breakdown satisfies ``sum(phases) == total`` within
    :data:`CONSERVATION_TOL` — or raises if the books genuinely disagree.
    """
    unknown = set(phases) - set(BREAKDOWN_PHASES)
    if unknown:
        raise SimulationError(f"{where}: unknown phases {sorted(unknown)}")
    filled = {name: phases.get(name, 0.0) for name in BREAKDOWN_PHASES}
    filled = _fold_residual(total, filled, where)
    breakdown = LatencyBreakdown(
        total=total,
        critical_shard=critical_shard,
        origin=origin,
        **filled,
    )
    breakdown.validate(where=where)
    return breakdown


def build_single_node_breakdown(
    total: float,
    admission_wait: float,
    disk_seek: float,
    disk_transfer: float,
    cpu_execute: float,
    where: str = "latency breakdown",
) -> LatencyBreakdown:
    """Fast-path builder for the four phases a single node ever produces.

    Semantically identical to :func:`build_breakdown` restricted to these
    phases (clamp sub-tolerance negatives, fold the float residual into the
    largest execution phase, raise on a real accounting gap) but without
    the generic dict plumbing — this runs once per completed query on the
    simulator's hot path, so it stays allocation-light.
    """
    for value in (admission_wait, disk_seek, disk_transfer, cpu_execute):
        if not math.isfinite(value) or value < -_RESIDUAL_TOL:
            raise SimulationError(f"{where}: invalid phase seconds {value!r}")
    if admission_wait < 0.0:
        admission_wait = 0.0
    if disk_seek < 0.0:
        disk_seek = 0.0
    if disk_transfer < 0.0:
        disk_transfer = 0.0
    if cpu_execute < 0.0:
        cpu_execute = 0.0
    residual = total - math.fsum(
        (admission_wait, disk_seek, disk_transfer, cpu_execute)
    )
    if residual < -_RESIDUAL_TOL or residual > _RESIDUAL_TOL:
        raise SimulationError(
            f"{where}: breakdown loses {residual:.3e}s of the "
            f"{total!r}s end-to-end latency"
        )
    # Same sink rule as _fold_residual: the largest strictly-positive
    # execution phase, ties broken in EXECUTION_PHASES order, falling back
    # to the largest phase overall (BREAKDOWN_PHASES order, so
    # admission_wait when everything is zero).
    if (
        disk_seek > 0.0
        and disk_seek >= disk_transfer
        and disk_seek >= cpu_execute
    ):
        disk_seek = max(0.0, disk_seek + residual)
    elif disk_transfer > 0.0 and disk_transfer >= cpu_execute:
        disk_transfer = max(0.0, disk_transfer + residual)
    elif cpu_execute > 0.0:
        cpu_execute = max(0.0, cpu_execute + residual)
    else:
        # All execution phases are exactly zero after clamping, so the
        # generic fallback (largest phase overall, first in
        # BREAKDOWN_PHASES order on ties) always lands on admission_wait.
        admission_wait = max(0.0, admission_wait + residual)
    return LatencyBreakdown(
        total=total,
        admission_wait=admission_wait,
        disk_seek=disk_seek,
        disk_transfer=disk_transfer,
        cpu_execute=cpu_execute,
    )


def assemble_cluster_breakdown(
    *,
    submit: float,
    admit: float,
    ready: float,
    dispatch: float,
    delivered: float,
    shard_start: float,
    shard_execution: LatencyBreakdown,
    shard_finish: float,
    gather_arrived: float,
    finish: float,
    critical_shard: int,
    origin: str = "original",
    where: str = "cluster latency breakdown",
) -> LatencyBreakdown:
    """Chain the critical sub-query's stamps into a whole-query breakdown.

    The stamps telescope — each phase is the difference of two consecutive
    event times on the critical path — so the phases sum to
    ``finish - submit`` exactly.  ``shard_execution`` is the critical
    sub-query's own single-node breakdown; only its execution phases are
    taken (they partition ``shard_finish - shard_start``), its admission
    side being re-derived from the coordinator's stamps.
    """
    wait = dispatch - ready
    wait_phase = {
        "original": "coordinator_cpu",  # always zero for originals
        "rescatter": "rescatter_wait",
        "orphan": "orphan_wait",
        "hedge": "hedge_wait",
    }.get(origin)
    if wait_phase is None:
        raise SimulationError(f"{where}: unknown dispatch origin {origin!r}")
    phases: Dict[str, float] = {
        "admission_wait": admit - submit,
        "coordinator_cpu": ready - admit,
        "scatter_nic": delivered - dispatch,
        "shard_queue": shard_start - delivered,
        "disk_seek": shard_execution.disk_seek,
        "disk_transfer": shard_execution.disk_transfer,
        "cpu_execute": shard_execution.cpu_execute,
        "gather_nic": gather_arrived - shard_finish,
        "gather_cpu": finish - gather_arrived,
    }
    phases[wait_phase] = phases.get(wait_phase, 0.0) + wait
    return build_breakdown(
        total=finish - submit,
        where=where,
        critical_shard=critical_shard,
        origin=origin,
        **phases,
    )


# --------------------------------------------------------------- blame tables
@dataclass(frozen=True)
class ClassBlame:
    """Aggregated phase blame for one workload class (or the whole run)."""

    query_class: str
    #: Completed queries aggregated.
    count: int
    #: Sum of end-to-end seconds over those queries.
    total_seconds: float
    #: Phase -> summed seconds over every query of the class.
    phase_seconds: Tuple[Tuple[str, float], ...]
    #: Class p95 end-to-end latency (the tail threshold).
    tail_threshold_s: float
    #: Queries at or above the class p95.
    tail_count: int
    tail_seconds: float
    #: Phase -> summed seconds over the tail queries only.
    tail_phase_seconds: Tuple[Tuple[str, float], ...]

    def shares(self) -> Dict[str, float]:
        """Phase share of all end-to-end seconds of the class."""
        if self.total_seconds <= 0.0:
            return {name: 0.0 for name, _ in self.phase_seconds}
        return {
            name: seconds / self.total_seconds
            for name, seconds in self.phase_seconds
        }

    def tail_shares(self) -> Dict[str, float]:
        """Phase share of the p95-tail queries' end-to-end seconds."""
        if self.tail_seconds <= 0.0:
            return {name: 0.0 for name, _ in self.tail_phase_seconds}
        return {
            name: seconds / self.tail_seconds
            for name, seconds in self.tail_phase_seconds
        }

    def top_phases(self, n: int = 3, tail: bool = True) -> List[Tuple[str, float]]:
        """The ``n`` most-blamed phases and their shares, largest first."""
        shares = self.tail_shares() if tail else self.shares()
        ranked = sorted(shares.items(), key=lambda item: -item[1])
        return [(name, share) for name, share in ranked[:n] if share > 0.0]

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "tail_threshold_s": self.tail_threshold_s,
            "tail_count": self.tail_count,
            "shares": self.shares(),
            "tail_shares": self.tail_shares(),
        }


@dataclass(frozen=True)
class BlameReport:
    """Per-class (plus overall) phase blame over one run's breakdowns."""

    overall: ClassBlame
    classes: Tuple[ClassBlame, ...] = ()

    def class_blame(self, query_class: str) -> ClassBlame:
        for blame in self.classes:
            if blame.query_class == query_class:
                return blame
        raise KeyError(
            f"no class {query_class!r} in blame report "
            f"(classes: {[blame.query_class for blame in self.classes]})"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "overall": self.overall.as_dict(),
            **{
                blame.query_class: blame.as_dict() for blame in self.classes
            },
        }


def _aggregate(
    label: str, samples: Sequence[Tuple[str, LatencyBreakdown]]
) -> ClassBlame:
    totals = [breakdown.total for _, breakdown in samples]
    threshold = percentile(totals, 95.0) if totals else 0.0
    tail = [
        breakdown
        for _, breakdown in samples
        if breakdown.total >= threshold - CONSERVATION_TOL
    ]
    phase_sums = {
        name: math.fsum(
            getattr(breakdown, name) for _, breakdown in samples
        )
        for name in BREAKDOWN_PHASES
    }
    tail_sums = {
        name: math.fsum(getattr(breakdown, name) for breakdown in tail)
        for name in BREAKDOWN_PHASES
    }
    return ClassBlame(
        query_class=label,
        count=len(samples),
        total_seconds=math.fsum(totals),
        phase_seconds=tuple(phase_sums.items()),
        tail_threshold_s=threshold,
        tail_count=len(tail),
        tail_seconds=math.fsum(breakdown.total for breakdown in tail),
        tail_phase_seconds=tuple(tail_sums.items()),
    )


def build_blame_report(
    samples: Iterable[Tuple[str, LatencyBreakdown]],
) -> BlameReport:
    """Aggregate ``(query_class, breakdown)`` samples into a blame report.

    Every breakdown is validated on the way in, so a blame report is also a
    whole-run conservation check.
    """
    collected = [
        (query_class, breakdown)
        for query_class, breakdown in samples
        if breakdown is not None
    ]
    for query_class, breakdown in collected:
        breakdown.validate(where=f"blame report ({query_class})")
    by_class: Dict[str, List[Tuple[str, LatencyBreakdown]]] = {}
    for query_class, breakdown in collected:
        by_class.setdefault(query_class, []).append((query_class, breakdown))
    return BlameReport(
        overall=_aggregate("all", collected),
        classes=tuple(
            _aggregate(name, group) for name, group in sorted(by_class.items())
        ),
    )
