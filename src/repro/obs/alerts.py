"""SLO burn-rate and utilisation-threshold alerting on simulated time.

The classic SRE recipe, run against the simulator's own clock: a latency
SLO defines an *error budget* (at most ``budget`` of queries may exceed
``threshold_s``), and an alert fires when the budget is being spent too
fast over **two** windows at once — a short window catching the spike and
a long window filtering noise (the "fast 5%/1h + slow 10%/6h" multiwindow
pattern, scaled to simulated seconds).  Threshold rules watch resource
busy-seconds timelines (shard disks, coordinator CPU/NIC) and fire when
windowed utilisation stays above a level.

Every input series is routed through
:func:`repro.metrics.timeline.validate_timeline` first — a NaN latency or
a backwards timestamp is a :class:`~repro.common.errors.SimulationError`,
never a silently wrong burn rate.  Firing alerts are emitted as
flight-recorder instants (when a recorder is attached) and folded into a
rendered **health digest** that names each alert's top-blamed latency
phase, courtesy of :mod:`repro.obs.postmortem`.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, SimulationError
from repro.metrics.timeline import validate_timeline
from repro.obs.postmortem import BREAKDOWN_PHASES, LatencyBreakdown


def _require_positive(name: str, value: float) -> None:
    if not math.isfinite(value) or value <= 0.0:
        raise ConfigurationError(f"{name} must be finite and > 0, got {value!r}")


@dataclass(frozen=True)
class BurnRateRule:
    """Multi-window error-budget burn-rate detector for one latency SLO.

    A completed query is *bad* when its end-to-end latency exceeds
    ``threshold_s``; the burn rate over a trailing window is
    ``bad_fraction / budget`` (1.0 = spending the budget exactly as fast
    as allowed).  The rule fires only while **both** windows burn above
    their thresholds, the standard fast+slow multiwindow guard.
    """

    name: str
    #: Latency SLO threshold in simulated seconds.
    threshold_s: float
    #: Tolerated bad-query fraction (the error budget).
    budget: float = 0.05
    fast_window_s: float = 60.0
    fast_burn: float = 6.0
    slow_window_s: float = 360.0
    slow_burn: float = 3.0
    #: Restrict to one workload class (``None`` = every query).
    query_class: Optional[str] = None

    def __post_init__(self) -> None:
        _require_positive("threshold_s", self.threshold_s)
        if not math.isfinite(self.budget) or not (0.0 < self.budget <= 1.0):
            raise ConfigurationError(
                f"budget must be in (0, 1], got {self.budget!r}"
            )
        _require_positive("fast_window_s", self.fast_window_s)
        _require_positive("slow_window_s", self.slow_window_s)
        _require_positive("fast_burn", self.fast_burn)
        _require_positive("slow_burn", self.slow_burn)
        if self.fast_window_s > self.slow_window_s:
            raise ConfigurationError(
                f"fast window ({self.fast_window_s}s) must not exceed the "
                f"slow window ({self.slow_window_s}s)"
            )


@dataclass(frozen=True)
class ThresholdRule:
    """Windowed-utilisation threshold on one busy-seconds timeline."""

    name: str
    #: Key into the cumulative busy-seconds series mapping
    #: (e.g. ``"shard1.disk"`` or ``"coordinator.cpu"``).
    series: str
    #: Utilisation level in [0, 1] that trips the rule.
    threshold: float
    #: Trailing window the utilisation is computed over.
    window_s: float = 10.0
    #: The level must hold at least this long before the rule fires.
    for_s: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.threshold) or not (0.0 < self.threshold <= 1.0):
            raise ConfigurationError(
                f"threshold must be in (0, 1], got {self.threshold!r}"
            )
        _require_positive("window_s", self.window_s)
        if not math.isfinite(self.for_s) or self.for_s < 0.0:
            raise ConfigurationError(
                f"for_s must be finite and >= 0, got {self.for_s!r}"
            )


@dataclass(frozen=True)
class AlertPolicy:
    """The rules one run is evaluated against."""

    burn_rules: Tuple[BurnRateRule, ...] = ()
    threshold_rules: Tuple[ThresholdRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "burn_rules", tuple(self.burn_rules))
        object.__setattr__(self, "threshold_rules", tuple(self.threshold_rules))
        names = [rule.name for rule in self.burn_rules] + [
            rule.name for rule in self.threshold_rules
        ]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate alert rule names in {names}")

    @property
    def is_empty(self) -> bool:
        return not self.burn_rules and not self.threshold_rules


@dataclass(frozen=True)
class Alert:
    """One firing episode of one rule, on the simulated clock."""

    rule: str
    #: ``"burn-rate"`` or ``"threshold"``.
    kind: str
    #: When the rule started firing.
    start: float
    #: When it stopped (the run's end for still-active alerts).
    end: float
    #: Whether the alert was still firing when the run ended.
    active: bool
    #: Peak burn-rate multiple (burn rules) or peak utilisation
    #: (threshold rules) during the episode.
    peak: float
    description: str
    #: Most-blamed latency phase among queries completing in the episode.
    top_phase: str = ""
    top_phase_share: float = 0.0

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)


@dataclass(frozen=True)
class QueryCompletion:
    """One completed query as the alert evaluator sees it."""

    finish_time: float
    query_class: str
    breakdown: LatencyBreakdown

    @property
    def end_to_end(self) -> float:
        return self.breakdown.total


# -------------------------------------------------------------- burn rates
def burn_rate_points(
    samples: Sequence[Tuple[float, float]],
    window_s: float,
    budget: float,
    where: str = "burn rate",
) -> List[Tuple[float, float]]:
    """Trailing-window burn rate evaluated at every sample instant.

    ``samples`` are ``(finish_time, bad)`` points with ``bad`` in {0, 1},
    sorted by time; they pass :func:`validate_timeline` first, so NaN
    indicators and backwards stamps raise instead of producing a NaN burn
    rate.  Returns ``(finish_time, burn_multiple)`` points.
    """
    _require_positive_sim(where, "window_s", window_s)
    _require_positive_sim(where, "budget", budget)
    points = validate_timeline(samples, where=where)
    times = [time for time, _ in points]
    bad_prefix = [0.0]
    for _, bad in points:
        if bad not in (0.0, 1.0):
            raise SimulationError(
                f"{where}: bad-query indicator must be 0 or 1, got {bad!r}"
            )
        bad_prefix.append(bad_prefix[-1] + bad)
    rates: List[Tuple[float, float]] = []
    for index, time in enumerate(times):
        first = bisect_left(times, time - window_s)
        total = index - first + 1
        bad = bad_prefix[index + 1] - bad_prefix[first]
        burn = (bad / total) / budget
        if not math.isfinite(burn):
            raise SimulationError(f"{where}: non-finite burn rate at t={time}")
        rates.append((time, burn))
    return rates


def _require_positive_sim(where: str, name: str, value: float) -> None:
    if not math.isfinite(value) or value <= 0.0:
        raise SimulationError(
            f"{where}: {name} must be finite and > 0, got {value!r}"
        )


def utilisation_points(
    busy: Sequence[Tuple[float, float]],
    window_s: float,
    where: str = "utilisation",
) -> List[Tuple[float, float]]:
    """Trailing-window utilisation from a cumulative busy-seconds timeline.

    ``busy`` points are ``(time, cumulative_busy_seconds)`` and must be
    monotone in both coordinates (validated).  Utilisation at a point is
    the busy-seconds gained over the trailing ``window_s``, divided by the
    window actually covered.
    """
    _require_positive_sim(where, "window_s", window_s)
    points = validate_timeline(busy, where=where)
    previous_busy = None
    for index, (time, value) in enumerate(points):
        if value < 0.0 or (previous_busy is not None and value < previous_busy):
            raise SimulationError(
                f"{where}: busy-seconds go backwards at index {index}"
            )
        previous_busy = value
    times = [time for time, _ in points]
    result: List[Tuple[float, float]] = []
    for index, (time, value) in enumerate(points):
        start = max(0.0, time - window_s)
        first = bisect_left(times, start)
        base = points[first - 1][1] if first > 0 else 0.0
        span = time - start
        if span <= 0.0:
            result.append((time, 0.0))
            continue
        result.append((time, min(1.0, (value - base) / span)))
    return result


def _episodes(
    flags: Sequence[Tuple[float, bool, float]], duration: float
) -> List[Tuple[float, float, bool, float]]:
    """Group ``(time, firing, level)`` evaluations into firing episodes.

    Returns ``(start, end, active_at_end, peak_level)`` tuples; an episode
    still firing at the last evaluation closes at ``duration``.
    """
    episodes: List[Tuple[float, float, bool, float]] = []
    start: Optional[float] = None
    peak = 0.0
    for time, firing, level in flags:
        if firing:
            if start is None:
                start = time
                peak = level
            else:
                peak = max(peak, level)
        elif start is not None:
            episodes.append((start, time, False, peak))
            start = None
    if start is not None:
        episodes.append((start, max(duration, start), True, peak))
    return episodes


def _top_blame(
    completions: Sequence[QueryCompletion],
    start: float,
    end: float,
    query_class: Optional[str] = None,
) -> Tuple[str, float]:
    """Most-blamed phase among queries completing within ``[start, end]``."""
    window = [
        completion.breakdown
        for completion in completions
        if start <= completion.finish_time <= end
        and (query_class is None or completion.query_class == query_class)
    ]
    if not window:
        return "", 0.0
    sums = {
        name: math.fsum(getattr(breakdown, name) for breakdown in window)
        for name in BREAKDOWN_PHASES
    }
    total = math.fsum(sums.values())
    name = max(sums, key=lambda phase: sums[phase])
    return name, (sums[name] / total if total > 0 else 0.0)


def evaluate_alerts(
    policy: AlertPolicy,
    completions: Sequence[QueryCompletion],
    busy_series: Mapping[str, Sequence[Tuple[float, float]]],
    duration: float,
    obs=None,
    where: str = "alerts",
) -> Tuple[Alert, ...]:
    """Evaluate one run against ``policy``; returns the firing episodes.

    ``completions`` carry finish time, class and breakdown of every
    completed query; ``busy_series`` maps resource names to cumulative
    busy-seconds timelines for the threshold rules.  Evaluation happens on
    the simulated clock (an alert's ``start`` is the completion/sample
    instant the rule first tripped, *inside* the incident window, not at
    the end of the run).  ``obs`` optionally receives ``alert.fire`` /
    ``alert.resolve`` flight-recorder instants.
    """
    ordered = sorted(completions, key=lambda completion: completion.finish_time)
    alerts: List[Alert] = []
    for rule in policy.burn_rules:
        matching = [
            completion
            for completion in ordered
            if rule.query_class is None
            or completion.query_class == rule.query_class
        ]
        samples = [
            (
                completion.finish_time,
                1.0 if completion.end_to_end > rule.threshold_s else 0.0,
            )
            for completion in matching
        ]
        label = f"{where}: burn rule {rule.name!r}"
        fast = burn_rate_points(
            samples, rule.fast_window_s, rule.budget, where=label
        )
        slow = burn_rate_points(
            samples, rule.slow_window_s, rule.budget, where=label
        )
        flags = [
            (
                time,
                fast_burn >= rule.fast_burn and slow_burn >= rule.slow_burn,
                fast_burn,
            )
            for (time, fast_burn), (_, slow_burn) in zip(fast, slow)
        ]
        for start, end, active, peak in _episodes(flags, duration):
            phase, share = _top_blame(ordered, start, end, rule.query_class)
            scope = rule.query_class or "all classes"
            alerts.append(
                Alert(
                    rule=rule.name,
                    kind="burn-rate",
                    start=start,
                    end=end,
                    active=active,
                    peak=peak,
                    description=(
                        f"{scope}: latency > {rule.threshold_s:g}s burning "
                        f"{peak:.1f}x the {rule.budget:.0%} error budget "
                        f"({rule.fast_window_s:g}s + {rule.slow_window_s:g}s "
                        f"windows)"
                    ),
                    top_phase=phase,
                    top_phase_share=share,
                )
            )
    for rule in policy.threshold_rules:
        if rule.series not in busy_series:
            raise SimulationError(
                f"{where}: threshold rule {rule.name!r} wants series "
                f"{rule.series!r}; available: {sorted(busy_series)}"
            )
        label = f"{where}: threshold rule {rule.name!r}"
        utilisation = utilisation_points(
            busy_series[rule.series], rule.window_s, where=label
        )
        flags = [
            (time, value >= rule.threshold, value)
            for time, value in utilisation
        ]
        for start, end, active, peak in _episodes(flags, duration):
            if end - start < rule.for_s:
                continue
            phase, share = _top_blame(ordered, start, end)
            alerts.append(
                Alert(
                    rule=rule.name,
                    kind="threshold",
                    start=start,
                    end=end,
                    active=active,
                    peak=peak,
                    description=(
                        f"{rule.series} utilisation peaked at {peak:.0%} "
                        f"(>= {rule.threshold:.0%} over {rule.window_s:g}s "
                        f"windows)"
                    ),
                    top_phase=phase,
                    top_phase_share=share,
                )
            )
    alerts.sort(key=lambda alert: (alert.start, alert.rule))
    if obs is not None:
        for alert in alerts:
            obs.instant(
                "alert.fire", "alerts", alert.start, "frontdoor", "alerts",
                rule=alert.rule, kind=alert.kind, peak=alert.peak,
                top_phase=alert.top_phase,
            )
            if not alert.active:
                obs.instant(
                    "alert.resolve", "alerts", alert.end,
                    "frontdoor", "alerts", rule=alert.rule,
                )
    return tuple(alerts)


def render_health_digest(
    alerts: Sequence[Alert], duration: float, title: str = "Health digest"
) -> str:
    """Human-readable incident summary of one run.

    One line per firing alert — window, peak, and the top-blamed latency
    phase — or a single all-clear line when nothing fired.
    """
    lines = [f"{title} ({duration:.1f}s simulated)"]
    if not alerts:
        lines.append("  OK - no alerts fired; error budget intact")
        return "\n".join(lines)
    for alert in alerts:
        state = "ACTIVE" if alert.active else "resolved"
        blame = ""
        if alert.top_phase:
            blame = (
                f" - top blame: {alert.top_phase} "
                f"({alert.top_phase_share:.0%})"
            )
        lines.append(
            f"  [{alert.kind}] {alert.rule}: fired {alert.start:.1f}s"
            f"-{alert.end:.1f}s ({state}, peak {alert.peak:.2f})"
            f"{blame}"
        )
        lines.append(f"      {alert.description}")
    return "\n".join(lines)
