"""Structured self-profiling of the event core.

PR 3 made scheduling sublinear; the evidence so far was two scalars on
:class:`~repro.sim.results.RunResult` (``scheduling_seconds`` /
``scheduling_calls``).  :class:`SchedulerProfile` breaks that wall-clock
down per event-core phase — ``select_chunk``, ``next_load``,
``complete_load``, ``finish_chunk``, ``register``, ``unregister`` — so a
regression can be localised to the decision that got slower, and adds the
flight recorder's own overhead so traced benchmark numbers stay honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.metrics.report import format_table

#: Event-core phases in presentation order.
PHASES = (
    "register",
    "select_chunk",
    "next_load",
    "complete_load",
    "finish_chunk",
    "unregister",
)


@dataclass
class PhaseStats:
    """Wall-clock accumulator for one event-core phase."""

    calls: int = 0
    seconds: float = 0.0

    @property
    def per_call_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0

    def merged(self, other: "PhaseStats") -> "PhaseStats":
        return PhaseStats(self.calls + other.calls, self.seconds + other.seconds)


@dataclass
class SchedulerProfile:
    """Per-phase wall-clock breakdown of one (or several merged) runs."""

    phases: Dict[str, PhaseStats] = field(default_factory=dict)
    recorder_overhead_seconds: float = 0.0

    @property
    def total_calls(self) -> int:
        return sum(stats.calls for stats in self.phases.values())

    @property
    def total_seconds(self) -> float:
        return sum(stats.seconds for stats in self.phases.values())

    @property
    def per_decision_seconds(self) -> float:
        calls = self.total_calls
        return self.total_seconds / calls if calls else 0.0

    def phase(self, name: str) -> PhaseStats:
        return self.phases.get(name, PhaseStats())

    @staticmethod
    def from_counts(
        calls: Dict[str, int],
        seconds: Dict[str, float],
        recorder_overhead_seconds: float = 0.0,
    ) -> "SchedulerProfile":
        phases = {
            name: PhaseStats(calls.get(name, 0), seconds.get(name, 0.0))
            for name in set(calls) | set(seconds)
        }
        return SchedulerProfile(phases, recorder_overhead_seconds)

    @staticmethod
    def merge(profiles: Iterable["SchedulerProfile"]) -> "SchedulerProfile":
        """Aggregate shard profiles into one cluster-level profile."""
        merged: Dict[str, PhaseStats] = {}
        overhead = 0.0
        for profile in profiles:
            overhead += profile.recorder_overhead_seconds
            for name, stats in profile.phases.items():
                merged[name] = merged.get(name, PhaseStats()).merged(stats)
        return SchedulerProfile(merged, overhead)

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "total_calls": self.total_calls,
            "total_seconds": self.total_seconds,
            "per_decision_seconds": self.per_decision_seconds,
            "recorder_overhead_seconds": self.recorder_overhead_seconds,
            "phases": {
                name: {
                    "calls": stats.calls,
                    "seconds": stats.seconds,
                    "per_call_seconds": stats.per_call_seconds,
                }
                for name, stats in sorted(self.phases.items())
            },
        }
        return payload


def _ordered_phases(profile: SchedulerProfile) -> List[Tuple[str, PhaseStats]]:
    ordered = [(name, profile.phases[name]) for name in PHASES
               if name in profile.phases]
    extras = sorted(set(profile.phases) - set(PHASES))
    ordered.extend((name, profile.phases[name]) for name in extras)
    return ordered


def render_scheduler_profile(
    profile: SchedulerProfile, title: str = "Scheduler profile"
) -> str:
    """Text table: one row per phase plus a total row."""
    rows = []
    for name, stats in _ordered_phases(profile):
        rows.append([
            name,
            str(stats.calls),
            f"{stats.seconds * 1e3:.3f}",
            f"{stats.per_call_seconds * 1e6:.3f}",
        ])
    rows.append([
        "total",
        str(profile.total_calls),
        f"{profile.total_seconds * 1e3:.3f}",
        f"{profile.per_decision_seconds * 1e6:.3f}",
    ])
    if profile.recorder_overhead_seconds:
        rows.append([
            "recorder overhead", "-",
            f"{profile.recorder_overhead_seconds * 1e3:.3f}", "-",
        ])
    return format_table(
        ["phase", "calls", "total ms", "per-call µs"], rows, title=title
    )
