"""Metric timelines sampled on the simulated clock.

Three instrument kinds, all recording ``(time, value)`` points:

* :class:`Counter` — monotone cumulative total (`inc`), e.g. queries shed;
* :class:`Gauge` — last-write-wins level (`set`), e.g. queue depth, MPL;
* :class:`Histogram` — individual observations (`observe`), e.g. per-class
  latency samples, summarised with the repo's type-7 percentiles.

A :class:`MetricsRegistry` creates instruments on first use so call sites
never pre-declare anything.  Points are appended in emission order; the
timeline helpers in :mod:`repro.metrics.timeline` validate monotonicity
when a series is rendered or windowed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.metrics.stats import LatencySummary


class Counter:
    """Cumulative monotone counter; each `inc` appends the running total."""

    __slots__ = ("name", "points", "_total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []
        self._total = 0.0

    @property
    def total(self) -> float:
        return self._total

    def inc(self, now: float, delta: float = 1.0) -> None:
        self._total += delta
        self.points.append((now, self._total))


class Gauge:
    """Last-write-wins level; each `set` appends the new value."""

    __slots__ = ("name", "points")

    def __init__(self, name: str) -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []

    @property
    def value(self) -> float:
        return self.points[-1][1] if self.points else 0.0

    def set(self, now: float, value: float) -> None:
        self.points.append((now, value))


class Histogram:
    """Raw observations with a percentile summary on demand."""

    __slots__ = ("name", "points")

    def __init__(self, name: str) -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []

    @property
    def count(self) -> int:
        return len(self.points)

    def observe(self, now: float, value: float) -> None:
        self.points.append((now, value))

    def summary(self) -> LatencySummary:
        return LatencySummary.from_values([value for _, value in self.points])


class MetricsRegistry:
    """Name-indexed instruments, created on first use.

    A name belongs to exactly one instrument kind; asking for the same name
    with a different kind raises ``KeyError`` rather than silently mixing
    semantics.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: str) -> None:
        for label, table in (("counter", self._counters),
                             ("gauge", self._gauges),
                             ("histogram", self._histograms)):
            if label != kind and name in table:
                raise KeyError(f"metric {name!r} already registered as {label}")

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, "counter")
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, "gauge")
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name, "histogram")
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def names(self) -> List[str]:
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    def series(self, name: str) -> List[Tuple[float, float]]:
        """The ``(time, value)`` points of any instrument by name."""
        for table in (self._counters, self._gauges, self._histograms):
            if name in table:
                return table[name].points
        raise KeyError(f"unknown metric {name!r}")

    def gauges(self) -> Dict[str, Gauge]:
        return dict(self._gauges)

    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly dump: final values plus histogram summaries."""
        payload: Dict[str, object] = {}
        for name, counter in sorted(self._counters.items()):
            payload[name] = counter.total
        for name, gauge in sorted(self._gauges.items()):
            payload[name] = gauge.value
        for name, histogram in sorted(self._histograms.items()):
            summary = histogram.summary()
            payload[name] = {
                "count": summary.count,
                "mean": summary.mean,
                "p50": summary.p50,
                "p95": summary.p95,
                "max": summary.maximum,
            }
        return payload
