"""Typed trace events of the flight recorder.

One simulation run produces a stream of :class:`TraceEvent` records on the
*simulated* clock.  The vocabulary follows the Chrome trace-event format
(so the exporters in :mod:`repro.obs.export` are a direct mapping):

* ``ph="X"`` — a *complete* span: something that occupied a track for
  ``dur`` seconds (a disk seek, a transfer, a CPU service interval);
* ``ph="i"`` — an *instant* event: a point decision (a load issued, a
  query shed, a starvation flip);
* ``ph="b"`` / ``ph="e"`` — an *async* begin/end pair keyed by ``id``:
  long-lived lifecycles that overlap freely (whole queries at the front
  door, per-shard sub-query executions).

Tracks are labelled, not numbered: ``pid`` names the component owning the
event (``"frontdoor"``, ``"service"``, ``"shard0"``...) and ``tid`` the
lane within it (``"vol0"``, ``"cpu"``, ``"abm"``, ``"admission"``).  The
Chrome exporter maps labels onto numeric pids/tids and emits the matching
metadata records, so Perfetto shows shards as processes and volumes as
threads.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Chrome trace-event phases used by the recorder.
PH_COMPLETE = "X"
PH_INSTANT = "i"
PH_ASYNC_BEGIN = "b"
PH_ASYNC_END = "e"
#: Emitted only by the exporter (track metadata, counter samples).
PH_METADATA = "M"
PH_COUNTER = "C"

#: Event categories, one per instrumented layer.
CAT_QUERY = "query"      #: whole-query lifecycle at the front door
CAT_EXEC = "exec"        #: per-simulator (sub-)query execution
CAT_FRONTDOOR = "frontdoor"
CAT_ADMISSION = "admission"
CAT_CLUSTER = "cluster"
CAT_CPU = "cpu"
CAT_DISK = "disk"
CAT_ABM = "abm"


class TraceEvent:
    """One flight-recorder event on the simulated clock.

    A hand-rolled slotted class rather than a dataclass: events are
    constructed on the simulator's hot path (one per disk span, chunk
    delivery, queue transition...), and ``__slots__`` plus a plain
    ``__init__`` keep the per-event cost a fraction of a frozen dataclass's.
    Treat instances as immutable.

    Attributes
    ----------
    name:
        Event name, dot-scoped by layer (``"disk.seek"``, ``"abm.evict"``).
    cat:
        Category (one of the ``CAT_*`` constants) — the layer that emitted it.
    ph:
        Phase: ``"X"`` (complete span), ``"i"`` (instant), ``"b"``/``"e"``
        (async begin/end).
    ts:
        Simulated time of the event (seconds; span start for ``"X"``).
    pid:
        Process-track label (component: ``"service"``, ``"shard2"``, ...).
    tid:
        Thread-track label within the process (``"vol0"``, ``"cpu"``, ...).
    dur:
        Span duration in seconds (``"X"`` events only).
    id:
        Async-track key (``"b"``/``"e"`` events only) — the query id.
    args:
        Free-form payload (chunk ids, classes, byte counts, ...).
    """

    __slots__ = ("name", "cat", "ph", "ts", "pid", "tid", "dur", "id", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        ph: str,
        ts: float,
        pid: str,
        tid: str,
        dur: float = 0.0,
        id: Optional[int] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.pid = pid
        self.tid = tid
        self.dur = dur
        self.id = id
        self.args = {} if args is None else args

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (
            self.name == other.name
            and self.cat == other.cat
            and self.ph == other.ph
            and self.ts == other.ts
            and self.pid == other.pid
            and self.tid == other.tid
            and self.dur == other.dur
            and self.id == other.id
            and self.args == other.args
        )

    def __repr__(self) -> str:
        return (
            f"TraceEvent(name={self.name!r}, cat={self.cat!r}, "
            f"ph={self.ph!r}, ts={self.ts!r}, pid={self.pid!r}, "
            f"tid={self.tid!r}, dur={self.dur!r}, id={self.id!r}, "
            f"args={self.args!r})"
        )

    @property
    def end(self) -> float:
        """Span end time (``ts`` itself for non-span events)."""
        return self.ts + self.dur

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for the JSONL exporter (exact round-trip)."""
        payload: Dict[str, object] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.ph == PH_COMPLETE:
            payload["dur"] = self.dur
        if self.id is not None:
            payload["id"] = self.id
        if self.args:
            payload["args"] = dict(self.args)
        return payload

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "TraceEvent":
        """Rebuild an event from its :meth:`as_dict` form."""
        return TraceEvent(
            name=str(payload["name"]),
            cat=str(payload["cat"]),
            ph=str(payload["ph"]),
            ts=float(payload["ts"]),  # type: ignore[arg-type]
            pid=str(payload["pid"]),
            tid=str(payload["tid"]),
            dur=float(payload.get("dur", 0.0)),  # type: ignore[arg-type]
            id=(None if payload.get("id") is None else int(payload["id"])),  # type: ignore[arg-type]
            args=dict(payload.get("args", {})),  # type: ignore[arg-type]
        )
