"""The flight recorder: bounded trace buffer + metrics registry.

:class:`TraceRecorder` is an append-only, bounded buffer of
:class:`~repro.obs.events.TraceEvent` records.  :class:`FlightRecorder`
bundles a trace recorder with a :class:`~repro.obs.metrics.MetricsRegistry`
and is the single handle threaded through the stack: the front door,
admission controller, cluster coordinator, event core, disk models and ABMs
all hold an ``Optional[FlightRecorder]`` and guard every emission with a
``None`` check, so a disabled recorder costs one attribute test per
potential event and changes no simulation state whatsoever.

The recorder also accounts for its own cost: one emission in every
``_OVERHEAD_SAMPLE`` is wall-clock measured and scaled up into
:attr:`FlightRecorder.overhead_seconds`, so benchmark runs can report
tracing overhead honestly without paying two clock reads per event.
"""

from __future__ import annotations

import time as _time
from typing import List, Optional, Union

from repro.common.config import ObservabilityConfig
from repro.obs.events import (
    PH_ASYNC_BEGIN,
    PH_ASYNC_END,
    PH_COMPLETE,
    PH_INSTANT,
    TraceEvent,
)
from repro.obs.metrics import MetricsRegistry


class TraceRecorder:
    """Bounded, append-only buffer of trace events.

    Events past ``max_events`` are counted in :attr:`dropped` instead of
    stored, so a runaway run degrades to a truncated trace rather than
    unbounded memory growth.
    """

    __slots__ = ("events", "max_events", "dropped")

    def __init__(self, max_events: int = 1_000_000) -> None:
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, event: TraceEvent) -> None:
        if len(self.events) < self.max_events:
            self.events.append(event)
        else:
            self.dropped += 1

    def instant(self, name: str, cat: str, ts: float, pid: str, tid: str,
                **args: object) -> None:
        self.emit(TraceEvent(name=name, cat=cat, ph=PH_INSTANT, ts=ts,
                             pid=pid, tid=tid, args=args))

    def complete(self, name: str, cat: str, ts: float, dur: float, pid: str,
                 tid: str, **args: object) -> None:
        self.emit(TraceEvent(name=name, cat=cat, ph=PH_COMPLETE, ts=ts,
                             dur=dur, pid=pid, tid=tid, args=args))

    def async_begin(self, name: str, cat: str, ts: float, id: int, pid: str,
                    tid: str, **args: object) -> None:
        self.emit(TraceEvent(name=name, cat=cat, ph=PH_ASYNC_BEGIN, ts=ts,
                             id=id, pid=pid, tid=tid, args=args))

    def async_end(self, name: str, cat: str, ts: float, id: int, pid: str,
                  tid: str, **args: object) -> None:
        self.emit(TraceEvent(name=name, cat=cat, ph=PH_ASYNC_END, ts=ts,
                             id=id, pid=pid, tid=tid, args=args))


#: One emission in every this-many is wall-clock measured (and scaled up)
#: for the overhead accounting; the rest skip the clock reads entirely.
_OVERHEAD_SAMPLE = 16


class FlightRecorder:
    """One recorder per run: trace events + metric timelines + overhead.

    Built from an :class:`~repro.common.config.ObservabilityConfig`; either
    half (tracing, metrics) can be switched off independently, in which case
    the corresponding attribute is ``None`` and the convenience emitters
    below become no-ops.

    :attr:`overhead_seconds` is a sampled estimate: every
    ``_OVERHEAD_SAMPLE``-th emission is timed and counted at the sampling
    weight, which keeps the recorder itself cheap enough to stay within the
    traced-run overhead budget on small runs.
    """

    __slots__ = ("config", "trace", "metrics", "overhead_seconds", "_emissions")

    def __init__(self, config: Optional[ObservabilityConfig] = None) -> None:
        self.config = config if config is not None else ObservabilityConfig()
        self.trace: Optional[TraceRecorder] = (
            TraceRecorder(self.config.max_trace_events)
            if self.config.trace else None
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if self.config.metrics else None
        )
        #: Wall-clock seconds spent inside the recorder itself (sampled).
        self.overhead_seconds = 0.0
        self._emissions = 0

    # -- trace emitters (no-ops when tracing is off) ---------------------

    def instant(self, name: str, cat: str, ts: float, pid: str, tid: str,
                **args: object) -> None:
        trace = self.trace
        if trace is None:
            return
        self._emissions += 1
        if self._emissions % _OVERHEAD_SAMPLE:
            trace.emit(TraceEvent(name, cat, PH_INSTANT, ts, pid, tid, args=args))
        else:
            started = _time.perf_counter()
            trace.emit(TraceEvent(name, cat, PH_INSTANT, ts, pid, tid, args=args))
            self.overhead_seconds += (
                (_time.perf_counter() - started) * _OVERHEAD_SAMPLE
            )

    def complete(self, name: str, cat: str, ts: float, dur: float, pid: str,
                 tid: str, **args: object) -> None:
        trace = self.trace
        if trace is None:
            return
        self._emissions += 1
        if self._emissions % _OVERHEAD_SAMPLE:
            trace.emit(TraceEvent(name, cat, PH_COMPLETE, ts, pid, tid,
                                  dur=dur, args=args))
        else:
            started = _time.perf_counter()
            trace.emit(TraceEvent(name, cat, PH_COMPLETE, ts, pid, tid,
                                  dur=dur, args=args))
            self.overhead_seconds += (
                (_time.perf_counter() - started) * _OVERHEAD_SAMPLE
            )

    def async_begin(self, name: str, cat: str, ts: float, id: int, pid: str,
                    tid: str, **args: object) -> None:
        trace = self.trace
        if trace is None:
            return
        self._emissions += 1
        if self._emissions % _OVERHEAD_SAMPLE:
            trace.emit(TraceEvent(name, cat, PH_ASYNC_BEGIN, ts, pid, tid,
                                  id=id, args=args))
        else:
            started = _time.perf_counter()
            trace.emit(TraceEvent(name, cat, PH_ASYNC_BEGIN, ts, pid, tid,
                                  id=id, args=args))
            self.overhead_seconds += (
                (_time.perf_counter() - started) * _OVERHEAD_SAMPLE
            )

    def async_end(self, name: str, cat: str, ts: float, id: int, pid: str,
                  tid: str, **args: object) -> None:
        trace = self.trace
        if trace is None:
            return
        self._emissions += 1
        if self._emissions % _OVERHEAD_SAMPLE:
            trace.emit(TraceEvent(name, cat, PH_ASYNC_END, ts, pid, tid,
                                  id=id, args=args))
        else:
            started = _time.perf_counter()
            trace.emit(TraceEvent(name, cat, PH_ASYNC_END, ts, pid, tid,
                                  id=id, args=args))
            self.overhead_seconds += (
                (_time.perf_counter() - started) * _OVERHEAD_SAMPLE
            )

    # -- metric emitters (no-ops when metrics are off) -------------------

    def set_gauge(self, name: str, now: float, value: float) -> None:
        metrics = self.metrics
        if metrics is None:
            return
        self._emissions += 1
        if self._emissions % _OVERHEAD_SAMPLE:
            metrics.gauge(name).set(now, value)
        else:
            started = _time.perf_counter()
            metrics.gauge(name).set(now, value)
            self.overhead_seconds += (
                (_time.perf_counter() - started) * _OVERHEAD_SAMPLE
            )

    def inc_counter(self, name: str, now: float, delta: float = 1.0) -> None:
        metrics = self.metrics
        if metrics is None:
            return
        self._emissions += 1
        if self._emissions % _OVERHEAD_SAMPLE:
            metrics.counter(name).inc(now, delta)
        else:
            started = _time.perf_counter()
            metrics.counter(name).inc(now, delta)
            self.overhead_seconds += (
                (_time.perf_counter() - started) * _OVERHEAD_SAMPLE
            )

    def observe(self, name: str, now: float, value: float) -> None:
        metrics = self.metrics
        if metrics is None:
            return
        self._emissions += 1
        if self._emissions % _OVERHEAD_SAMPLE:
            metrics.histogram(name).observe(now, value)
        else:
            started = _time.perf_counter()
            metrics.histogram(name).observe(now, value)
            self.overhead_seconds += (
                (_time.perf_counter() - started) * _OVERHEAD_SAMPLE
            )

    # -- introspection ---------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded trace events (empty when tracing is off)."""
        return [] if self.trace is None else self.trace.events

    def events_named(self, name: str) -> List[TraceEvent]:
        return [event for event in self.events if event.name == name]

    def summary_lines(self) -> List[str]:
        """Human-readable one-liners about what the recorder captured."""
        lines = []
        if self.trace is not None:
            detail = f"{len(self.trace.events)} trace events"
            if self.trace.dropped:
                detail += f" ({self.trace.dropped} dropped at cap)"
            lines.append(detail)
        if self.metrics is not None:
            lines.append(f"{len(self.metrics.names())} metric series")
        lines.append(f"recorder overhead {self.overhead_seconds * 1e3:.2f} ms")
        return lines


#: Anything the entry points accept as an observability argument.
ObservabilityLike = Union[ObservabilityConfig, FlightRecorder, None]


def build_flight_recorder(obs: ObservabilityLike) -> Optional[FlightRecorder]:
    """Normalise the ``obs`` argument of the run entry points.

    ``None`` (or a disabled config) yields ``None`` — the zero-overhead
    path.  A config builds a fresh recorder; an existing
    :class:`FlightRecorder` is passed through so one recorder can span
    multiple runs (the cluster path shares one across shards).
    """
    if obs is None:
        return None
    if isinstance(obs, FlightRecorder):
        return obs
    if isinstance(obs, ObservabilityConfig):
        if not obs.enabled:
            return None
        return FlightRecorder(obs)
    raise TypeError(
        f"obs must be ObservabilityConfig, FlightRecorder or None, "
        f"got {type(obs).__name__}"
    )
