"""A small execution session tying tables, scans and the ABM together.

The session demonstrates the full Cooperative Scans data path on real
in-memory data: several queries register their chunk needs with an Active
Buffer Manager, the ABM decides the load order and sharing, and each query's
``CScan`` then iterates its chunks in exactly the delivery order the ABM
chose.  Disk timing is not modelled here (that is the simulator's job); what
the session shows is the *data correctness* of out-of-order delivery and the
I/O sharing achieved (loads vs. logical chunk reads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import EngineError
from repro.core.abm import ActiveBufferManager
from repro.core.cscan import ScanRequest
from repro.core.policies import make_policy
from repro.engine.operators import CScan, Scan
from repro.engine.table import ColumnTable


@dataclass
class CooperativeRun:
    """Outcome of driving a set of queries through the ABM."""

    #: Delivery order per query id (the order CScan will read chunks in).
    delivery_orders: Dict[int, List[int]]
    #: Total number of chunk loads the ABM issued.
    loads: int
    #: Total number of chunk consumptions across all queries.
    chunk_reads: int
    #: Scheduling policy used.
    policy: str

    @property
    def sharing_factor(self) -> float:
        """Average number of queries served by each loaded chunk."""
        if self.loads == 0:
            return 0.0
        return self.chunk_reads / self.loads


class Session:
    """Holds named in-memory tables and builds (cooperative) scans over them."""

    def __init__(self) -> None:
        self._tables: Dict[str, ColumnTable] = {}

    # ------------------------------------------------------------ catalogue
    def register_table(self, table: ColumnTable) -> None:
        """Register a table under its name."""
        if table.name in self._tables:
            raise EngineError(f"table {table.name!r} already registered")
        self._tables[table.name] = table

    def table(self, name: str) -> ColumnTable:
        """Look up a registered table."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise EngineError(f"unknown table {name!r}") from exc

    def table_names(self) -> List[str]:
        """Names of all registered tables."""
        return list(self._tables)

    # ----------------------------------------------------------------- scans
    def scan(
        self,
        table: str,
        columns: Optional[Sequence[str]] = None,
        chunks: Optional[Sequence[int]] = None,
    ) -> Scan:
        """A plain in-order scan over a registered table."""
        return Scan(self.table(table), columns=columns, chunks=chunks)

    def cscan(
        self,
        table: str,
        delivery_order: Sequence[int],
        columns: Optional[Sequence[str]] = None,
    ) -> CScan:
        """A cooperative scan reading chunks in an explicit delivery order."""
        return CScan(self.table(table), delivery_order, columns=columns)

    # ------------------------------------------------------------------ ABM
    def run_cooperative(
        self,
        table: str,
        requests: Sequence[ScanRequest],
        policy: str = "relevance",
        buffer_chunks: Optional[int] = None,
    ) -> CooperativeRun:
        """Drive concurrent scan requests through a live ABM.

        I/O and CPU are treated as instantaneous (a logical clock advances by
        one per ABM interaction); the result records each query's chunk
        delivery order and the sharing achieved.  Use the returned orders with
        :meth:`cscan` to actually read the data.
        """
        column_table = self.table(table)
        if not requests:
            raise EngineError("run_cooperative needs at least one request")
        capacity = buffer_chunks or max(2, column_table.num_chunks // 4)
        abm = ActiveBufferManager(
            num_chunks=column_table.num_chunks,
            capacity_chunks=capacity,
            policy=make_policy(policy),
            chunk_bytes=1,
        )
        clock = 0.0
        for request in requests:
            for chunk in request.chunks:
                if not 0 <= chunk < column_table.num_chunks:
                    raise EngineError(
                        f"request {request.name!r} asks for chunk {chunk} outside "
                        f"table {table!r}"
                    )
            abm.register(request, clock)
        pending = {request.query_id: request for request in requests}
        orders: Dict[int, List[int]] = {request.query_id: [] for request in requests}
        chunk_reads = 0
        # Round-robin the queries; when nobody can make progress, let the ABM
        # load the next chunk (instantaneously).
        guard = 0
        limit = 10 * sum(len(request.chunks) for request in requests) + 100
        while pending:
            guard += 1
            if guard > limit:
                raise EngineError("cooperative run did not converge (policy livelock)")
            progressed = False
            for query_id in list(pending):
                clock += 1.0
                chunk = abm.select_chunk(query_id, clock)
                if chunk is None:
                    continue
                progressed = True
                orders[query_id].append(chunk)
                chunk_reads += 1
                abm.finish_chunk(query_id, clock)
                if abm.handle(query_id).finished:
                    abm.unregister(query_id, clock)
                    del pending[query_id]
            if pending and not progressed:
                clock += 1.0
                operation = abm.next_load(clock)
                if operation is None:
                    raise EngineError(
                        "ABM refused to load data while queries are blocked"
                    )
                abm.complete_load(operation, clock)
        return CooperativeRun(
            delivery_orders=orders,
            loads=abm.io_requests,
            chunk_reads=chunk_reads,
            policy=policy,
        )
