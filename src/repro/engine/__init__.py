"""In-memory query engine with out-of-order-aware operators.

The simulator (:mod:`repro.sim`) studies *when* chunks are delivered; this
package shows *what happens to the data*, which is where Section 7.2 of the
paper becomes relevant: out-of-order delivery is harmless for most physical
operators (selection, projection, hash aggregation) but order-aware operators
— ordered aggregation and merge join — need the chunk-aware adaptations
implemented here.

Components:

* :mod:`repro.engine.table` -- :class:`ColumnTable`, an in-memory chunked
  column table over numpy arrays;
* :mod:`repro.engine.expressions` -- a small expression tree evaluated over
  chunk batches (comparisons, arithmetic, boolean logic);
* :mod:`repro.engine.operators` -- Volcano-style operators: ``Scan``,
  ``CScan`` (arbitrary delivery order), ``Select``, ``Project``,
  ``HashAggregate``;
* :mod:`repro.engine.ordered_agg` -- chunk-aware ordered aggregation with
  border-group bookkeeping (Section 7.2);
* :mod:`repro.engine.merge_join` -- classic merge join plus the Cooperative
  Merge Join over join-index clustered tables (Section 7.2);
* :mod:`repro.engine.session` -- a small session tying tables, scans and the
  Active Buffer Manager together.
"""

from repro.engine.table import ChunkBatch, ColumnTable
from repro.engine.expressions import (
    Expression,
    col,
    const,
    BinaryExpression,
    ComparisonExpression,
    BooleanExpression,
)
from repro.engine.operators import (
    Operator,
    Scan,
    CScan,
    Select,
    Project,
    HashAggregate,
    AggregateSpec,
    collect,
)
from repro.engine.ordered_agg import OrderedAggregate
from repro.engine.merge_join import MergeJoin, CooperativeMergeJoin, build_join_index
from repro.engine.session import Session

__all__ = [
    "ChunkBatch",
    "ColumnTable",
    "Expression",
    "col",
    "const",
    "BinaryExpression",
    "ComparisonExpression",
    "BooleanExpression",
    "Operator",
    "Scan",
    "CScan",
    "Select",
    "Project",
    "HashAggregate",
    "AggregateSpec",
    "collect",
    "OrderedAggregate",
    "MergeJoin",
    "CooperativeMergeJoin",
    "build_join_index",
    "Session",
]
