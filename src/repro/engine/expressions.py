"""A small expression tree evaluated over chunk batches.

Expressions are built from column references and constants with overloaded
operators, e.g.::

    predicate = (col("l_shipdate") >= 8766) & (col("l_discount") > 0.05)
    revenue = col("l_extendedprice") * col("l_discount")

Evaluation happens per :class:`repro.engine.table.ChunkBatch` and is fully
vectorised with numpy, in the spirit of MonetDB/X100's vectorised execution.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

import numpy as np

from repro.common.errors import EngineError
from repro.engine.table import ChunkBatch

Number = Union[int, float]


class Expression:
    """Base class of all expressions."""

    def evaluate(self, batch: ChunkBatch) -> np.ndarray:
        """Evaluate the expression over a batch, returning a numpy array."""
        raise NotImplementedError

    def required_columns(self) -> set:
        """Columns the expression reads (used to build scan column lists)."""
        raise NotImplementedError

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, other: "ExpressionLike") -> "BinaryExpression":
        return BinaryExpression("+", self, wrap(other))

    def __sub__(self, other: "ExpressionLike") -> "BinaryExpression":
        return BinaryExpression("-", self, wrap(other))

    def __mul__(self, other: "ExpressionLike") -> "BinaryExpression":
        return BinaryExpression("*", self, wrap(other))

    def __truediv__(self, other: "ExpressionLike") -> "BinaryExpression":
        return BinaryExpression("/", self, wrap(other))

    # -- comparisons ---------------------------------------------------------
    def __lt__(self, other: "ExpressionLike") -> "ComparisonExpression":
        return ComparisonExpression("<", self, wrap(other))

    def __le__(self, other: "ExpressionLike") -> "ComparisonExpression":
        return ComparisonExpression("<=", self, wrap(other))

    def __gt__(self, other: "ExpressionLike") -> "ComparisonExpression":
        return ComparisonExpression(">", self, wrap(other))

    def __ge__(self, other: "ExpressionLike") -> "ComparisonExpression":
        return ComparisonExpression(">=", self, wrap(other))

    def equals(self, other: "ExpressionLike") -> "ComparisonExpression":
        """Equality comparison (named method because ``__eq__`` is kept for
        normal object identity semantics)."""
        return ComparisonExpression("==", self, wrap(other))

    def not_equals(self, other: "ExpressionLike") -> "ComparisonExpression":
        """Inequality comparison."""
        return ComparisonExpression("!=", self, wrap(other))

    # -- boolean -------------------------------------------------------------
    def __and__(self, other: "ExpressionLike") -> "BooleanExpression":
        return BooleanExpression("and", self, wrap(other))

    def __or__(self, other: "ExpressionLike") -> "BooleanExpression":
        return BooleanExpression("or", self, wrap(other))

    def __invert__(self) -> "BooleanExpression":
        return BooleanExpression("not", self, None)


ExpressionLike = Union[Expression, Number]


def wrap(value: ExpressionLike) -> Expression:
    """Wrap plain numbers into constant expressions."""
    if isinstance(value, Expression):
        return value
    if isinstance(value, (int, float, np.integer, np.floating)):
        return Constant(float(value))
    raise EngineError(f"cannot use {value!r} in an expression")


class ColumnRef(Expression):
    """Reference to a column of the current batch."""

    def __init__(self, name: str) -> None:
        if not name:
            raise EngineError("column reference needs a name")
        self.name = name

    def evaluate(self, batch: ChunkBatch) -> np.ndarray:
        return batch.column(self.name)

    def required_columns(self) -> set:
        return {self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"col({self.name!r})"


class Constant(Expression):
    """A numeric literal."""

    def __init__(self, value: Number) -> None:
        self.value = value

    def evaluate(self, batch: ChunkBatch) -> np.ndarray:
        return np.full(batch.num_rows, self.value)

    def required_columns(self) -> set:
        return set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"const({self.value!r})"


_ARITHMETIC: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
}

_COMPARISONS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}


class BinaryExpression(Expression):
    """Arithmetic between two expressions."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _ARITHMETIC:
            raise EngineError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, batch: ChunkBatch) -> np.ndarray:
        return _ARITHMETIC[self.op](self.left.evaluate(batch), self.right.evaluate(batch))

    def required_columns(self) -> set:
        return self.left.required_columns() | self.right.required_columns()


class ComparisonExpression(Expression):
    """Comparison between two expressions, producing a boolean mask."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _COMPARISONS:
            raise EngineError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, batch: ChunkBatch) -> np.ndarray:
        return _COMPARISONS[self.op](
            self.left.evaluate(batch), self.right.evaluate(batch)
        )

    def required_columns(self) -> set:
        return self.left.required_columns() | self.right.required_columns()


class BooleanExpression(Expression):
    """Boolean combination of predicate expressions."""

    def __init__(self, op: str, left: Expression, right: Expression | None) -> None:
        if op not in ("and", "or", "not"):
            raise EngineError(f"unknown boolean operator {op!r}")
        if op == "not" and right is not None:
            raise EngineError("'not' takes a single operand")
        if op != "not" and right is None:
            raise EngineError(f"{op!r} needs two operands")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, batch: ChunkBatch) -> np.ndarray:
        left = self.left.evaluate(batch).astype(bool)
        if self.op == "not":
            return ~left
        right = self.right.evaluate(batch).astype(bool)
        if self.op == "and":
            return left & right
        return left | right

    def required_columns(self) -> set:
        columns = self.left.required_columns()
        if self.right is not None:
            columns |= self.right.required_columns()
        return columns


def col(name: str) -> ColumnRef:
    """Shorthand constructor for a column reference."""
    return ColumnRef(name)


def const(value: Number) -> Constant:
    """Shorthand constructor for a numeric literal."""
    return Constant(value)
