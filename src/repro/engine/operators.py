"""Volcano-style physical operators over chunk batches.

Every operator is an iterable of :class:`repro.engine.table.ChunkBatch`
objects (or, for aggregates, produces a result dictionary via
:meth:`HashAggregate.result`).  The cooperative ``CScan`` differs from the
plain ``Scan`` only in its delivery order, which is exactly the paper's point:
most of the plan does not care about the order at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import EngineError
from repro.engine.expressions import Expression
from repro.engine.table import ChunkBatch, ColumnTable


class Operator:
    """Base class of all operators (an iterable of chunk batches)."""

    def __iter__(self) -> Iterator[ChunkBatch]:
        raise NotImplementedError

    def required_columns(self) -> set:
        """Columns this operator (and its children) read from the scan."""
        return set()


class Scan(Operator):
    """A plain sequential scan: chunks are delivered in table order."""

    def __init__(
        self,
        table: ColumnTable,
        columns: Optional[Sequence[str]] = None,
        chunks: Optional[Sequence[int]] = None,
    ) -> None:
        self.table = table
        self.columns = list(columns) if columns is not None else table.column_names
        if chunks is None:
            self.chunks = table.all_chunks()
        else:
            self.chunks = sorted(set(chunks))
        for chunk in self.chunks:
            if not 0 <= chunk < table.num_chunks:
                raise EngineError(f"chunk {chunk} out of range for {table.name!r}")

    def __iter__(self) -> Iterator[ChunkBatch]:
        return self.table.iter_chunks(self.chunks, self.columns)

    def required_columns(self) -> set:
        return set(self.columns)


class CScan(Operator):
    """A cooperative scan: chunks are delivered in an externally-decided order.

    The order typically comes from an Active Buffer Manager — either replayed
    from a simulation (``QueryResult.delivery_order``) or driven live through
    :class:`repro.engine.session.Session`.  The set of chunks delivered must
    cover exactly the requested chunks; duplicates and omissions raise.
    """

    def __init__(
        self,
        table: ColumnTable,
        delivery_order: Sequence[int],
        columns: Optional[Sequence[str]] = None,
    ) -> None:
        self.table = table
        self.columns = list(columns) if columns is not None else table.column_names
        order = list(delivery_order)
        if len(set(order)) != len(order):
            raise EngineError("CScan delivery order contains duplicate chunks")
        for chunk in order:
            if not 0 <= chunk < table.num_chunks:
                raise EngineError(f"chunk {chunk} out of range for {table.name!r}")
        self.delivery_order = order

    def __iter__(self) -> Iterator[ChunkBatch]:
        return self.table.iter_chunks(self.delivery_order, self.columns)

    def required_columns(self) -> set:
        return set(self.columns)


class Select(Operator):
    """Filter rows of the child by a predicate expression."""

    def __init__(self, child: Operator, predicate: Expression) -> None:
        self.child = child
        self.predicate = predicate

    def __iter__(self) -> Iterator[ChunkBatch]:
        for batch in self.child:
            mask = np.asarray(self.predicate.evaluate(batch), dtype=bool)
            filtered = batch.filter(mask)
            if filtered.num_rows:
                yield filtered

    def required_columns(self) -> set:
        return self.child.required_columns() | self.predicate.required_columns()


class Project(Operator):
    """Compute output columns from expressions over the child's batches."""

    def __init__(self, child: Operator, outputs: Dict[str, Expression]) -> None:
        if not outputs:
            raise EngineError("projection needs at least one output column")
        self.child = child
        self.outputs = dict(outputs)

    def __iter__(self) -> Iterator[ChunkBatch]:
        for batch in self.child:
            columns = {
                name: np.asarray(expression.evaluate(batch))
                for name, expression in self.outputs.items()
            }
            yield ChunkBatch(chunk=batch.chunk, start_row=batch.start_row, columns=columns)

    def required_columns(self) -> set:
        required = self.child.required_columns()
        for expression in self.outputs.values():
            required |= expression.required_columns()
        return required


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate to compute: ``function`` over ``expression``.

    Supported functions: ``sum``, ``count``, ``min``, ``max``, ``avg``.
    """

    name: str
    function: str
    expression: Optional[Expression] = None

    def __post_init__(self) -> None:
        if self.function not in ("sum", "count", "min", "max", "avg"):
            raise EngineError(f"unknown aggregate function {self.function!r}")
        if self.function != "count" and self.expression is None:
            raise EngineError(f"aggregate {self.function!r} needs an expression")


class _GroupAccumulator:
    """Running aggregate state for one group."""

    def __init__(self, specs: Sequence[AggregateSpec]) -> None:
        self._specs = specs
        self._sums = [0.0] * len(specs)
        self._counts = [0] * len(specs)
        self._mins = [np.inf] * len(specs)
        self._maxs = [-np.inf] * len(specs)
        self.rows = 0

    def update(self, values: List[Optional[np.ndarray]], num_rows: int) -> None:
        """Fold one batch worth of values (per aggregate) into the state."""
        self.rows += num_rows
        for index, spec in enumerate(self._specs):
            data = values[index]
            if spec.function == "count":
                self._counts[index] += num_rows
                continue
            if data is None or len(data) == 0:
                continue
            self._sums[index] += float(np.sum(data))
            self._counts[index] += len(data)
            self._mins[index] = min(self._mins[index], float(np.min(data)))
            self._maxs[index] = max(self._maxs[index], float(np.max(data)))

    def merge(self, other: "_GroupAccumulator") -> None:
        """Merge another accumulator (used by ordered aggregation borders)."""
        self.rows += other.rows
        for index in range(len(self._specs)):
            self._sums[index] += other._sums[index]
            self._counts[index] += other._counts[index]
            self._mins[index] = min(self._mins[index], other._mins[index])
            self._maxs[index] = max(self._maxs[index], other._maxs[index])

    def finalise(self) -> Dict[str, float]:
        """Produce the final aggregate values."""
        output: Dict[str, float] = {}
        for index, spec in enumerate(self._specs):
            if spec.function == "sum":
                output[spec.name] = self._sums[index]
            elif spec.function == "count":
                output[spec.name] = float(self._counts[index])
            elif spec.function == "min":
                output[spec.name] = self._mins[index]
            elif spec.function == "max":
                output[spec.name] = self._maxs[index]
            elif spec.function == "avg":
                count = self._counts[index]
                output[spec.name] = self._sums[index] / count if count else float("nan")
        return output


class HashAggregate(Operator):
    """Hash-based grouping aggregation (order-insensitive).

    ``keys`` may be empty for a global aggregate.  Results are retrieved with
    :meth:`result`, mapping each key tuple to its aggregate dictionary.
    """

    def __init__(
        self,
        child: Operator,
        keys: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ) -> None:
        if not aggregates:
            raise EngineError("aggregation needs at least one aggregate")
        self.child = child
        self.keys = list(keys)
        self.aggregates = list(aggregates)

    def __iter__(self) -> Iterator[ChunkBatch]:
        raise EngineError("HashAggregate produces a result(), not batches")

    def required_columns(self) -> set:
        required = self.child.required_columns() | set(self.keys)
        for spec in self.aggregates:
            if spec.expression is not None:
                required |= spec.expression.required_columns()
        return required

    def result(self) -> Dict[Tuple, Dict[str, float]]:
        """Consume the child and return ``{key_tuple: {agg_name: value}}``."""
        groups: Dict[Tuple, _GroupAccumulator] = {}
        for batch in self.child:
            evaluated = [
                None if spec.expression is None else np.asarray(spec.expression.evaluate(batch))
                for spec in self.aggregates
            ]
            if not self.keys:
                accumulator = groups.setdefault((), _GroupAccumulator(self.aggregates))
                accumulator.update(evaluated, batch.num_rows)
                continue
            key_arrays = [np.asarray(batch.column(key)) for key in self.keys]
            stacked = np.rec.fromarrays(key_arrays)
            unique_keys, inverse = np.unique(stacked, return_inverse=True)
            for group_index, record in enumerate(unique_keys):
                mask = inverse == group_index
                key_tuple = tuple(
                    record[field].item() if hasattr(record[field], "item") else record[field]
                    for field in range(len(self.keys))
                )
                accumulator = groups.setdefault(
                    key_tuple, _GroupAccumulator(self.aggregates)
                )
                sliced = [
                    None if values is None else values[mask] for values in evaluated
                ]
                accumulator.update(sliced, int(np.count_nonzero(mask)))
        return {key: accumulator.finalise() for key, accumulator in groups.items()}


def collect(operator: Operator) -> Dict[str, np.ndarray]:
    """Materialise an operator's output batches into full columns."""
    pieces: Dict[str, List[np.ndarray]] = {}
    for batch in operator:
        for name, values in batch.columns.items():
            pieces.setdefault(name, []).append(values)
    return {
        name: np.concatenate(arrays) if arrays else np.array([])
        for name, arrays in pieces.items()
    }
