"""Chunk-aware ordered aggregation (Section 7.2).

Ordered aggregation normally exploits that its input arrives sorted on the
grouping key: when the key changes, the finished group can be emitted
immediately.  With Cooperative Scans the input arrives chunk by chunk in an
arbitrary order, but *within* a chunk the data is still sorted.  The operator
therefore:

* aggregates each chunk internally and emits every group that is entirely
  contained in the chunk ("interior" groups),
* keeps the first and last group of every chunk aside as *border* groups,
  because they may continue in the neighbouring chunks,
* merges border groups across adjacent chunks once all chunks have been seen
  (the number of pending border groups is bounded by the number of chunks,
  which is the paper's argument for why this is cheap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import EngineError
from repro.engine.operators import AggregateSpec, Operator, _GroupAccumulator
from repro.engine.table import ChunkBatch


@dataclass
class _ChunkBorders:
    """Border groups of one processed chunk."""

    first_key: Tuple
    first_acc: _GroupAccumulator
    last_key: Tuple
    last_acc: _GroupAccumulator
    single_group: bool


class OrderedAggregate(Operator):
    """Grouping aggregation over a key that is sorted in table order.

    The grouping key columns must be (jointly) non-decreasing in physical
    table order; chunks may arrive in any order.  Results are obtained with
    :meth:`result` and are identical to what :class:`HashAggregate` computes.
    """

    def __init__(
        self,
        child: Operator,
        keys: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ) -> None:
        if not keys:
            raise EngineError("ordered aggregation needs at least one key column")
        if not aggregates:
            raise EngineError("aggregation needs at least one aggregate")
        self.child = child
        self.keys = list(keys)
        self.aggregates = list(aggregates)
        self._result_accumulators: Dict[Tuple, _GroupAccumulator] = {}
        self._borders: Dict[int, _ChunkBorders] = {}
        self._interior_groups_emitted = 0
        self._max_pending_borders = 0

    def __iter__(self) -> Iterator[ChunkBatch]:
        raise EngineError("OrderedAggregate produces a result(), not batches")

    def required_columns(self) -> set:
        required = self.child.required_columns() | set(self.keys)
        for spec in self.aggregates:
            if spec.expression is not None:
                required |= spec.expression.required_columns()
        return required

    # ---------------------------------------------------------------- stats
    @property
    def interior_groups_emitted(self) -> int:
        """Groups emitted before finalisation (fully contained in one chunk)."""
        return self._interior_groups_emitted

    @property
    def max_pending_borders(self) -> int:
        """Largest number of chunk border records held at any point."""
        return self._max_pending_borders

    # ----------------------------------------------------------- processing
    def result(self) -> Dict[Tuple, Dict[str, float]]:
        """Consume the child and return ``{key_tuple: {agg_name: value}}``."""
        for batch in self.child:
            if batch.num_rows == 0:
                continue
            self._process_chunk(batch)
            self._max_pending_borders = max(self._max_pending_borders, len(self._borders))
        self._merge_borders()
        return {
            key: accumulator.finalise()
            for key, accumulator in self._result_accumulators.items()
        }

    def _key_tuple(self, batch: ChunkBatch, row: int) -> Tuple:
        return tuple(_scalar(batch.column(key)[row]) for key in self.keys)

    def _process_chunk(self, batch: ChunkBatch) -> None:
        if batch.chunk in self._borders:
            raise EngineError(f"chunk {batch.chunk} delivered twice")
        key_arrays = [np.asarray(batch.column(key)) for key in self.keys]
        # Group boundaries inside the chunk (data is sorted within a chunk).
        changes = np.zeros(batch.num_rows, dtype=bool)
        for values in key_arrays:
            changes[1:] |= values[1:] != values[:-1]
        boundaries = np.flatnonzero(changes)
        group_starts = np.concatenate(([0], boundaries))
        group_ends = np.concatenate((boundaries, [batch.num_rows]))
        evaluated = [
            None if spec.expression is None else np.asarray(spec.expression.evaluate(batch))
            for spec in self.aggregates
        ]
        accumulators: List[Tuple[Tuple, _GroupAccumulator]] = []
        for start, end in zip(group_starts, group_ends):
            key = self._key_tuple(batch, int(start))
            accumulator = _GroupAccumulator(self.aggregates)
            sliced = [
                None if values is None else values[start:end] for values in evaluated
            ]
            accumulator.update(sliced, int(end - start))
            accumulators.append((key, accumulator))
        # Interior groups are final; first and last may spill into neighbours.
        if len(accumulators) == 1:
            key, accumulator = accumulators[0]
            self._borders[batch.chunk] = _ChunkBorders(
                first_key=key,
                first_acc=accumulator,
                last_key=key,
                last_acc=accumulator,
                single_group=True,
            )
            return
        first_key, first_acc = accumulators[0]
        last_key, last_acc = accumulators[-1]
        for key, accumulator in accumulators[1:-1]:
            self._emit(key, accumulator)
            self._interior_groups_emitted += 1
        self._borders[batch.chunk] = _ChunkBorders(
            first_key=first_key,
            first_acc=first_acc,
            last_key=last_key,
            last_acc=last_acc,
            single_group=False,
        )

    def _emit(self, key: Tuple, accumulator: _GroupAccumulator) -> None:
        existing = self._result_accumulators.get(key)
        if existing is None:
            self._result_accumulators[key] = accumulator
        else:
            # The same key can legitimately surface twice when the scanned
            # chunk set has gaps (zone-map plans); merge the partial groups.
            existing.merge(accumulator)

    def _merge_borders(self) -> None:
        """Merge border groups of adjacent chunks and emit everything left."""
        pending_key: Optional[Tuple] = None
        pending_acc: Optional[_GroupAccumulator] = None
        previous_chunk: Optional[int] = None
        for chunk in sorted(self._borders):
            borders = self._borders[chunk]
            adjacent = previous_chunk is not None and chunk == previous_chunk + 1
            if pending_acc is not None:
                if adjacent and pending_key == borders.first_key:
                    borders.first_acc.merge(pending_acc)
                    if borders.single_group:
                        # The whole chunk continues the pending group.
                        pending_acc = borders.first_acc
                        pending_key = borders.first_key
                        previous_chunk = chunk
                        continue
                else:
                    self._emit(pending_key, pending_acc)
            if borders.single_group:
                pending_key = borders.first_key
                pending_acc = borders.first_acc
            else:
                self._emit(borders.first_key, borders.first_acc)
                pending_key = borders.last_key
                pending_acc = borders.last_acc
            previous_chunk = chunk
        if pending_acc is not None:
            self._emit(pending_key, pending_acc)
        self._borders.clear()


def _scalar(value):
    """Convert a numpy scalar to a plain Python value for use in dict keys."""
    return value.item() if hasattr(value, "item") else value
