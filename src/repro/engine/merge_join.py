"""Merge joins over clustered tables, including the Cooperative Merge Join.

Section 7.2 of the paper: the classic merge join needs both inputs in key
order, which conflicts with out-of-order chunk delivery.  Two remedies are
implemented:

* :class:`MergeJoin` — the classic operator, requiring in-order delivery
  (what the attach / elevator policies provide);
* :class:`CooperativeMergeJoin` — for foreign-key joins where the inner table
  fits in memory: each outer chunk is joined independently by positioning
  into the (sorted) inner table with an index lookup, so the outer side can
  arrive in any order.  :func:`build_join_index` materialises the "invisible
  row-id column" (the ``#order`` join index of MonetDB/X100) that makes the
  per-chunk positioning O(log n).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.common.errors import EngineError
from repro.engine.operators import Operator, collect
from repro.engine.table import ChunkBatch, ColumnTable


def build_join_index(
    outer_keys: np.ndarray, inner_keys: np.ndarray
) -> np.ndarray:
    """Row ids of the inner table matching each outer row (foreign-key join).

    ``inner_keys`` must be sorted and unique (a primary key); every outer key
    must appear in it.  The result is the physical row-id column a system like
    MonetDB/X100 stores alongside the outer table to enable multi-table
    clustering.
    """
    inner = np.asarray(inner_keys)
    outer = np.asarray(outer_keys)
    if inner.ndim != 1 or outer.ndim != 1:
        raise EngineError("join keys must be one-dimensional")
    if len(inner) == 0:
        raise EngineError("inner key column is empty")
    if np.any(inner[1:] <= inner[:-1]):
        raise EngineError("inner keys must be strictly increasing (primary key)")
    positions = np.searchsorted(inner, outer)
    positions = np.clip(positions, 0, len(inner) - 1)
    if not np.array_equal(inner[positions], outer):
        raise EngineError("outer keys contain values missing from the inner table")
    return positions.astype(np.int64)


class MergeJoin(Operator):
    """Classic merge join of two key-ordered inputs (many-to-one).

    The outer input must deliver rows in non-decreasing key order (so only
    in-order scans can feed it); the inner table must have strictly
    increasing keys.  Output batches carry the outer columns plus the
    requested inner columns.
    """

    def __init__(
        self,
        outer: Operator,
        inner: ColumnTable,
        outer_key: str,
        inner_key: str,
        inner_columns: Sequence[str],
    ) -> None:
        self.outer = outer
        self.inner = inner
        self.outer_key = outer_key
        self.inner_key = inner_key
        self.inner_columns = list(inner_columns)
        self._last_key_seen: Optional[float] = None

    def required_columns(self) -> set:
        return self.outer.required_columns() | {self.outer_key}

    def __iter__(self) -> Iterator[ChunkBatch]:
        inner_keys = np.asarray(self.inner.column(self.inner_key))
        if np.any(inner_keys[1:] <= inner_keys[:-1]):
            raise EngineError("inner table is not sorted on its key")
        self._last_key_seen = None
        for batch in self.outer:
            keys = np.asarray(batch.column(self.outer_key))
            if batch.num_rows == 0:
                continue
            if np.any(keys[1:] < keys[:-1]):
                raise EngineError("merge join input is not sorted within the batch")
            if self._last_key_seen is not None and keys[0] < self._last_key_seen:
                raise EngineError(
                    "merge join received out-of-order batches; "
                    "use CooperativeMergeJoin with CScan delivery"
                )
            self._last_key_seen = float(keys[-1])
            yield _join_batch(
                batch, keys, self.inner, inner_keys, self.inner_columns
            )


class CooperativeMergeJoin(Operator):
    """Merge join tolerating out-of-order outer chunks (Section 7.2).

    Each outer chunk is positioned into the inner table independently, either
    through a precomputed join index (row ids) or by binary search on the
    inner key.  The inner table must fit in memory, which is the case the
    paper singles out as "special yet valuable".
    """

    def __init__(
        self,
        outer: Operator,
        inner: ColumnTable,
        outer_key: str,
        inner_key: str,
        inner_columns: Sequence[str],
        join_index: Optional[np.ndarray] = None,
    ) -> None:
        self.outer = outer
        self.inner = inner
        self.outer_key = outer_key
        self.inner_key = inner_key
        self.inner_columns = list(inner_columns)
        self.join_index = join_index

    def required_columns(self) -> set:
        return self.outer.required_columns() | {self.outer_key}

    def __iter__(self) -> Iterator[ChunkBatch]:
        inner_keys = np.asarray(self.inner.column(self.inner_key))
        for batch in self.outer:
            if batch.num_rows == 0:
                continue
            keys = np.asarray(batch.column(self.outer_key))
            if self.join_index is not None:
                rows = self.join_index[batch.start_row : batch.start_row + batch.num_rows]
                yield _join_batch_by_rows(batch, rows, self.inner, self.inner_columns)
            else:
                yield _join_batch(batch, keys, self.inner, inner_keys, self.inner_columns)


def _join_batch(
    batch: ChunkBatch,
    keys: np.ndarray,
    inner: ColumnTable,
    inner_keys: np.ndarray,
    inner_columns: Sequence[str],
) -> ChunkBatch:
    positions = np.searchsorted(inner_keys, keys)
    positions = np.clip(positions, 0, len(inner_keys) - 1)
    matched = inner_keys[positions] == keys
    rows = positions[matched]
    filtered = batch.filter(matched)
    return _join_batch_by_rows(filtered, rows, inner, inner_columns)


def _join_batch_by_rows(
    batch: ChunkBatch,
    rows: np.ndarray,
    inner: ColumnTable,
    inner_columns: Sequence[str],
) -> ChunkBatch:
    if len(rows) != batch.num_rows:
        raise EngineError("join index length does not match batch row count")
    columns: Dict[str, np.ndarray] = dict(batch.columns)
    for name in inner_columns:
        output_name = name if name not in columns else f"{inner.name}.{name}"
        columns[output_name] = np.asarray(inner.column(name))[rows]
    return ChunkBatch(chunk=batch.chunk, start_row=batch.start_row, columns=columns)
