"""In-memory chunked column tables.

A :class:`ColumnTable` holds one numpy array per column and a logical chunk
size (tuples per chunk).  Both the plain ``Scan`` and the cooperative
``CScan`` operators read :class:`ChunkBatch` objects from it; the chunk ids
line up with the chunk ids used by the storage layouts and the simulator, so
a delivery order produced by a simulated ABM run can be replayed against real
data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import EngineError
from repro.common.units import ceil_div
from repro.storage.zonemap import ZoneMap, build_zonemap


@dataclass
class ChunkBatch:
    """A slice of table data covering one chunk (or part of one).

    ``columns`` maps column names to equally-sized numpy arrays; ``chunk`` is
    the logical chunk id the batch came from, which order-aware operators use
    to reason about chunk adjacency.
    """

    chunk: int
    start_row: int
    columns: Dict[str, np.ndarray]

    def __post_init__(self) -> None:
        lengths = {len(values) for values in self.columns.values()}
        if len(lengths) > 1:
            raise EngineError(f"ragged chunk batch: column lengths {lengths}")

    @property
    def num_rows(self) -> int:
        """Number of rows in the batch."""
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def column(self, name: str) -> np.ndarray:
        """Return one column of the batch."""
        try:
            return self.columns[name]
        except KeyError as exc:
            raise EngineError(f"batch has no column {name!r}") from exc

    def filter(self, mask: np.ndarray) -> "ChunkBatch":
        """Return a new batch with only the rows where ``mask`` is true."""
        if mask.shape != (self.num_rows,):
            raise EngineError(
                f"mask shape {mask.shape} does not match batch rows {self.num_rows}"
            )
        return ChunkBatch(
            chunk=self.chunk,
            start_row=self.start_row,
            columns={name: values[mask] for name, values in self.columns.items()},
        )

    def project(self, names: Sequence[str]) -> "ChunkBatch":
        """Return a new batch with only the given columns."""
        return ChunkBatch(
            chunk=self.chunk,
            start_row=self.start_row,
            columns={name: self.column(name) for name in names},
        )


class ColumnTable:
    """An in-memory table stored as one numpy array per column."""

    def __init__(
        self,
        name: str,
        columns: Dict[str, np.ndarray],
        tuples_per_chunk: int,
    ) -> None:
        if not columns:
            raise EngineError(f"table {name!r} needs at least one column")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) != 1:
            raise EngineError(f"table {name!r} has ragged columns: lengths {lengths}")
        if tuples_per_chunk <= 0:
            raise EngineError("tuples_per_chunk must be positive")
        self.name = name
        self._columns = dict(columns)
        self.num_rows = lengths.pop()
        if self.num_rows == 0:
            raise EngineError(f"table {name!r} is empty")
        self.tuples_per_chunk = tuples_per_chunk
        self._zonemaps: Dict[str, ZoneMap] = {}

    # ----------------------------------------------------------- inspection
    @property
    def column_names(self) -> List[str]:
        """Names of all columns."""
        return list(self._columns)

    @property
    def num_chunks(self) -> int:
        """Number of logical chunks."""
        return ceil_div(self.num_rows, self.tuples_per_chunk)

    def column(self, name: str) -> np.ndarray:
        """The full array of one column."""
        try:
            return self._columns[name]
        except KeyError as exc:
            raise EngineError(f"table {self.name!r} has no column {name!r}") from exc

    def has_column(self, name: str) -> bool:
        """Whether the column exists."""
        return name in self._columns

    def chunk_bounds(self, chunk: int) -> Tuple[int, int]:
        """Half-open row range of one chunk."""
        if not 0 <= chunk < self.num_chunks:
            raise EngineError(
                f"chunk {chunk} out of range for table {self.name!r} "
                f"({self.num_chunks} chunks)"
            )
        start = chunk * self.tuples_per_chunk
        return start, min(self.num_rows, start + self.tuples_per_chunk)

    def all_chunks(self) -> List[int]:
        """All chunk ids in table order."""
        return list(range(self.num_chunks))

    # ------------------------------------------------------------- batches
    def read_chunk(
        self, chunk: int, columns: Optional[Sequence[str]] = None
    ) -> ChunkBatch:
        """Materialise one chunk of the given columns as a batch."""
        start, end = self.chunk_bounds(chunk)
        names = list(columns) if columns is not None else self.column_names
        data = {name: self.column(name)[start:end] for name in names}
        return ChunkBatch(chunk=chunk, start_row=start, columns=data)

    def iter_chunks(
        self,
        chunks: Optional[Iterable[int]] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> Iterator[ChunkBatch]:
        """Yield chunk batches in the given chunk order (table order default)."""
        order = list(chunks) if chunks is not None else self.all_chunks()
        for chunk in order:
            yield self.read_chunk(chunk, columns)

    # ------------------------------------------------------------ zone maps
    def zonemap(self, column: str) -> ZoneMap:
        """Build (and cache) the zone map of one column."""
        if column not in self._zonemaps:
            self._zonemaps[column] = build_zonemap(
                column, np.asarray(self.column(column), dtype=float), self.tuples_per_chunk
            )
        return self._zonemaps[column]

    def chunks_for_range(self, column: str, low: float, high: float) -> List[int]:
        """Chunks that can contain values of ``column`` within ``[low, high]``."""
        return self.zonemap(column).chunks_for_range(low, high)
