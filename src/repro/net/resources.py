"""The coordinator's resource bundle and its slice of the SLO report.

:class:`CoordinatorResources` owns one :class:`~repro.net.cost.SimCPU` and
one :class:`~repro.net.cost.SimNIC` for the coordinator plus one NIC per
shard, and exposes the four charges the scatter-gather protocol makes:

* :meth:`admit` — classify + build the per-shard scatter messages (CPU);
* :meth:`deliver_scatter` — one sub-query message across the coordinator
  NIC and the owning shard's NIC; the returned time is when the shard may
  *start* the sub-query;
* :meth:`deliver_gather` — one completion message back across both NICs;
* :meth:`process_gather` — gather bookkeeping (plus the final merge) on
  the coordinator CPU; the returned time is the *query's* completion.

Every charge lands on the shared simulated clock, so admission-to-start
and last-subquery-to-completion gain real modeled delay, and the books the
primitives keep roll up into a :class:`CoordinatorSLO` that the merged
cluster report can carry — including explicit warnings once the
coordinator saturates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.config import CoordinatorConfig, NetworkConfig
from repro.metrics.timeline import validate_timeline
from repro.net.cost import SimCPU, SimNIC

#: Utilisation at which the coordinator is flagged as the bottleneck.
SATURATION_WARN = 0.9


@dataclass(frozen=True)
class CoordinatorSLO:
    """Coordinator CPU/NIC accounting attached to a cluster SLO report."""

    #: Fraction of the run the coordinator CPU spent busy.
    cpu_utilisation: float
    #: Fraction of the run the coordinator NIC spent busy.
    nic_utilisation: float
    #: Per-shard NIC utilisations, indexed by shard.
    shard_nic_utilisation: Tuple[float, ...]
    #: Total coordinator CPU seconds consumed.
    cpu_busy_s: float
    #: CPU operations served (classify/scatter and gather/merge charges).
    cpu_ops: int
    cpu_queue_delay_mean_s: float
    cpu_queue_delay_max_s: float
    #: Messages through the coordinator NIC (scatter + gather directions).
    nic_messages: int
    nic_bytes: int
    nic_queue_delay_mean_s: float
    nic_queue_delay_max_s: float
    #: Human-readable saturation/queue-delay warnings (empty = healthy).
    warnings: Tuple[str, ...] = ()

    @property
    def bottleneck_utilisation(self) -> float:
        """The busiest coordinator-side resource's utilisation."""
        peak = max(self.cpu_utilisation, self.nic_utilisation)
        if self.shard_nic_utilisation:
            peak = max(peak, max(self.shard_nic_utilisation))
        return peak

    @property
    def saturated(self) -> bool:
        """Whether any coordinator-side resource crossed the warn line."""
        return self.bottleneck_utilisation >= SATURATION_WARN

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view (merged into ``SLOReport.as_dict``)."""
        return {
            "cpu_utilisation": self.cpu_utilisation,
            "nic_utilisation": self.nic_utilisation,
            "cpu_busy_s": self.cpu_busy_s,
            "cpu_ops": self.cpu_ops,
            "cpu_queue_delay_mean_s": self.cpu_queue_delay_mean_s,
            "cpu_queue_delay_max_s": self.cpu_queue_delay_max_s,
            "nic_messages": self.nic_messages,
            "nic_bytes": self.nic_bytes,
            "nic_queue_delay_mean_s": self.nic_queue_delay_mean_s,
            "nic_queue_delay_max_s": self.nic_queue_delay_max_s,
            "bottleneck_utilisation": self.bottleneck_utilisation,
            "saturated": self.saturated,
            "warnings": "; ".join(self.warnings),
        }


class CoordinatorResources:
    """One coordinator CPU + NIC and one NIC per shard, on the sim clock."""

    def __init__(
        self,
        coordinator: CoordinatorConfig,
        network: NetworkConfig,
        num_shards: int,
    ) -> None:
        self.config = coordinator
        self.network = network
        self.cpu = SimCPU("coordinator-cpu")
        self.nic = SimNIC(
            "coordinator-nic",
            bandwidth_bytes_per_s=network.bandwidth_bytes_per_s,
            per_message_s=network.per_message_s,
        )
        self.shard_nics = [
            SimNIC(
                f"shard{shard}-nic",
                bandwidth_bytes_per_s=network.bandwidth_bytes_per_s,
                per_message_s=network.per_message_s,
            )
            for shard in range(num_shards)
        ]
        self._obs = None
        self._obs_pid = "frontdoor"

    # -------------------------------------------------------- observability
    def attach_observability(self, recorder, pid: str = "frontdoor") -> None:
        """Emit CPU spans, message instants and utilisation gauges on
        ``recorder`` (a :class:`repro.obs.recorder.FlightRecorder`)."""
        self._obs = recorder
        self._obs_pid = pid

    def _emit_cpu(self, op: str, charge, query_id: int) -> None:
        if self._obs is None or charge.done <= charge.start:
            return
        self._obs.complete(
            f"coordinator.cpu.{op}",
            "coordinator",
            charge.start,
            charge.done - charge.start,
            self._obs_pid,
            "coordinator-cpu",
            query=query_id,
            queue_delay=charge.queue_delay,
        )
        self._obs.set_gauge(
            "coordinator.cpu.util",
            charge.done,
            self.cpu.utilisation(charge.done),
        )

    def _emit_message(
        self, kind: str, charge, query_id: int, shard: int, num_bytes: int
    ) -> None:
        if self._obs is None:
            return
        self._obs.instant(
            f"coordinator.net.{kind}",
            "net",
            charge.done,
            self._obs_pid,
            "coordinator-nic",
            query=query_id,
            shard=shard,
            bytes=num_bytes,
            queue_delay=charge.queue_delay,
        )
        self._obs.set_gauge(
            "coordinator.nic.util",
            charge.done,
            self.nic.utilisation(charge.done),
        )

    # ------------------------------------------------------------- protocol
    def admit(self, now: float, query_id: int, num_subqueries: int) -> float:
        """Charge classification + scatter build for one admitted query.

        Returns the time the scatter messages are ready to leave the
        coordinator.
        """
        seconds = (
            self.config.classify_s
            + self.config.scatter_per_subquery_s * num_subqueries
        )
        charge = self.cpu.charge("scatter", now, seconds)
        self._emit_cpu("scatter", charge, query_id)
        return charge.done

    def deliver_scatter(self, ready: float, shard: int, query_id: int) -> float:
        """Send one sub-query message to ``shard``; returns delivery time."""
        num_bytes = self.network.scatter_message_bytes
        sent = self.nic.send(ready, num_bytes)
        self._emit_message("scatter", sent, query_id, shard, num_bytes)
        received = self.shard_nics[shard].send(sent.done, num_bytes)
        return received.done

    def deliver_gather(self, now: float, shard: int, query_id: int) -> float:
        """Send one completion message from ``shard``; returns arrival time."""
        num_bytes = self.network.gather_message_bytes
        sent = self.shard_nics[shard].send(now, num_bytes)
        received = self.nic.send(sent.done, num_bytes)
        self._emit_message("gather", received, query_id, shard, num_bytes)
        return received.done

    def process_gather(self, arrived: float, query_id: int, final: bool) -> float:
        """Charge gather bookkeeping (plus the final merge) on the CPU.

        Returns the time the completion is fully processed — for the last
        sub-query, the whole query's completion time.
        """
        seconds = self.config.gather_per_subquery_s
        op = "gather"
        if final:
            seconds += self.config.merge_per_query_s
            op = "gather-merge"
        charge = self.cpu.charge(op, arrived, seconds)
        self._emit_cpu(op, charge, query_id)
        return charge.done

    # ------------------------------------------------------------- reporting
    def timelines(self) -> Dict[str, Tuple[Tuple[float, float], ...]]:
        """Validated ``(time, utilisation)`` timelines, one per resource.

        Every timeline passes :func:`repro.metrics.timeline.validate_timeline`
        — the same guard the MPL timelines get — before being returned.
        """
        series: Dict[str, Tuple[Tuple[float, float], ...]] = {
            "coordinator_cpu": tuple(self.cpu.utilisation_timeline),
            "coordinator_nic": tuple(self.nic.utilisation_timeline),
        }
        for shard, nic in enumerate(self.shard_nics):
            series[f"shard{shard}_nic"] = tuple(nic.utilisation_timeline)
        for name, points in series.items():
            validate_timeline(points, where=f"{name} utilisation timeline")
        return series

    def busy_timelines(self) -> Dict[str, Tuple[Tuple[float, float], ...]]:
        """Validated cumulative ``(time, busy_seconds)`` series per resource.

        These feed the windowed threshold alerts in
        :mod:`repro.obs.alerts` (``"coordinator.cpu"`` /
        ``"coordinator.nic"`` / ``"shard<i>.nic"``), which convert them to
        trailing-window utilisation; both coordinates are monotone by
        construction of :class:`repro.net.cost._SingleServerQueue`.
        """
        series: Dict[str, Tuple[Tuple[float, float], ...]] = {
            "coordinator.cpu": tuple(self.cpu.busy_timeline),
            "coordinator.nic": tuple(self.nic.busy_timeline),
        }
        for shard, nic in enumerate(self.shard_nics):
            series[f"shard{shard}.nic"] = tuple(nic.busy_timeline)
        for name, points in series.items():
            validate_timeline(points, where=f"{name} busy timeline")
        return series

    def report(self, duration: float) -> CoordinatorSLO:
        """Roll the books up into a :class:`CoordinatorSLO` for ``duration``."""
        cpu_util = self.cpu.utilisation(duration)
        nic_util = self.nic.utilisation(duration)
        shard_utils = tuple(nic.utilisation(duration) for nic in self.shard_nics)
        warnings = []
        if cpu_util >= SATURATION_WARN:
            warnings.append(
                f"coordinator CPU utilisation {cpu_util:.0%} — "
                f"the coordinator is the bottleneck"
            )
        if nic_util >= SATURATION_WARN:
            warnings.append(
                f"coordinator NIC utilisation {nic_util:.0%} — "
                f"the fabric is the bottleneck"
            )
        for shard, util in enumerate(shard_utils):
            if util >= SATURATION_WARN:
                warnings.append(
                    f"shard {shard} NIC utilisation {util:.0%}"
                )
        warn_s = self.config.queue_delay_warn_s
        if self.cpu.max_queue_delay > warn_s:
            warnings.append(
                f"coordinator CPU queue delay peaked at "
                f"{self.cpu.max_queue_delay:.3f}s (warn threshold {warn_s:g}s)"
            )
        if self.nic.max_queue_delay > warn_s:
            warnings.append(
                f"coordinator NIC queue delay peaked at "
                f"{self.nic.max_queue_delay:.3f}s (warn threshold {warn_s:g}s)"
            )
        return CoordinatorSLO(
            cpu_utilisation=cpu_util,
            nic_utilisation=nic_util,
            shard_nic_utilisation=shard_utils,
            cpu_busy_s=self.cpu.busy_seconds,
            cpu_ops=self.cpu.charges,
            cpu_queue_delay_mean_s=self.cpu.mean_queue_delay,
            cpu_queue_delay_max_s=self.cpu.max_queue_delay,
            nic_messages=self.nic.messages,
            nic_bytes=self.nic.bytes_moved,
            nic_queue_delay_mean_s=self.nic.mean_queue_delay,
            nic_queue_delay_max_s=self.nic.max_queue_delay,
            warnings=tuple(warnings),
        )
