"""Network + CPU cost layer for the cluster coordinator.

Single-server queue models (:class:`SimCPU`, :class:`SimNIC`) on the
shared simulated clock, bundled by :class:`CoordinatorResources` and
reported through :class:`CoordinatorSLO`.  All costs default to zero, in
which case the cluster layer never builds this machinery and behaves
bit-for-bit as it did before the coordinator was modelled.
"""

from repro.net.cost import Charge, SimCPU, SimNIC
from repro.net.resources import (
    SATURATION_WARN,
    CoordinatorResources,
    CoordinatorSLO,
)

__all__ = [
    "Charge",
    "SimCPU",
    "SimNIC",
    "SATURATION_WARN",
    "CoordinatorResources",
    "CoordinatorSLO",
]
