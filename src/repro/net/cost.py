"""Single-server cost models for the coordinator's CPU and NICs.

The cluster layer inherited the paper's assumption that the scheduler is
free: scatter, classification and gather-merge cost nothing, so the
coordinator can never become the bottleneck no matter how many shards hang
off it.  This module supplies the two primitives that retire that
assumption — both are *single-server FIFO queues on the shared simulated
clock*, in the style of the per-node ``cpu_cores`` + bandwidth-container
model the cluster simulators in SNIPPETS.md use:

* :class:`SimCPU` charges per-operation seconds from a cost table
  (classify, scatter, gather, merge, ...).  Work arriving while the CPU is
  busy queues behind the in-flight operation.
* :class:`SimNIC` charges per-message seconds: a fixed per-message
  overhead plus ``bytes / bandwidth`` serialisation time.  One NIC fronts
  the coordinator and one fronts each shard, so a message crosses *two*
  queues end to end.

Both keep honest books — busy seconds, per-op/message counts, queue-delay
extremes and a ``(time, utilisation)`` step timeline suitable for
:func:`repro.metrics.timeline.validate_timeline` — because the point of
modelling the coordinator is to be able to *blame* it in an SLO report.
"""

from __future__ import annotations

import math
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.common.errors import SimulationError


class Charge(NamedTuple):
    """Outcome of one unit of work passing through a single-server queue."""

    #: When the server actually began the work (``>= now``).
    start: float
    #: When the work finished; the caller's "ready" time.
    done: float
    #: Seconds the work waited behind earlier work (``start - now``).
    queue_delay: float


class _SingleServerQueue:
    """Shared bookkeeping for one serially-used resource on the sim clock.

    The queueing rule is the classic single-server recurrence: work
    submitted at ``now`` starts at ``max(now, free_time)`` and runs for its
    service seconds; ``free_time`` advances to the finish.  Because
    ``free_time`` never decreases, finish times are monotone in submission
    order even when callers' clocks are only *nearly* sorted (the lockstep
    frontier), which keeps the utilisation timeline valid by construction.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        #: Sim time at which the server next falls idle.
        self.free_time = 0.0
        #: Total seconds of service performed.
        self.busy_seconds = 0.0
        #: Units of work served.
        self.charges = 0
        #: Units that found the server busy and had to wait.
        self.queued_charges = 0
        self.total_queue_delay = 0.0
        self.max_queue_delay = 0.0
        #: ``(finish_time, cumulative utilisation)`` step points, one per
        #: non-zero charge.  Monotone in time (see class docstring).
        self.utilisation_timeline: List[Tuple[float, float]] = []
        #: ``(finish_time, cumulative busy seconds)`` step points, one per
        #: non-zero charge — the raw series windowed threshold alerts need
        #: (monotone in both coordinates, same argument as above).
        self.busy_timeline: List[Tuple[float, float]] = []

    def _serve(self, now: float, seconds: float, what: str) -> Charge:
        if not math.isfinite(now) or now < 0.0:
            raise SimulationError(
                f"{self.name}: {what} submitted at invalid time {now!r}"
            )
        if not math.isfinite(seconds) or seconds < 0.0:
            raise SimulationError(
                f"{self.name}: {what} has invalid service time {seconds!r}"
            )
        start = max(now, self.free_time)
        done = start + seconds
        delay = start - now
        self.free_time = done
        self.busy_seconds += seconds
        self.charges += 1
        if delay > 0.0:
            self.queued_charges += 1
            self.total_queue_delay += delay
            if delay > self.max_queue_delay:
                self.max_queue_delay = delay
        if seconds > 0.0 and done > 0.0:
            self.utilisation_timeline.append((done, self.busy_seconds / done))
            self.busy_timeline.append((done, self.busy_seconds))
        return Charge(start=start, done=done, queue_delay=delay)

    # ------------------------------------------------------------- reporting
    def utilisation(self, duration: float) -> float:
        """Fraction of ``duration`` the server spent busy."""
        if duration <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / duration)

    @property
    def mean_queue_delay(self) -> float:
        """Mean wait over *all* served units (zero-wait units included)."""
        if self.charges == 0:
            return 0.0
        return self.total_queue_delay / self.charges


class SimCPU(_SingleServerQueue):
    """The coordinator's CPU: per-op cost table on a single-server queue.

    ``charge("scatter", now, seconds)`` runs one operation and returns its
    :class:`Charge`; per-op counts and seconds are kept so a saturation
    report can say *which* operation ate the core.
    """

    def __init__(self, name: str = "coordinator-cpu") -> None:
        super().__init__(name)
        self.op_counts: Dict[str, int] = {}
        self.op_seconds: Dict[str, float] = {}

    def charge(self, op: str, now: float, seconds: float) -> Charge:
        """Run ``seconds`` of CPU work named ``op`` submitted at ``now``."""
        charge = self._serve(now, seconds, f"op {op!r}")
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        self.op_seconds[op] = self.op_seconds.get(op, 0.0) + seconds
        return charge


class SimNIC(_SingleServerQueue):
    """One network interface: per-message overhead plus serialisation time.

    ``bandwidth_bytes_per_s=None`` means an infinitely fast link — only the
    per-message overhead is charged.  A message crossing the cluster pays
    the sender's NIC and then the receiver's NIC, each a separate queue.
    """

    def __init__(
        self,
        name: str,
        bandwidth_bytes_per_s: Optional[float] = None,
        per_message_s: float = 0.0,
    ) -> None:
        super().__init__(name)
        if bandwidth_bytes_per_s is not None and (
            not math.isfinite(bandwidth_bytes_per_s) or bandwidth_bytes_per_s <= 0.0
        ):
            raise SimulationError(
                f"{name}: bandwidth must be positive, got {bandwidth_bytes_per_s!r}"
            )
        if not math.isfinite(per_message_s) or per_message_s < 0.0:
            raise SimulationError(
                f"{name}: per-message overhead must be >= 0, got {per_message_s!r}"
            )
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.per_message_s = per_message_s
        self.messages = 0
        self.bytes_moved = 0

    def message_seconds(self, num_bytes: int) -> float:
        """Service time of one ``num_bytes`` message on this link."""
        if num_bytes < 0:
            raise SimulationError(
                f"{self.name}: message size must be >= 0, got {num_bytes!r}"
            )
        seconds = self.per_message_s
        if self.bandwidth_bytes_per_s is not None:
            seconds += num_bytes / self.bandwidth_bytes_per_s
        return seconds

    def send(self, now: float, num_bytes: int) -> Charge:
        """Put one message on the wire at ``now``; returns its charge."""
        charge = self._serve(
            now, self.message_seconds(num_bytes), f"{num_bytes}-byte message"
        )
        self.messages += 1
        self.bytes_moved += num_bytes
        return charge
