"""The discrete-event scan simulator.

The simulator owns three resources:

* the **disk**: a single device serving one chunk-granularity load operation
  at a time, timed by :class:`repro.disk.DiskModel`;
* the **CPU**: ``cores`` processors shared (processor sharing) by every query
  that currently has a chunk to crunch;
* the **ABM**: the Active Buffer Manager under test, which decides what the
  disk does and which chunk each query consumes next.

Queries are supplied by a pluggable :class:`repro.sim.source.QuerySource`:

* the paper's *closed* workload (:class:`repro.sim.source.ClosedStreamSource`)
  runs a fixed set of streams, each executing its queries back to back, with
  stream ``i`` starting ``i * stream_start_delay_s`` seconds after the run
  begins (3 seconds in the paper, Section 5.1);
* the *open-system* service layer (:mod:`repro.service`) feeds timestamped
  arrivals through an admission controller instead.

Passing plain streams (a sequence of sequences of scan requests) to
:class:`ScanSimulator` or :func:`run_simulation` wraps them in a
``ClosedStreamSource`` automatically, so existing closed-workload callers
are unaffected.

The simulation is deterministic: given the same workload, configuration and
policy it always produces the same result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.core.abm import ActiveBufferManager, DSMActiveBufferManager
from repro.core.cscan import ScanRequest
from repro.core.ops import DSMLoadOperation, LoadOperation
from repro.disk.model import DiskModel
from repro.disk.request import IORequest, RequestKind
from repro.disk.trace import IOTrace
from repro.sim.results import QueryResult, RunResult
from repro.sim.source import AdmittedQuery, ClosedStreamSource, QuerySource

AnyABM = Union[ActiveBufferManager, DSMActiveBufferManager]
AnyLoadOp = Union[LoadOperation, DSMLoadOperation]
Workload = Union[QuerySource, Sequence[Sequence[ScanRequest]]]

_EPS = 1e-9
_MAX_EVENTS = 20_000_000


@dataclass
class _QueryRun:
    """Simulator-side bookkeeping of one query instance."""

    spec: ScanRequest
    stream: int
    arrival_time: float = 0.0
    submit_time: Optional[float] = None
    remaining_work: float = 0.0
    processing: bool = False
    blocked: bool = False
    done: bool = False


class ScanSimulator:
    """Simulates a workload of concurrent scans against one ABM instance."""

    def __init__(
        self,
        workload: Workload,
        config: SystemConfig,
        abm: AnyABM,
        record_trace: bool = False,
    ) -> None:
        if isinstance(workload, QuerySource):
            self._source = workload
        else:
            self._source = ClosedStreamSource(workload, config.stream_start_delay_s)
        if self._source.drained():
            # Sources are single-use: a drained source at construction time
            # was already consumed by a previous run (fresh sources always
            # hold at least one pending query).
            raise SimulationError("query source is empty or already consumed")
        self._config = config
        self._abm = abm
        self._disk = DiskModel(config.disk)
        self._trace = IOTrace() if record_trace else None

        self._now = 0.0
        self._queries: Dict[int, _QueryRun] = {}
        self._running: Dict[int, _QueryRun] = {}
        self._blocked: Set[int] = set()
        self._inflight: Optional[AnyLoadOp] = None
        self._disk_done: float = 0.0
        self._query_results: List[QueryResult] = []
        self._started = 0
        self._finished = 0
        self._cpu_busy_area = 0.0
        self._scheduling_seconds = 0.0

    # ------------------------------------------------------------------ API
    def run(self) -> RunResult:
        """Execute the workload to completion and return the run result."""
        events = 0
        while not (self._source.drained() and self._finished == self._started):
            events += 1
            if events > _MAX_EVENTS:
                raise SimulationError(
                    f"simulation exceeded {_MAX_EVENTS} events; "
                    "likely a scheduling livelock"
                )
            self._kick_disk()
            next_time = self._next_event_time()
            if next_time is None:
                raise SimulationError(
                    "simulation deadlock: "
                    f"{len(self._blocked)} blocked queries, disk idle, "
                    f"{self._started - self._finished} admitted queries "
                    f"unfinished (policy {self._abm.policy.name!r})"
                )
            self._advance_to(next_time)
            self._process_disk_completion()
            self._process_cpu_completions()
            self._process_arrivals()
        return self._build_result()

    # ------------------------------------------------------------ event core
    def _next_event_time(self) -> Optional[float]:
        candidates: List[float] = []
        arrival = self._source.next_event_time()
        if arrival is not None:
            candidates.append(arrival)
        if self._inflight is not None:
            candidates.append(self._disk_done)
        if self._running:
            rate = self._config.cpu.rate_per_query(len(self._running))
            shortest = min(run.remaining_work for run in self._running.values())
            candidates.append(self._now + max(0.0, shortest) / rate)
        if not candidates:
            return None
        return min(candidates)

    def _advance_to(self, next_time: float) -> None:
        dt = max(0.0, next_time - self._now)
        if dt > 0 and self._running:
            rate = self._config.cpu.rate_per_query(len(self._running))
            for run in self._running.values():
                run.remaining_work -= dt * rate
            self._cpu_busy_area += min(len(self._running), self._config.cpu.cores) * dt
        self._now = next_time

    def _process_disk_completion(self) -> None:
        if self._inflight is None or self._disk_done > self._now + _EPS:
            return
        operation = self._inflight
        self._inflight = None
        if self._trace is not None:
            if isinstance(operation, DSMLoadOperation):
                for block in operation.blocks:
                    self._trace.record(
                        time=self._now,
                        chunk=operation.chunk,
                        num_bytes=block.num_bytes,
                        triggered_by=operation.triggered_by,
                        column=block.column,
                    )
            else:
                self._trace.record(
                    time=self._now,
                    chunk=operation.chunk,
                    num_bytes=operation.num_bytes,
                    triggered_by=operation.triggered_by,
                )
        woken = self._timed(lambda: self._abm.complete_load(operation, self._now))
        for query_id in woken:
            if query_id in self._blocked:
                self._dispatch(query_id)

    def _process_cpu_completions(self) -> None:
        completed = [
            query_id
            for query_id, run in self._running.items()
            if run.remaining_work <= _EPS
        ]
        for query_id in completed:
            self._finish_chunk(query_id)

    def _process_arrivals(self) -> None:
        for admitted in self._source.poll(self._now):
            self._start_query(admitted)

    # -------------------------------------------------------------- plumbing
    def _timed(self, call: Callable):
        started = time.perf_counter()
        try:
            return call()
        finally:
            self._scheduling_seconds += time.perf_counter() - started

    def _kick_disk(self) -> None:
        if self._inflight is not None:
            return
        operation = self._timed(lambda: self._abm.next_load(self._now))
        if operation is None:
            return
        if isinstance(operation, DSMLoadOperation):
            # Each column block is a separate physical request (different
            # column files), so each pays its own positioning cost.
            duration = 0.0
            for block in operation.blocks:
                duration += self._disk.serve(
                    IORequest(
                        chunk=operation.chunk,
                        num_bytes=block.num_bytes,
                        kind=RequestKind.DSM_COLUMN_BLOCK,
                        column=block.column,
                        triggered_by=operation.triggered_by,
                    )
                )
        else:
            duration = self._disk.serve(
                IORequest(
                    chunk=operation.chunk,
                    num_bytes=operation.num_bytes,
                    kind=RequestKind.NSM_CHUNK,
                    triggered_by=operation.triggered_by,
                )
            )
        self._inflight = operation
        self._disk_done = self._now + duration

    def _start_query(self, admitted: AdmittedQuery) -> None:
        spec = admitted.spec
        if spec.query_id in self._queries:
            raise SimulationError(
                f"duplicate query id {spec.query_id} in workload"
            )
        run = _QueryRun(
            spec=spec,
            stream=admitted.stream,
            arrival_time=self._now,
            submit_time=admitted.submit_time,
        )
        self._queries[spec.query_id] = run
        self._started += 1
        self._timed(lambda: self._abm.register(spec, self._now))
        self._dispatch(spec.query_id)

    def _dispatch(self, query_id: int) -> None:
        run = self._queries[query_id]
        chunk = self._timed(lambda: self._abm.select_chunk(query_id, self._now))
        if chunk is None:
            run.blocked = True
            run.processing = False
            self._blocked.add(query_id)
            self._running.pop(query_id, None)
            return
        run.blocked = False
        run.processing = True
        run.remaining_work = max(_EPS, run.spec.cpu_per_chunk)
        self._blocked.discard(query_id)
        self._running[query_id] = run

    def _finish_chunk(self, query_id: int) -> None:
        run = self._running.pop(query_id)
        run.processing = False
        self._timed(lambda: self._abm.finish_chunk(query_id, self._now))
        handle = self._abm.handle(query_id)
        if handle.finished:
            self._complete_query(query_id, run)
        else:
            self._dispatch(query_id)

    def _complete_query(self, query_id: int, run: _QueryRun) -> None:
        handle = self._abm.handle(query_id)
        delivery_order = tuple(handle.delivery_order)
        self._timed(lambda: self._abm.unregister(query_id, self._now))
        spec = run.spec
        self._query_results.append(
            QueryResult(
                query_id=query_id,
                name=spec.name,
                stream=run.stream,
                arrival_time=run.arrival_time,
                finish_time=self._now,
                chunks=spec.num_chunks,
                cpu_seconds=spec.cpu_per_chunk * spec.num_chunks,
                loads_triggered=self._abm.loads_triggered.get(query_id, 0),
                delivery_order=delivery_order,
                submit_time=run.submit_time,
            )
        )
        run.done = True
        self._finished += 1
        for admitted in self._source.on_complete(query_id, self._now):
            self._start_query(admitted)

    # ---------------------------------------------------------------- result
    def _build_result(self) -> RunResult:
        total_time = self._now
        cpu_utilisation = 0.0
        if total_time > 0:
            cpu_utilisation = self._cpu_busy_area / (
                self._config.cpu.cores * total_time
            )
        streams = self._source.stream_results()
        return RunResult(
            policy=self._abm.policy.name,
            total_time=total_time,
            io_requests=self._abm.io_requests,
            bytes_read=self._disk.bytes_transferred,
            cpu_utilisation=cpu_utilisation,
            queries=sorted(self._query_results, key=lambda query: query.query_id),
            streams=sorted(streams, key=lambda stream: stream.stream),
            trace=self._trace,
            scheduling_seconds=self._scheduling_seconds,
            num_chunks=self._abm.num_chunks,
            config=self._config.describe(),
        )


def run_simulation(
    workload: Workload,
    config: SystemConfig,
    abm: AnyABM,
    record_trace: bool = False,
) -> RunResult:
    """Run a workload (streams or a query source) against an ABM instance."""
    simulator = ScanSimulator(workload, config, abm, record_trace=record_trace)
    return simulator.run()


def run_standalone(
    spec: ScanRequest,
    config: SystemConfig,
    abm_factory: Callable[[], AnyABM],
) -> float:
    """Cold standalone running time of one query (used to normalise latency).

    The query is executed alone against a freshly created (empty) buffer
    manager, exactly like the paper's per-query "cold time" baseline.
    """
    solo_config = config
    if config.stream_start_delay_s != 0.0:
        from dataclasses import replace

        solo_config = replace(config, stream_start_delay_s=0.0)
    result = run_simulation([[spec]], solo_config, abm_factory())
    return result.queries[0].latency
