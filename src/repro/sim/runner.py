"""The discrete-event scan simulator.

The simulator owns three resources:

* the **disk**: one or more independent volumes, each serving one
  chunk-granularity load operation at a time, timed by
  :class:`repro.disk.MultiVolumeDisk` (a single volume reproduces the classic
  lone :class:`repro.disk.DiskModel` exactly); chunks map onto volumes through
  a :class:`repro.storage.volumes.VolumeLayout`;
* the **CPU**: ``cores`` processors shared (processor sharing) by every query
  that currently has a chunk to crunch;
* the **ABM**: the Active Buffer Manager under test, which decides what the
  disk does and which chunk each query consumes next.

Queries are supplied by a pluggable :class:`repro.sim.source.QuerySource`:

* the paper's *closed* workload (:class:`repro.sim.source.ClosedStreamSource`)
  runs a fixed set of streams, each executing its queries back to back, with
  stream ``i`` starting ``i * stream_start_delay_s`` seconds after the run
  begins (3 seconds in the paper, Section 5.1);
* the *open-system* service layer (:mod:`repro.service`) feeds timestamped
  arrivals through an admission controller instead.

Passing plain streams (a sequence of sequences of scan requests) to
:class:`ScanSimulator` or :func:`run_simulation` wraps them in a
``ClosedStreamSource`` automatically, so existing closed-workload callers
are unaffected.

The simulation is deterministic: given the same workload, configuration and
policy it always produces the same result.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.core.abm import ActiveBufferManager, DSMActiveBufferManager
from repro.core.cscan import ScanRequest
from repro.core.ops import DSMLoadOperation, LoadOperation
from repro.disk.multivolume import MultiVolumeDisk
from repro.disk.request import IORequest, RequestKind
from repro.disk.trace import IOTrace
from repro.obs.postmortem import build_single_node_breakdown
from repro.obs.profile import SchedulerProfile
from repro.obs.recorder import (
    FlightRecorder,
    ObservabilityLike,
    build_flight_recorder,
)
from repro.sim.results import QueryResult, RunResult
from repro.sim.source import AdmittedQuery, ClosedStreamSource, QuerySource
from repro.sim.vector import VectorCpuLane, resolve_engine
from repro.storage.volumes import VolumeLayout

AnyABM = Union[ActiveBufferManager, DSMActiveBufferManager]
AnyLoadOp = Union[LoadOperation, DSMLoadOperation]
Workload = Union[QuerySource, Sequence[Sequence[ScanRequest]]]

_EPS = 1e-9
_MAX_EVENTS = 20_000_000


@dataclass
class _QueryRun:
    """Simulator-side bookkeeping of one query instance."""

    spec: ScanRequest
    stream: int
    arrival_time: float = 0.0
    submit_time: Optional[float] = None
    processing: bool = False
    blocked: bool = False
    done: bool = False
    #: Virtual time at which the current chunk's CPU work completes (under
    #: processor sharing every running query progresses at the same rate, so
    #: one global virtual clock orders all completions).
    cpu_target: float = 0.0
    #: Sequence number of the query's latest dispatch; stale heap entries
    #: (from a dispatch the query has since left) carry an older number.
    cpu_seq: int = -1
    #: Simulated time of the latest dispatch and the chunk it attached —
    #: always maintained: the postmortem stamps close every CPU span at
    #: chunk completion, and the flight recorder reuses them for its spans.
    dispatch_time: float = 0.0
    dispatch_chunk: Optional[int] = None
    #: When the query last blocked with no chunk to crunch; the stall ends
    #: at the disk completion that wakes it.
    block_start: float = 0.0
    #: Always-on postmortem accumulators: stalled time split into the waking
    #: operation's seek / transfer shares, and on-CPU execution time.
    stall_seek_s: float = 0.0
    stall_transfer_s: float = 0.0
    cpu_s: float = 0.0


class ScanSimulator:
    """Simulates a workload of concurrent scans against one ABM instance."""

    def __init__(
        self,
        workload: Workload,
        config: SystemConfig,
        abm: AnyABM,
        record_trace: bool = False,
        obs: ObservabilityLike = None,
        obs_process: str = "service",
        breakdowns: bool = True,
        engine: str = "auto",
    ) -> None:
        if isinstance(workload, QuerySource):
            self._source = workload
        else:
            self._source = ClosedStreamSource(workload, config.stream_start_delay_s)
        if self._source.drained():
            # Sources are single-use: a drained source at construction time
            # was already consumed by a previous run (fresh sources always
            # hold at least one pending query).
            raise SimulationError("query source is empty or already consumed")
        self._config = config
        self._abm = abm
        #: Execution backend: ``"scalar"`` keeps the reference heap walk,
        #: ``"numpy"`` batches the CPU completion math (and, when the ABM
        #: supports it, the interest-counter updates) into array ops.  Both
        #: backends make bit-for-bit the same scheduling decisions; the
        #: golden-trace equivalence tests pin that.
        self._engine = resolve_engine(engine, self._source.size_hint())
        self._cpu_lane: Optional[VectorCpuLane] = (
            VectorCpuLane() if self._engine == "numpy" else None
        )
        if self._engine == "numpy":
            enable_vectors = getattr(abm, "enable_vector_interest", None)
            if enable_vectors is not None:
                enable_vectors()
        self._volume_layout = VolumeLayout.from_disk_config(
            config.disk, abm.num_chunks
        )
        self._disk = MultiVolumeDisk(config.disk, self._volume_layout)
        self._num_volumes = self._disk.num_volumes
        self._trace = IOTrace() if record_trace else None
        #: Always-on latency attribution.  The stamps are pure arithmetic on
        #: times the event core already computes (no tracing buffer, no
        #: allocation on the hot path) and never influence scheduling;
        #: ``breakdowns=False`` exists only so the overhead benchmark can
        #: measure the stamping cost against a stamp-free baseline.
        self._breakdowns = breakdowns
        #: Seek/transfer split of each volume's in-flight operation, used to
        #: apportion the stall of every query the completion wakes.
        self._io_segments: Dict[int, Tuple[float, float]] = {}
        #: Cumulative disk busy-seconds sampled at each disk completion —
        #: the threshold-alert input series.  The running total is kept
        #: incrementally (charged when an operation is issued, exactly like
        #: the volumes charge ``busy_time`` at serve time) so sampling it
        #: does not re-sum the volumes on every completion batch.
        self._disk_busy_points: List[Tuple[float, float]] = []
        self._disk_busy_s = 0.0

        self._now = 0.0
        self._queries: Dict[int, _QueryRun] = {}
        self._running: Dict[int, _QueryRun] = {}
        self._blocked: Set[int] = set()
        #: Processor-sharing virtual clock: advances at the per-query service
        #: rate, so a query dispatched with work ``w`` completes when the
        #: clock reaches ``dispatch_value + w``.  Replaces the per-event
        #: O(running) ``remaining_work`` decrement loop.  The clock grows
        #: monotonically over a run, so ``vtime + w`` loses absolute
        #: precision as the run gets long; with double precision the
        #: rounding error stays far below ``_EPS`` until ``vtime`` exceeds
        #: the per-chunk work by ~1e7x, well past any simulated workload
        #: here (runs are bounded by ``_MAX_EVENTS`` long before that).
        self._vtime = 0.0
        #: Min-heap of ``(cpu_target, dispatch_seq, query_id)`` CPU
        #: completions; entries are invalidated lazily when the query leaves
        #: the running set (its ``cpu_seq`` moves on).
        self._cpu_heap: List[Tuple[float, int, int]] = []
        self._dispatch_seq = 0
        #: One in-flight load operation per busy volume.
        self._inflight: Dict[int, AnyLoadOp] = {}
        #: Completion time of each busy volume's in-flight operation.
        self._disk_done: Dict[int, float] = {}
        #: Min-heap of ``(done_time, volume)`` disk completions, mirroring
        #: ``_disk_done`` (entries are validated against it on peek).
        self._disk_heap: List[Tuple[float, int]] = []
        #: Issued operations waiting for their (busy) volume, per volume.
        self._pending_io: Dict[int, Deque[AnyLoadOp]] = {}
        self._query_results: List[QueryResult] = []
        self._started = 0
        self._finished = 0
        #: Queries removed by :meth:`cancel_query` (hedged losers, shard
        #: fail-stop).  They count as "accounted for" in :meth:`is_done`
        #: but never produce a :class:`QueryResult`.
        self._cancelled = 0
        self._cpu_busy_area = 0.0
        self._scheduling_seconds = 0.0
        #: Per-phase wall-clock accumulators behind ``scheduler_profile``
        #: (always maintained; two dict updates per already-timed call).
        self._phase_calls: Dict[str, int] = {}
        self._phase_seconds: Dict[str, float] = {}
        #: Decision count the policy carried before this run (captured when
        #: the run starts), so a policy object reused across simulations
        #: reports per-run calls.
        self._scheduling_calls_base = 0
        #: Optional flight recorder; ``None`` is the zero-overhead default
        #: and leaves every simulation outcome bit-for-bit unchanged.
        self._obs: Optional[FlightRecorder] = None
        self._pid = obs_process
        #: Per-volume utilisation gauge names, precomputed on attach so the
        #: disk-completion hot path does no string formatting.
        self._obs_vol_util: List[str] = []
        recorder = build_flight_recorder(obs)
        if recorder is not None:
            self.attach_observability(recorder, obs_process)

    # -------------------------------------------------------- observability
    def attach_observability(
        self, flight: FlightRecorder, process: str = "service"
    ) -> None:
        """Attach a flight recorder to this simulator and its components.

        ``process`` labels every event's track (e.g. ``"shard2"`` under a
        cluster); the disk and the ABM are attached with the same label so
        one simulator's events group into one Perfetto process.
        """
        self._obs = flight
        self._pid = process
        self._obs_vol_util = [
            f"{process}.vol{volume}.util"
            for volume in range(self._disk.num_volumes)
        ]
        self._disk.attach_observability(flight, process)
        self._abm.attach_observability(flight, process)

    @property
    def flight_recorder(self) -> Optional[FlightRecorder]:
        """The attached flight recorder, if any."""
        return self._obs

    @property
    def resolved_engine(self) -> str:
        """The execution backend in use: ``"scalar"`` or ``"numpy"``."""
        return self._engine

    @property
    def master_coupled(self) -> bool:
        """Whether the query source plumbs into driver-owned shared state
        (cluster coordinator); such simulators must not be forked into a
        worker process."""
        return bool(getattr(self._source, "master_coupled", False))

    # ------------------------------------------------------------------ API
    def run(self) -> RunResult:
        """Execute the workload to completion and return the run result."""
        self.begin_run()
        events = 0
        while not self.is_done():
            events += 1
            if events > _MAX_EVENTS:
                raise SimulationError(
                    f"simulation exceeded {_MAX_EVENTS} events; "
                    "likely a scheduling livelock"
                )
            next_time = self.next_step_time()
            if next_time is None:
                raise SimulationError(
                    "simulation deadlock: " + self.progress_summary()
                )
            self.step(next_time)
        return self.finish()

    # ------------------------------------------------------------- step API
    # The same event loop, exposed as discrete steps so an external driver
    # (:class:`repro.sim.lockstep.LockstepRunner`) can interleave several
    # simulators on one shared clock.  ``run()`` is exactly
    # ``begin_run(); while not is_done(): step(next_step_time()); finish()``,
    # so a simulator driven alone through this API behaves bit-for-bit like
    # ``run()``.
    def begin_run(self) -> None:
        """Capture per-run baselines; call once before the first step."""
        self._scheduling_calls_base = getattr(self._abm.policy, "scheduling_calls", 0)

    def is_done(self) -> bool:
        """``True`` once the source is drained and every query finished.

        In-flight disk loads also hold the run open: a cancelled query
        (hedged loser, fail-stop) may orphan a load whose service time was
        already charged to the disk, and the clock must advance through its
        completion or the disk would end the run busier than the wall clock.
        """
        return (
            self._source.drained()
            and self._finished + self._cancelled == self._started
            and not self._inflight
        )

    def next_step_time(self) -> Optional[float]:
        """Issue any possible disk loads, then return the time of the next
        event (``None`` if no event is scheduled — for a lone simulator that
        is a deadlock; under a lockstep driver it means "waiting")."""
        self._kick_disk()
        return self._next_event_time()

    def step(self, now: float) -> None:
        """Advance the clock to ``now`` and process every event due there."""
        self._advance_to(now)
        self._process_disk_completion()
        self._process_cpu_completions()
        self._process_arrivals()

    def finish(self) -> RunResult:
        """Build the run result; call once after the last step."""
        return self._build_result()

    def progress_summary(self) -> str:
        """One-line progress/diagnostic summary (used in deadlock errors)."""
        unfinished = self._started - self._finished - self._cancelled
        summary = (
            f"{len(self._blocked)} blocked queries, disk idle, "
            f"{unfinished} admitted queries "
            f"unfinished (policy {self._abm.policy.name!r})"
        )
        if self._cancelled:
            summary += f", {self._cancelled} cancelled"
        return summary

    # ------------------------------------------------------- failure control
    def cancel_query(self, query_id: int, now: float) -> None:
        """Abort one admitted, unfinished query (hedged loser / fail-stop).

        The query leaves every simulator structure — running set, blocked
        set, CPU heap (lazily, via its ``cpu_seq``) and the ABM — without
        producing a :class:`QueryResult` and without notifying the query
        source: the cluster coordinator owns whole-query completion and
        decides separately what the cancellation means for it.
        """
        run = self._queries.get(query_id)
        if run is None:
            raise SimulationError(f"cannot cancel unknown query {query_id}")
        if run.done:
            raise SimulationError(
                f"cannot cancel query {query_id}: it already finished"
            )
        del self._queries[query_id]
        was_running = self._running.pop(query_id, None)
        self._blocked.discard(query_id)
        if self._cpu_lane is not None:
            self._cpu_lane.discard(query_id)
        elif was_running is not None:
            # The heap entry of a cancelled running query goes stale; compact
            # once stale entries dominate so long hedge/fail-stop runs don't
            # grow the heap (and its pop cost) without bound.
            self._maybe_compact_cpu_heap()
        self._timed("cancel", lambda: self._abm.cancel(query_id, now))
        self._cancelled += 1
        if self._obs is not None:
            self._obs.async_end(
                run.spec.name, "exec", now, query_id,
                self._pid, "queries",
                cancelled=True,
                loads_triggered=self._abm.loads_triggered.get(query_id, 0),
            )

    def fail_stop(self, now: float) -> List[int]:
        """Cancel every admitted, unfinished query (a shard kill).

        Returns the cancelled query ids in ascending order.  Buffered
        chunks and in-flight disk loads are untouched: the pool's contents
        simply outlive their consumers, and loads complete harmlessly into
        an ABM with no interested queries.
        """
        victims = sorted(
            query_id
            for query_id, run in self._queries.items()
            if not run.done
        )
        for query_id in victims:
            self.cancel_query(query_id, now)
        return victims

    def set_disk_bandwidth_scale(self, scale: float) -> None:
        """Scale every volume's bandwidth (degraded shard); 1.0 restores."""
        self._disk.set_bandwidth_scale(scale)

    def completion_bound(self) -> Optional[float]:
        """Lower bound on the earliest time any admitted query can finish.

        Used by the parallel lockstep driver to size safe step windows: a
        window that ends strictly before this bound can be simulated without
        the simulator ever calling ``source.on_complete``.  The bound is
        sound because the virtual clock advances at most at wall-clock rate
        (``rate_per_query`` never exceeds 1) and disk stalls only add wall
        time, so a query needing ``v`` more virtual seconds of CPU work
        cannot finish before ``now + v``.  A small margin absorbs the
        floating-point rounding of the incremental virtual-clock sums.
        Returns ``None`` when no admitted query is unfinished.
        """
        best: Optional[float] = None
        for query_id, run in self._queries.items():
            if run.done:
                continue
            remaining = self._abm.handle(query_id).chunks_needed
            work = max(_EPS, run.spec.cpu_per_chunk)
            if run.processing:
                virtual = max(0.0, run.cpu_target - self._vtime)
                virtual += max(0, remaining - 1) * work
            else:
                virtual = max(1, remaining) * work
            bound = self._now + virtual
            if best is None or bound < best:
                best = bound
        if best is None:
            return None
        return best - (1e-9 + 1e-9 * abs(best))

    # ------------------------------------------------------------ event core
    def _cpu_entry_valid(self, entry: Tuple[float, int, int]) -> bool:
        """Whether a CPU-heap entry still describes a running dispatch."""
        _, seq, query_id = entry
        run = self._running.get(query_id)
        return run is not None and run.cpu_seq == seq

    def _next_cpu_target(self) -> Optional[float]:
        """Virtual completion time of the earliest live CPU entry (lazily
        discarding entries whose query was re-dispatched or left the CPU)."""
        if self._cpu_lane is not None:
            return self._cpu_lane.min_target()
        heap = self._cpu_heap
        while heap:
            entry = heap[0]
            if self._cpu_entry_valid(entry):
                return entry[0]
            heapq.heappop(heap)
        return None

    def _maybe_compact_cpu_heap(self) -> None:
        """Purge stale CPU entries once they outnumber live ones 2:1.

        Lazy invalidation alone never frees a stale entry that stays below
        the heap top, so a long run with many cancellations (hedged losers,
        adaptive-MPL churn) grows the heap — and every ``heappush`` —
        without bound.  Compaction keeps the heap within a constant factor
        of the running set while amortising to O(1) per cancellation.
        """
        heap = self._cpu_heap
        if len(heap) > 32 and len(heap) > 2 * len(self._running):
            heap[:] = [entry for entry in heap if self._cpu_entry_valid(entry)]
            heapq.heapify(heap)

    def _maybe_compact_disk_heap(self) -> None:
        """Disk-heap twin of :meth:`_maybe_compact_cpu_heap` (entries go
        stale when a volume's completion is superseded)."""
        heap = self._disk_heap
        if len(heap) > 32 and len(heap) > 2 * len(self._disk_done):
            heap[:] = [
                entry
                for entry in heap
                if self._disk_done.get(entry[1]) == entry[0]
            ]
            heapq.heapify(heap)

    def _next_disk_time(self) -> Optional[float]:
        """Completion time of the earliest in-flight disk operation."""
        heap = self._disk_heap
        while heap:
            done, volume = heap[0]
            if self._disk_done.get(volume) == done:
                return done
            heapq.heappop(heap)
        return None

    def _next_event_time(self) -> Optional[float]:
        candidates: List[float] = []
        arrival = self._source.next_event_time()
        if arrival is not None:
            candidates.append(arrival)
        disk = self._next_disk_time()
        if disk is not None:
            candidates.append(disk)
        if self._running:
            target = self._next_cpu_target()
            if target is not None:
                rate = self._config.cpu.rate_per_query(len(self._running))
                candidates.append(
                    self._now + max(0.0, target - self._vtime) / rate
                )
        if not candidates:
            return None
        return min(candidates)

    def _advance_to(self, next_time: float) -> None:
        dt = max(0.0, next_time - self._now)
        if dt > 0 and self._running:
            rate = self._config.cpu.rate_per_query(len(self._running))
            self._vtime += dt * rate
            self._cpu_busy_area += min(len(self._running), self._config.cpu.cores) * dt
        self._now = next_time

    def _process_disk_completion(self) -> None:
        due: List[int] = []
        heap = self._disk_heap
        while heap:
            done, volume = heap[0]
            if self._disk_done.get(volume) != done:
                heapq.heappop(heap)
                continue
            if done > self._now + _EPS:
                break
            heapq.heappop(heap)
            due.append(volume)
        # Volume order, matching the naive sorted() walk over the done map.
        due.sort()
        breakdowns = self._breakdowns
        for volume in due:
            operation = self._inflight.pop(volume)
            del self._disk_done[volume]
            seek_share = 0.0
            if breakdowns:
                seek, transfer = self._io_segments.pop(volume, (0.0, 0.0))
                duration = seek + transfer
                if duration > 0.0:
                    seek_share = seek / duration
            if self._trace is not None:
                if isinstance(operation, DSMLoadOperation):
                    for block in operation.blocks:
                        self._trace.record(
                            time=self._now,
                            chunk=operation.chunk,
                            num_bytes=block.num_bytes,
                            triggered_by=operation.triggered_by,
                            column=block.column,
                        )
                else:
                    self._trace.record(
                        time=self._now,
                        chunk=operation.chunk,
                        num_bytes=operation.num_bytes,
                        triggered_by=operation.triggered_by,
                    )
            woken = self._timed(
                "complete_load",
                lambda op=operation: self._abm.complete_load(op, self._now),
            )
            if self._obs is not None:
                self._obs.set_gauge(
                    self._obs_vol_util[volume], self._now,
                    self._disk.volumes[volume].busy_time / self._now
                    if self._now > 0 else 0.0,
                )
            for query_id in woken:
                if query_id in self._blocked:
                    if breakdowns:
                        # Close the blocked query's stall: it only ever wakes
                        # from a disk completion, so the whole interval since
                        # it blocked was a disk wait, split in the waking
                        # operation's own seek:transfer ratio (a zero-duration
                        # operation counts entirely as transfer).
                        run = self._queries[query_id]
                        stall = self._now - run.block_start
                        if stall > 0.0:
                            stall_seek = stall * seek_share
                            run.stall_seek_s += stall_seek
                            run.stall_transfer_s += stall - stall_seek
                    self._dispatch(query_id)
        if due and breakdowns:
            self._disk_busy_points.append((self._now, self._disk_busy_s))

    def _process_cpu_completions(self) -> None:
        # Pop every due completion from the heap instead of scanning all
        # running queries; only actually-due queries are touched.
        if self._cpu_lane is not None:
            due = self._cpu_lane.pop_due(self._vtime)
        else:
            heap = self._cpu_heap
            due = []
            while heap:
                entry = heap[0]
                if not self._cpu_entry_valid(entry):
                    heapq.heappop(heap)
                    continue
                if entry[0] > self._vtime + _EPS:
                    break
                heapq.heappop(heap)
                due.append((entry[1], entry[2]))
            # Dispatch order equals running-dict insertion order (every
            # dispatch inserts afresh), matching the naive completion scan.
            due.sort()
        for _, query_id in due:
            if query_id in self._running:
                self._finish_chunk(query_id)

    def _process_arrivals(self) -> None:
        for admitted in self._source.poll(self._now):
            self._start_query(admitted)

    # -------------------------------------------------------------- plumbing
    def _timed(self, phase: str, call: Callable):
        started = time.perf_counter()
        try:
            return call()
        finally:
            elapsed = time.perf_counter() - started
            self._scheduling_seconds += elapsed
            self._phase_calls[phase] = self._phase_calls.get(phase, 0) + 1
            self._phase_seconds[phase] = (
                self._phase_seconds.get(phase, 0.0) + elapsed
            )

    def _kick_disk(self) -> None:
        # Volumes freed by a completion first pick up their queued operations.
        for volume in sorted(self._pending_io):
            queue = self._pending_io[volume]
            if queue and volume not in self._inflight:
                self._begin_io(volume, queue.popleft())
        # Then pull fresh loads from the ABM while any volume head is idle,
        # so a decision stream that happens to target one busy volume cannot
        # starve the others.  Operations for a busy volume queue at that
        # volume (its request queue; bounded by the buffer pool, since every
        # issued load holds a slot reservation until it completes).  With a
        # single volume this degenerates to the classic one-load-at-a-time
        # loop: the first issued load makes the only volume busy.
        while len(self._inflight) < self._num_volumes:
            operation = self._timed(
                "next_load", lambda: self._abm.next_load(self._now)
            )
            if operation is None:
                return
            volume = self._disk.volume_of(operation.chunk)
            if volume in self._inflight:
                self._pending_io.setdefault(volume, deque()).append(operation)
            else:
                self._begin_io(volume, operation)

    def _begin_io(self, volume: int, operation: AnyLoadOp) -> None:
        """Start serving one load operation on an idle volume."""
        model = self._disk.volumes[volume]
        breakdowns = self._breakdowns
        if isinstance(operation, DSMLoadOperation):
            # Each column block is a separate physical request (different
            # column files), so each pays its own positioning cost.  The
            # running ``duration`` prefix timestamps each block's recorder
            # span at its actual start on the volume.
            duration = 0.0
            seek = 0.0
            for block in operation.blocks:
                duration += self._disk.serve(
                    IORequest(
                        chunk=operation.chunk,
                        num_bytes=block.num_bytes,
                        kind=RequestKind.DSM_COLUMN_BLOCK,
                        column=block.column,
                        triggered_by=operation.triggered_by,
                    ),
                    now=self._now + duration,
                )
                if breakdowns:
                    seek += model.last_seek_s
        else:
            duration = self._disk.serve(
                IORequest(
                    chunk=operation.chunk,
                    num_bytes=operation.num_bytes,
                    kind=RequestKind.NSM_CHUNK,
                    triggered_by=operation.triggered_by,
                ),
                now=self._now,
            )
            seek = model.last_seek_s
        if breakdowns:
            self._io_segments[volume] = (seek, max(0.0, duration - seek))
            self._disk_busy_s += duration
        self._inflight[volume] = operation
        done = self._now + duration
        self._disk_done[volume] = done
        heapq.heappush(self._disk_heap, (done, volume))
        self._maybe_compact_disk_heap()

    def _start_query(self, admitted: AdmittedQuery) -> None:
        spec = admitted.spec
        if spec.query_id in self._queries:
            raise SimulationError(
                f"duplicate query id {spec.query_id} in workload"
            )
        run = _QueryRun(
            spec=spec,
            stream=admitted.stream,
            arrival_time=self._now,
            submit_time=admitted.submit_time,
        )
        self._queries[spec.query_id] = run
        self._started += 1
        if self._obs is not None:
            self._obs.async_begin(
                spec.name, "exec", self._now, spec.query_id,
                self._pid, "queries",
                chunks=spec.num_chunks, stream=admitted.stream,
                query_class=spec.query_class,
            )
        self._timed("register", lambda: self._abm.register(spec, self._now))
        self._dispatch(spec.query_id)

    def _dispatch(self, query_id: int) -> None:
        run = self._queries[query_id]
        chunk = self._timed(
            "select_chunk", lambda: self._abm.select_chunk(query_id, self._now)
        )
        if chunk is None:
            run.blocked = True
            run.processing = False
            run.block_start = self._now
            self._blocked.add(query_id)
            self._running.pop(query_id, None)
            if self._obs is not None and not self._abm.handle(query_id).finished:
                self._obs.instant(
                    "exec.blocked", "exec", self._now, self._pid, "cpu",
                    query=query_id,
                )
            return
        run.blocked = False
        run.processing = True
        run.dispatch_time = self._now
        run.dispatch_chunk = chunk
        run.cpu_target = self._vtime + max(_EPS, run.spec.cpu_per_chunk)
        self._dispatch_seq += 1
        run.cpu_seq = self._dispatch_seq
        self._blocked.discard(query_id)
        self._running[query_id] = run
        if self._cpu_lane is not None:
            self._cpu_lane.add(query_id, run.cpu_target, run.cpu_seq)
        else:
            heapq.heappush(
                self._cpu_heap, (run.cpu_target, run.cpu_seq, query_id)
            )

    def _finish_chunk(self, query_id: int) -> None:
        run = self._running.pop(query_id)
        run.processing = False
        if self._breakdowns:
            run.cpu_s += self._now - run.dispatch_time
        if self._obs is not None:
            self._obs.complete(
                "cpu.chunk", "cpu", run.dispatch_time,
                self._now - run.dispatch_time, self._pid, "cpu",
                query=query_id, chunk=run.dispatch_chunk,
            )
        self._timed(
            "finish_chunk", lambda: self._abm.finish_chunk(query_id, self._now)
        )
        handle = self._abm.handle(query_id)
        if handle.finished:
            self._complete_query(query_id, run)
        else:
            self._dispatch(query_id)

    def _complete_query(self, query_id: int, run: _QueryRun) -> None:
        handle = self._abm.handle(query_id)
        delivery_order = tuple(handle.delivery_order)
        self._timed(
            "unregister", lambda: self._abm.unregister(query_id, self._now)
        )
        if self._obs is not None:
            self._obs.async_end(
                run.spec.name, "exec", self._now, query_id,
                self._pid, "queries",
                loads_triggered=self._abm.loads_triggered.get(query_id, 0),
            )
        spec = run.spec
        breakdown = None
        if self._breakdowns:
            submit = (
                run.submit_time
                if run.submit_time is not None
                else run.arrival_time
            )
            breakdown = build_single_node_breakdown(
                self._now - submit,
                admission_wait=max(0.0, run.arrival_time - submit),
                disk_seek=run.stall_seek_s,
                disk_transfer=run.stall_transfer_s,
                cpu_execute=run.cpu_s,
                where=f"query {query_id} breakdown",
            )
        self._query_results.append(
            QueryResult(
                query_id=query_id,
                name=spec.name,
                stream=run.stream,
                arrival_time=run.arrival_time,
                finish_time=self._now,
                chunks=spec.num_chunks,
                cpu_seconds=spec.cpu_per_chunk * spec.num_chunks,
                loads_triggered=self._abm.loads_triggered.get(query_id, 0),
                delivery_order=delivery_order,
                submit_time=run.submit_time,
                query_class=spec.query_class,
                breakdown=breakdown,
            )
        )
        run.done = True
        self._finished += 1
        for admitted in self._source.on_complete(query_id, self._now):
            self._start_query(admitted)

    # ---------------------------------------------------------------- result
    def _build_result(self) -> RunResult:
        total_time = self._now
        cpu_utilisation = 0.0
        if total_time > 0:
            cpu_utilisation = self._cpu_busy_area / (
                self._config.cpu.cores * total_time
            )
        streams = self._source.stream_results()
        return RunResult(
            policy=self._abm.policy.name,
            total_time=total_time,
            io_requests=self._abm.io_requests,
            bytes_read=self._disk.bytes_transferred,
            cpu_utilisation=cpu_utilisation,
            queries=sorted(self._query_results, key=lambda query: query.query_id),
            streams=sorted(streams, key=lambda stream: stream.stream),
            trace=self._trace,
            scheduling_seconds=self._scheduling_seconds,
            scheduling_calls=(
                getattr(self._abm.policy, "scheduling_calls", 0)
                - self._scheduling_calls_base
            ),
            num_chunks=self._abm.num_chunks,
            config=self._config.describe(),
            disk_utilisation=self._disk.utilisation(total_time),
            volume_utilisation=self._disk.per_volume_utilisation(total_time),
            disk_sequential_fraction=self._disk.sequential_fraction(),
            scheduler_profile=SchedulerProfile.from_counts(
                dict(self._phase_calls), dict(self._phase_seconds)
            ),
            disk_busy_timeline=tuple(self._disk_busy_points),
        )


def run_simulation(
    workload: Workload,
    config: SystemConfig,
    abm: AnyABM,
    record_trace: bool = False,
    obs: ObservabilityLike = None,
    breakdowns: bool = True,
    engine: str = "auto",
) -> RunResult:
    """Run a workload (streams or a query source) against an ABM instance.

    ``obs`` optionally attaches a flight recorder
    (:class:`~repro.common.config.ObservabilityConfig` or a pre-built
    :class:`~repro.obs.FlightRecorder`); ``None`` records nothing and
    leaves the result bit-for-bit identical.  ``breakdowns`` keeps the
    always-on per-query latency attribution
    (:class:`repro.obs.postmortem.LatencyBreakdown`) — stamps never affect
    scheduling, so disabling it changes nothing but the attached metadata.
    ``engine`` selects the execution backend (``"scalar"``, ``"numpy"`` or
    ``"auto"``); every backend produces bit-for-bit the same result.
    """
    simulator = ScanSimulator(
        workload, config, abm, record_trace=record_trace, obs=obs,
        breakdowns=breakdowns, engine=engine,
    )
    return simulator.run()


def run_standalone(
    spec: ScanRequest,
    config: SystemConfig,
    abm_factory: Callable[[], AnyABM],
) -> float:
    """Cold standalone running time of one query (used to normalise latency).

    The query is executed alone against a freshly created (empty) buffer
    manager, exactly like the paper's per-query "cold time" baseline.
    """
    solo_config = config
    if config.stream_start_delay_s != 0.0:
        from dataclasses import replace

        solo_config = replace(config, stream_start_delay_s=0.0)
    result = run_simulation([[spec]], solo_config, abm_factory())
    return result.queries[0].latency
