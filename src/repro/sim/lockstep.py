"""Lockstep execution of several scan simulators on one shared clock.

The cluster layer (:mod:`repro.cluster`) runs one :class:`ScanSimulator` per
shard — each with its own ABM, disk volumes and event heaps — but the shards
serve sub-queries of the *same* front-door queries, so their clocks must stay
consistent: a sub-query scattered at (global) time ``t`` must not land on a
shard whose clock already passed ``t``.

:class:`LockstepRunner` guarantees that by advancing the fleet one global
event at a time: each round it asks every simulator for its next event time
(:meth:`ScanSimulator.next_step_time`), takes the global minimum, and steps
exactly the simulators whose event is due at that minimum.  Simulators with
later events are left untouched, so their clocks never pass the global
frontier, and any sub-query scattered during the round carries a timestamp
at (or after) the frontier.

Because a fleet of one is stepped on every round, a single simulator driven
by :class:`LockstepRunner` executes the exact event sequence of
:meth:`ScanSimulator.run` — the cluster's 1-shard golden-trace equivalence
rests on this.

Every *live* simulator is re-probed each round (``next_step_time`` must
kick its disk before the next event time is known), so a shard that is not
stepped still pays one policy call per global round; that keeps the driver
oblivious to source internals — no cross-layer cache invalidation — at the
price of slightly inflated per-shard ``scheduling_calls`` in deep
multi-shard fleets.  Finished simulators are skipped entirely.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.errors import SimulationError
from repro.obs.recorder import FlightRecorder, ObservabilityLike, build_flight_recorder
from repro.sim.parallel import fleet_parallelizable, run_fleet_parallel
from repro.sim.results import RunResult
from repro.sim.runner import _EPS, _MAX_EVENTS, ScanSimulator


class LockstepRunner:
    """Advances several :class:`ScanSimulator` instances on one clock.

    When ``obs`` is given (an :class:`ObservabilityConfig` or an existing
    :class:`FlightRecorder`), one shared flight recorder is attached to every
    simulator that does not already carry one, labelling shard ``i``'s events
    with the process ``"shard{i}"`` — every shard's spans land in one trace
    on the shared clock.

    ``message_source`` (anything with an ``earliest_in_flight() ->
    Optional[float]`` method, in practice the cluster coordinator) makes
    in-flight coordinator messages first-class events of the min-frontier
    step: each round the frontier is checked against the earliest
    undelivered message, so a shard clock can never pass a scatter that is
    still on the wire.  The shards' own event probes already surface those
    deliveries (a buffered sub-query is part of ``next_step_time``), so the
    check is an invariant guard, not a behaviour change.

    ``interrupts`` are external frontier-event sources (failure injectors,
    hedge monitors): anything with ``next_event_time() -> Optional[float]``
    and ``fire(now) -> None``.  Their times join the frontier candidates
    exactly like in-flight messages, and a due interrupt fires *before* any
    simulator steps at that instant — a kill scheduled at the same time as
    a scatter delivery deterministically wins the race.  After firing, the
    round restarts (the interrupt may have created, cancelled or re-routed
    work on any shard).

    ``workers`` fans a fleet of *self-contained* simulators out across that
    many forked processes (see :mod:`repro.sim.parallel`).  Coupled fleets —
    a ``message_source``, interrupts, or any ``master_coupled`` query
    source — always run on the serial min-frontier path no matter the
    worker count, and the parallel path reproduces each simulator's solo
    trajectory exactly, so ``workers`` can never change results.
    """

    def __init__(
        self,
        simulators: Sequence[ScanSimulator],
        obs: ObservabilityLike = None,
        message_source=None,
        interrupts: Sequence = (),
        workers: int = 1,
    ) -> None:
        if not simulators:
            raise SimulationError("lockstep runner needs at least one simulator")
        if int(workers) < 1:
            raise SimulationError(f"workers must be >= 1, got {workers}")
        self._simulators = list(simulators)
        self._message_source = message_source
        self._interrupts = list(interrupts)
        self._workers = min(int(workers), len(self._simulators))
        self.flight_recorder: Optional[FlightRecorder] = None
        recorder = build_flight_recorder(obs)
        if recorder is not None:
            for index, simulator in enumerate(self._simulators):
                if simulator.flight_recorder is None:
                    simulator.attach_observability(recorder, f"shard{index}")
            self.flight_recorder = recorder
        else:
            for simulator in self._simulators:
                if simulator.flight_recorder is not None:
                    self.flight_recorder = simulator.flight_recorder
                    break

    def run(self) -> List[RunResult]:
        """Execute every simulator to completion; returns one result each."""
        simulators = self._simulators
        if self._workers > 1 and fleet_parallelizable(
            simulators, self._message_source, self._interrupts
        ):
            results = run_fleet_parallel(simulators, self._workers)
            if results is not None:
                return results
        for simulator in simulators:
            simulator.begin_run()
        rounds = 0
        while not all(simulator.is_done() for simulator in simulators):
            rounds += 1
            if rounds > _MAX_EVENTS:
                raise SimulationError(
                    f"lockstep simulation exceeded {_MAX_EVENTS} rounds; "
                    "likely a scheduling livelock"
                )
            # Finished simulators are skipped outright: once a shard's
            # source is drained it can never receive another sub-query, so
            # probing it (which would invoke its ABM's policy via the disk
            # kick) only inflates its per-run scheduling statistics.
            times: List[Optional[float]] = [
                None if simulator.is_done() else simulator.next_step_time()
                for simulator in simulators
            ]
            live = [time for time in times if time is not None]
            interrupt_times = [
                (when, source)
                for source in self._interrupts
                for when in (source.next_event_time(),)
                if when is not None
            ]
            candidates = live + [when for when, _ in interrupt_times]
            in_flight = (
                self._message_source.earliest_in_flight()
                if self._message_source is not None
                else None
            )
            if not candidates:
                detail = "; ".join(
                    f"shard {index}: {simulator.progress_summary()}"
                    for index, simulator in enumerate(simulators)
                    if not simulator.is_done()
                )
                if in_flight is not None:
                    detail += (
                        f"; earliest undelivered coordinator message "
                        f"due at {in_flight:.6f}"
                    )
                stall = getattr(self._message_source, "stall_detail", None)
                if stall is not None:
                    extra = stall()
                    if extra:
                        detail += f"; {extra}"
                raise SimulationError(f"cluster deadlock: {detail}")
            frontier = min(candidates)
            if in_flight is not None and frontier > in_flight + _EPS:
                raise SimulationError(
                    f"lockstep frontier {frontier:.6f} passed an undelivered "
                    f"coordinator message due at {in_flight:.6f}"
                )
            # Interrupts due at the frontier fire before any simulator
            # steps there, then the round restarts with fresh probes: the
            # interrupt may have cancelled or re-routed work anywhere.
            fired = False
            for when, source in interrupt_times:
                while when is not None and when <= frontier + _EPS:
                    source.fire(when)
                    fired = True
                    when = source.next_event_time()
            if fired:
                continue
            for simulator, time in zip(simulators, times):
                if time is not None and time <= frontier + _EPS:
                    simulator.step(time)
        return [simulator.finish() for simulator in simulators]
