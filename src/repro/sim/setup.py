"""Factories wiring storage layouts, policies and buffer managers together."""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.common.config import SystemConfig
from repro.core.abm import ActiveBufferManager, DSMActiveBufferManager
from repro.core.policies import make_dsm_policy, make_policy
from repro.core.policies.base import DSMSchedulingPolicy, SchedulingPolicy
from repro.storage.dsm import DSMTableLayout
from repro.storage.nsm import NSMTableLayout


def make_nsm_abm(
    layout: NSMTableLayout,
    config: SystemConfig,
    policy: Union[str, SchedulingPolicy],
    capacity_chunks: Optional[int] = None,
    incremental: bool = True,
    **policy_kwargs,
) -> ActiveBufferManager:
    """Build an NSM Active Buffer Manager for a table layout.

    ``policy`` may be a policy name (``"normal"``, ``"attach"``,
    ``"elevator"``, ``"relevance"``) or an already-constructed policy object.
    ``incremental=False`` selects the naive (recompute-from-scratch)
    relevance bookkeeping; decisions are identical either way.
    """
    if isinstance(policy, str):
        policy_obj = make_policy(policy, **policy_kwargs)
    else:
        policy_obj = policy
    capacity = capacity_chunks or config.buffer.capacity_chunks
    chunk_sizes = [layout.chunk_size_bytes(chunk) for chunk in layout.all_chunks()]
    return ActiveBufferManager(
        num_chunks=layout.num_chunks,
        capacity_chunks=capacity,
        policy=policy_obj,
        chunk_bytes=layout.chunk_bytes,
        chunk_sizes=chunk_sizes,
        incremental=incremental,
    )


def make_dsm_abm(
    layout: DSMTableLayout,
    config: SystemConfig,
    policy: Union[str, DSMSchedulingPolicy],
    capacity_pages: Optional[int] = None,
    incremental: bool = True,
    **policy_kwargs,
) -> DSMActiveBufferManager:
    """Build a DSM Active Buffer Manager for a column-store layout."""
    if isinstance(policy, str):
        policy_obj = make_dsm_policy(policy, **policy_kwargs)
    else:
        policy_obj = policy
    if capacity_pages is None:
        capacity_pages = config.buffer.capacity_bytes // layout.page_bytes
    return DSMActiveBufferManager(
        layout=layout,
        capacity_pages=capacity_pages,
        policy=policy_obj,
        incremental=incremental,
    )


def nsm_abm_factory(
    layout: NSMTableLayout,
    config: SystemConfig,
    policy_name: str,
    capacity_chunks: Optional[int] = None,
    **policy_kwargs,
) -> Callable[[], ActiveBufferManager]:
    """A zero-argument factory producing fresh NSM ABMs (one per run)."""

    def factory() -> ActiveBufferManager:
        return make_nsm_abm(
            layout, config, policy_name, capacity_chunks=capacity_chunks, **policy_kwargs
        )

    return factory


def dsm_abm_factory(
    layout: DSMTableLayout,
    config: SystemConfig,
    policy_name: str,
    capacity_pages: Optional[int] = None,
    **policy_kwargs,
) -> Callable[[], DSMActiveBufferManager]:
    """A zero-argument factory producing fresh DSM ABMs (one per run)."""

    def factory() -> DSMActiveBufferManager:
        return make_dsm_abm(
            layout, config, policy_name, capacity_pages=capacity_pages, **policy_kwargs
        )

    return factory
