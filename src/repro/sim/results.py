"""Result records produced by a simulation run.

These dataclasses carry exactly the quantities the paper reports:
per-query latency and I/O counts (Tables 2 and 3), per-stream running time
(the "avg. stream time" throughput metric), total time, CPU utilisation and
the number of I/O requests, plus the raw I/O trace for Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.common.config import DEFAULT_QUERY_CLASS
from repro.disk.trace import IOTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.postmortem import LatencyBreakdown
    from repro.obs.profile import SchedulerProfile


@dataclass
class QueryResult:
    """Outcome of one executed query."""

    query_id: int
    name: str
    stream: int
    arrival_time: float
    finish_time: float
    chunks: int
    cpu_seconds: float
    loads_triggered: int
    #: Chunks in the order the ABM delivered them to the query; out-of-order
    #: for the relevance policy, and usable to replay the same delivery in the
    #: in-memory engine (CScan).
    delivery_order: tuple = ()
    #: When the query was submitted to the system (open-system arrivals).
    #: ``None`` means the query started executing the moment it was submitted
    #: (closed streams), i.e. it never waited in an admission queue.
    submit_time: Optional[float] = None
    #: Workload class of the query (:data:`DEFAULT_QUERY_CLASS` unless the
    #: workload declares classes), used by the per-class SLO tables.
    query_class: str = DEFAULT_QUERY_CLASS
    #: Always-on postmortem attribution
    #: (:class:`repro.obs.postmortem.LatencyBreakdown`): the end-to-end
    #: latency decomposed into non-overlapping phases that sum exactly back
    #: to it.  ``None`` only for hand-built results or runs that disabled
    #: breakdowns; never part of the scheduling fingerprint.
    breakdown: Optional["LatencyBreakdown"] = None

    @property
    def latency(self) -> float:
        """Wall-clock latency of the query (arrival to completion)."""
        return self.finish_time - self.arrival_time

    @property
    def queue_wait(self) -> float:
        """Time spent waiting in the admission queue before execution."""
        if self.submit_time is None:
            return 0.0
        return max(0.0, self.arrival_time - self.submit_time)

    @property
    def end_to_end_latency(self) -> float:
        """Submission-to-completion latency (queue wait plus execution)."""
        if self.submit_time is None:
            return self.latency
        return self.finish_time - self.submit_time

    def normalized_latency(self, standalone: float) -> float:
        """Latency divided by the query's cold standalone running time."""
        if standalone <= 0:
            return float("inf")
        return self.latency / standalone


@dataclass
class StreamResult:
    """Outcome of one query stream (queries executed back to back)."""

    stream: int
    start_time: float
    finish_time: float
    query_names: List[str] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Running time of the stream."""
        return self.finish_time - self.start_time


@dataclass
class RunResult:
    """Outcome of a full simulation run."""

    policy: str
    total_time: float
    io_requests: int
    bytes_read: int
    cpu_utilisation: float
    queries: List[QueryResult]
    streams: List[StreamResult]
    trace: Optional[IOTrace] = None
    scheduling_seconds: float = 0.0
    #: Number of scheduling decisions the policy made (select / load /
    #: eviction calls), for per-decision cost reporting; 0 for policies that
    #: do not count their calls.
    scheduling_calls: int = 0
    num_chunks: int = 0
    config: Dict[str, object] = field(default_factory=dict)
    #: Mean busy fraction over all disk volumes (one volume: plain disk
    #: utilisation).
    disk_utilisation: float = 0.0
    #: Busy fraction of each disk volume over the run (empty when the runner
    #: did not attach disk statistics, e.g. hand-built results).
    volume_utilisation: Tuple[float, ...] = ()
    #: Fraction of disk requests that avoided a full seek (per-volume
    #: sequential or same-chunk accesses) — the seek-amortisation measure.
    disk_sequential_fraction: float = 0.0
    #: Per-phase wall-clock breakdown of the scheduler
    #: (:class:`repro.obs.profile.SchedulerProfile`): ``scheduling_seconds``
    #: split over register / select_chunk / next_load / complete_load /
    #: finish_chunk / unregister.  ``None`` for hand-built results.
    scheduler_profile: Optional["SchedulerProfile"] = None
    #: Cumulative disk busy-seconds sampled at every disk completion:
    #: ``(time, total_busy_seconds_so_far)`` points, monotone in both
    #: coordinates.  Feeds the threshold alerts in :mod:`repro.obs.alerts`;
    #: empty for hand-built results.
    disk_busy_timeline: Tuple[Tuple[float, float], ...] = ()

    # ------------------------------------------------------------ aggregates
    @property
    def average_stream_time(self) -> float:
        """The paper's throughput metric: mean stream running time."""
        if not self.streams:
            return 0.0
        return sum(stream.duration for stream in self.streams) / len(self.streams)

    @property
    def average_latency(self) -> float:
        """Mean query latency over every executed query."""
        if not self.queries:
            return 0.0
        return sum(query.latency for query in self.queries) / len(self.queries)

    def average_normalized_latency(self, standalone_times: Dict[str, float]) -> float:
        """The paper's latency metric: mean of per-query latency divided by
        the query's cold standalone time (grouped by query name)."""
        if not self.queries:
            return 0.0
        total = 0.0
        for query in self.queries:
            standalone = standalone_times.get(query.name, 0.0)
            total += query.normalized_latency(standalone)
        return total / len(self.queries)

    def queries_by_name(self) -> Dict[str, List[QueryResult]]:
        """Group query results by query name (e.g. ``"F-10"``)."""
        grouped: Dict[str, List[QueryResult]] = {}
        for query in self.queries:
            grouped.setdefault(query.name, []).append(query)
        return grouped

    @property
    def scheduling_fraction(self) -> float:
        """Fraction of the (simulated) execution time spent making scheduling
        decisions (measured in real seconds of the scheduler code, which is
        what Figure 8 of the paper reports)."""
        if self.total_time <= 0:
            return 0.0
        return self.scheduling_seconds / self.total_time

    @property
    def per_decision_seconds(self) -> float:
        """Mean real seconds per counted scheduling decision (the paper's
        per-call scheduling-cost measure from Figure 8)."""
        if self.scheduling_calls <= 0:
            return 0.0
        return self.scheduling_seconds / self.scheduling_calls


def scheduling_fingerprint(result: RunResult) -> tuple:
    """Everything scheduling decisions can influence, as one comparable value.

    Used by the golden-trace equivalence tests and the scheduling-overhead
    benchmark to assert that the incremental bookkeeping makes bit-for-bit
    the same decisions as the naive walks: per-query timings, attribution
    and delivery orders, per-stream timings, and the raw I/O trace.
    """
    queries = [
        (
            query.query_id,
            query.arrival_time,
            query.finish_time,
            query.loads_triggered,
            tuple(query.delivery_order),
            query.submit_time,
        )
        for query in result.queries
    ]
    streams = [
        (stream.stream, stream.start_time, stream.finish_time)
        for stream in result.streams
    ]
    trace = list(result.trace) if result.trace is not None else None
    return (
        result.total_time,
        result.io_requests,
        result.bytes_read,
        queries,
        streams,
        trace,
    )
