"""Numpy batch-execution backend for the scan simulator.

The event core in :mod:`repro.sim.runner` keeps one lazily-invalidated heap
of CPU completions.  Under processor sharing every running query advances on
the same virtual clock, so "which completions are due" is a vectorisable
question: keep every running query's virtual completion target in one flat
array and answer ``min()`` / ``targets <= limit`` with numpy instead of a
Python heap walk.

:class:`VectorCpuLane` is that array.  It is an exact drop-in for the heap
discipline:

* entries are removed eagerly (cancel / chunk completion), so there are no
  stale entries to skip — the array always holds exactly the running set;
* :meth:`pop_due` returns due completions sorted by ``(dispatch_seq,
  query_id)``, byte-for-byte the order the heap pops them in (the heap holds
  at most one live entry per running query, and the scalar path sorts its
  due batch the same way);
* comparisons use the same ``_EPS`` tolerance as the scalar path.

The module degrades gracefully: when numpy is missing every entry point
reports the vector engine as unavailable and the simulator stays on the
scalar path.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly by engine resolution
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

from repro.common.errors import SimulationError

_EPS = 1e-9

#: ``engine="auto"`` switches to numpy at this many workload queries; below
#: it the per-call numpy overhead outweighs the batch win.
AUTO_NUMPY_THRESHOLD = 32

ENGINES = ("auto", "scalar", "numpy")


def numpy_available() -> bool:
    """Whether the numpy backend can be used at all."""
    return _np is not None


def resolve_engine(engine: str, size_hint: Optional[int]) -> str:
    """Resolve an ``engine=`` knob to ``"scalar"`` or ``"numpy"``.

    ``auto`` picks numpy when it is importable and the workload is known to
    hold at least :data:`AUTO_NUMPY_THRESHOLD` queries; an unknown size
    (open-system sources, cluster shards) conservatively stays scalar —
    callers that know better pass ``engine="numpy"`` explicitly.
    """
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if engine == "numpy":
        if _np is None:
            raise SimulationError("engine='numpy' requested but numpy is not installed")
        return "numpy"
    if engine == "scalar":
        return "scalar"
    if _np is None or size_hint is None or size_hint < AUTO_NUMPY_THRESHOLD:
        return "scalar"
    return "numpy"


class VectorCpuLane:
    """Slot-table of virtual CPU completion targets for the running set.

    Each running query occupies one slot: ``targets[slot]`` is its virtual
    completion time (``+inf`` marks a free slot), ``seqs[slot]`` its dispatch
    sequence number and ``qids[slot]`` its query id.  The table grows
    geometrically and never shrinks; freed slots are recycled LIFO.
    """

    __slots__ = ("_targets", "_seqs", "_qids", "_slot_of", "_free")

    def __init__(self, capacity: int = 64) -> None:
        if _np is None:  # pragma: no cover - guarded by resolve_engine
            raise SimulationError("VectorCpuLane requires numpy")
        capacity = max(4, capacity)
        self._targets = _np.full(capacity, _np.inf, dtype=_np.float64)
        self._seqs = _np.zeros(capacity, dtype=_np.int64)
        self._qids = _np.zeros(capacity, dtype=_np.int64)
        self._slot_of = {}
        self._free = list(range(capacity - 1, -1, -1))

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, query_id: int) -> bool:
        return query_id in self._slot_of

    def _grow(self) -> None:
        old = len(self._targets)
        new = old * 2
        targets = _np.full(new, _np.inf, dtype=_np.float64)
        targets[:old] = self._targets
        self._targets = targets
        self._seqs = _np.resize(self._seqs, new)
        self._qids = _np.resize(self._qids, new)
        self._free.extend(range(new - 1, old - 1, -1))

    def add(self, query_id: int, target: float, seq: int) -> None:
        """Insert (or replace) the running query's completion target."""
        slot = self._slot_of.get(query_id)
        if slot is None:
            if not self._free:
                self._grow()
            slot = self._free.pop()
            self._slot_of[query_id] = slot
        self._targets[slot] = target
        self._seqs[slot] = seq
        self._qids[slot] = query_id

    def discard(self, query_id: int) -> None:
        """Remove the query's entry if present (cancel / chunk completion)."""
        slot = self._slot_of.pop(query_id, None)
        if slot is not None:
            self._targets[slot] = _np.inf
            self._free.append(slot)

    def min_target(self) -> Optional[float]:
        """Earliest virtual completion target over the running set."""
        if not self._slot_of:
            return None
        return float(self._targets.min())

    def pop_due(self, virtual_limit: float) -> List[Tuple[int, int]]:
        """Remove and return every entry with ``target <= limit + _EPS``.

        Returned as ``(dispatch_seq, query_id)`` sorted ascending — the exact
        batch and order the scalar heap pops and sorts.  The snapshot is
        taken before any caller processing, so dispatches the caller makes
        while handling the batch are not re-examined (heap semantics).
        """
        if not self._slot_of:
            return []
        slots = (self._targets <= virtual_limit + _EPS).nonzero()[0]
        if slots.size == 0:
            return []
        due = sorted(zip(self._seqs[slots].tolist(), self._qids[slots].tolist()))
        self._targets[slots] = _np.inf
        self._free.extend(slots.tolist())
        for _, query_id in due:
            del self._slot_of[query_id]
        return due
