"""Discrete-event simulation of concurrent scans.

The simulator drives an Active Buffer Manager with a workload of query
streams, modelling:

* a disk subsystem of one or more independent volumes, each serving one
  chunk-granularity load at a time (seek + transfer,
  :class:`repro.disk.MultiVolumeDisk`; one volume behaves exactly like the
  classic lone :class:`repro.disk.DiskModel`),
* a CPU with a fixed number of cores shared by all queries that currently
  have data to process (processor sharing),
* query streams that execute their queries sequentially and start with a
  configurable delay between streams (3 s in the paper).

The main entry points are :func:`repro.sim.runner.run_simulation` and the
:func:`repro.sim.setup.make_nsm_abm` / :func:`repro.sim.setup.make_dsm_abm`
factories; parameter sweeps used by the Figure 6/7 benchmarks live in
:mod:`repro.sim.sweeps`.  :class:`repro.sim.lockstep.LockstepRunner`
advances several simulators on one shared clock for the cluster layer
(:mod:`repro.cluster`).
"""

from repro.sim.results import QueryResult, StreamResult, RunResult
from repro.sim.lockstep import LockstepRunner
from repro.sim.runner import ScanSimulator, run_simulation, run_standalone
from repro.sim.setup import make_nsm_abm, make_dsm_abm, nsm_abm_factory, dsm_abm_factory
from repro.sim.source import AdmittedQuery, ClosedStreamSource, QuerySource, NO_STREAM

__all__ = [
    "QueryResult",
    "StreamResult",
    "RunResult",
    "ScanSimulator",
    "LockstepRunner",
    "run_simulation",
    "run_standalone",
    "make_nsm_abm",
    "make_dsm_abm",
    "nsm_abm_factory",
    "dsm_abm_factory",
    "AdmittedQuery",
    "ClosedStreamSource",
    "QuerySource",
    "NO_STREAM",
]
