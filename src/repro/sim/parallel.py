"""Multiprocess fan-out for fleets of independent scan simulators.

:class:`repro.sim.lockstep.LockstepRunner` exists because cluster shards
serve sub-queries of the same front-door queries: their clocks must advance
behind one shared frontier.  A fleet of *self-contained* simulators — each
with its own query source, ABM and disk — has no such coupling: no event on
one simulator can ever reach another, so each one's trajectory is exactly
its solo ``run()`` trajectory no matter how the fleet is interleaved (the
serial driver's extra ``next_step_time`` probes are idempotent disk kicks
that only inflate per-shard ``scheduling_calls``).

That independence is what this module exploits.  ``workers=N`` forks the
fleet across ``N`` processes; each worker drives its simulators to
completion with the plain solo loop and ships back

* the :class:`~repro.sim.results.RunResult`, and
* the slice of flight-recorder state the run appended (trace events, metric
  points as deltas, sampled overhead),

which the parent merges back into the original recorder objects at the
join barrier, ordered by ``(timestamp, shard index, emission order)`` — a
total order fixed by the simulators' trajectories, so results and merged
telemetry are identical for every worker count (and every partition).

Fleets that *are* coupled — a cluster ``message_source``, external
interrupt sources, or any simulator whose query source is
``master_coupled`` (the cluster's ``ShardSource`` plumbs straight into
coordinator state) — are not eligible: the lockstep runner keeps them on
the proven serial path regardless of ``workers``, so worker count can
never change results there either.

Workers are forked (POSIX only); on platforms without the ``fork`` start
method the fleet silently runs serially.  Forking copies the seeded RNG
state along with everything else, so per-shard randomness stays exactly
where the shard's constructor put it.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.obs.events import TraceEvent
from repro.obs.recorder import FlightRecorder
from repro.sim.results import RunResult
from repro.sim.runner import ScanSimulator


def fleet_parallelizable(
    simulators: Sequence[ScanSimulator],
    message_source: object = None,
    interrupts: Sequence = (),
) -> bool:
    """Whether the fleet may be forked across workers.

    True only when nothing couples the simulators to each other or to the
    driving process: no in-flight coordinator messages, no external
    interrupt sources, and no master-coupled query source.
    """
    if message_source is not None or interrupts:
        return False
    return all(not simulator.master_coupled for simulator in simulators)


# --------------------------------------------------------------- recorder IO
@dataclass
class _RecorderDelta:
    """Everything one simulator's run appended to its flight recorder."""

    trace_events: List
    trace_dropped: int
    counters: Dict[str, List[Tuple[float, float]]]  # (ts, delta)
    gauges: Dict[str, List[Tuple[float, float]]]  # (ts, value)
    histograms: Dict[str, List[Tuple[float, float]]]  # (ts, value)
    overhead_seconds: float


@dataclass
class _RecorderMarks:
    """Pre-run lengths/totals, taken in the worker right after the fork."""

    trace_len: int
    trace_dropped: int
    counter_marks: Dict[str, Tuple[int, float]]  # name -> (len, total)
    gauge_marks: Dict[str, int]
    histogram_marks: Dict[str, int]
    overhead_seconds: float


def _take_marks(recorder: Optional[FlightRecorder]) -> Optional[_RecorderMarks]:
    if recorder is None:
        return None
    trace_len = trace_dropped = 0
    if recorder.trace is not None:
        trace_len = len(recorder.trace.events)
        trace_dropped = recorder.trace.dropped
    counter_marks: Dict[str, Tuple[int, float]] = {}
    gauge_marks: Dict[str, int] = {}
    histogram_marks: Dict[str, int] = {}
    if recorder.metrics is not None:
        for name, counter in recorder.metrics.counters().items():
            counter_marks[name] = (len(counter.points), counter.total)
        for name, gauge in recorder.metrics.gauges().items():
            gauge_marks[name] = len(gauge.points)
        for name, histogram in recorder.metrics.histograms().items():
            histogram_marks[name] = len(histogram.points)
    return _RecorderMarks(
        trace_len=trace_len,
        trace_dropped=trace_dropped,
        counter_marks=counter_marks,
        gauge_marks=gauge_marks,
        histogram_marks=histogram_marks,
        overhead_seconds=recorder.overhead_seconds,
    )


def _take_delta(
    recorder: Optional[FlightRecorder], marks: Optional[_RecorderMarks]
) -> Optional[_RecorderDelta]:
    if recorder is None or marks is None:
        return None
    trace_events: List = []
    trace_dropped = 0
    if recorder.trace is not None:
        # Ship plain tuples: pickling a flat tuple is several times cheaper
        # than pickling a slotted instance, and traces dominate the payload.
        trace_events = [
            (e.name, e.cat, e.ph, e.ts, e.pid, e.tid, e.dur, e.id, e.args)
            for e in recorder.trace.events[marks.trace_len:]
        ]
        trace_dropped = recorder.trace.dropped - marks.trace_dropped
    counters: Dict[str, List[Tuple[float, float]]] = {}
    gauges: Dict[str, List[Tuple[float, float]]] = {}
    histograms: Dict[str, List[Tuple[float, float]]] = {}
    if recorder.metrics is not None:
        for name, counter in recorder.metrics.counters().items():
            base_len, base_total = marks.counter_marks.get(name, (0, 0.0))
            fresh = counter.points[base_len:]
            if not fresh:
                continue
            # Points store running totals; ship per-point deltas so the
            # parent can rebuild totals in globally merged order.
            deltas = []
            previous = base_total
            for ts, total in fresh:
                deltas.append((ts, total - previous))
                previous = total
            counters[name] = deltas
        for name, gauge in recorder.metrics.gauges().items():
            fresh = gauge.points[marks.gauge_marks.get(name, 0):]
            if fresh:
                gauges[name] = fresh
        for name, histogram in recorder.metrics.histograms().items():
            fresh = histogram.points[marks.histogram_marks.get(name, 0):]
            if fresh:
                histograms[name] = fresh
    return _RecorderDelta(
        trace_events=trace_events,
        trace_dropped=trace_dropped,
        counters=counters,
        gauges=gauges,
        histograms=histograms,
        overhead_seconds=recorder.overhead_seconds - marks.overhead_seconds,
    )


def _merge_deltas(
    recorder: FlightRecorder, deltas: List[Tuple[int, _RecorderDelta]]
) -> None:
    """Fold per-simulator recorder slices back into the parent recorder.

    Every stream is merged in ``(timestamp, shard index, emission order)``
    order — fixed by the trajectories, independent of the partition.
    """
    if recorder.trace is not None:
        tagged = [
            (packed[3], index, position, packed)
            for index, delta in deltas
            for position, packed in enumerate(delta.trace_events)
        ]
        tagged.sort(key=lambda item: (item[0], item[1], item[2]))
        for _, _, _, packed in tagged:
            recorder.trace.emit(TraceEvent(*packed))
        recorder.trace.dropped += sum(delta.trace_dropped for _, delta in deltas)
    if recorder.metrics is not None:
        merged_counters: Dict[str, List[Tuple[float, int, int, float]]] = {}
        merged_gauges: Dict[str, List[Tuple[float, int, int, float]]] = {}
        merged_histograms: Dict[str, List[Tuple[float, int, int, float]]] = {}
        for index, delta in deltas:
            for table, merged in (
                (delta.counters, merged_counters),
                (delta.gauges, merged_gauges),
                (delta.histograms, merged_histograms),
            ):
                for name, points in table.items():
                    bucket = merged.setdefault(name, [])
                    bucket.extend(
                        (ts, index, position, value)
                        for position, (ts, value) in enumerate(points)
                    )
        for name, bucket in merged_counters.items():
            bucket.sort()
            counter = recorder.metrics.counter(name)
            for ts, _, _, value in bucket:
                counter.inc(ts, value)
        for name, bucket in merged_gauges.items():
            bucket.sort()
            gauge = recorder.metrics.gauge(name)
            for ts, _, _, value in bucket:
                gauge.set(ts, value)
        for name, bucket in merged_histograms.items():
            bucket.sort()
            histogram = recorder.metrics.histogram(name)
            for ts, _, _, value in bucket:
                histogram.observe(ts, value)
    recorder.overhead_seconds += sum(delta.overhead_seconds for _, delta in deltas)


# ------------------------------------------------------------------- workers
def _worker_main(conn, pairs) -> None:
    """Run each assigned simulator to completion and ship the outcomes.

    Simulators run sequentially with the exact solo loop
    (:meth:`ScanSimulator.run`), so each result is bit-for-bit the solo-run
    result regardless of which worker hosts it.
    """
    try:
        out = []
        for index, simulator in pairs:
            recorder = simulator.flight_recorder
            marks = _take_marks(recorder)
            result = simulator.run()
            out.append((index, result, _take_delta(recorder, marks)))
        conn.send(("ok", out))
    except BaseException as exc:  # noqa: BLE001 - report, parent re-raises
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - broken pipe on teardown
            pass
    finally:
        conn.close()


def run_fleet_parallel(
    simulators: Sequence[ScanSimulator], workers: int
) -> Optional[List[RunResult]]:
    """Fork the fleet across ``workers`` processes and merge the results.

    Returns ``None`` when process fan-out is unavailable on this platform
    (no ``fork`` start method) — the caller then drives the fleet serially.
    Raises :class:`SimulationError` if any worker's simulation fails; the
    remaining workers are reaped before the error propagates.
    """
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None
    workers = min(int(workers), len(simulators))
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    partitions = [
        [(index, simulators[index]) for index in range(w, len(simulators), workers)]
        for w in range(workers)
    ]
    processes = []
    for pairs in partitions:
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(target=_worker_main, args=(child_conn, pairs))
        process.start()
        child_conn.close()
        processes.append((process, parent_conn))
    results: List[Optional[RunResult]] = [None] * len(simulators)
    deltas: List[Tuple[int, Optional[_RecorderDelta]]] = []
    errors: List[str] = []
    try:
        # Drain every pipe before joining: a worker blocks in send() until
        # the parent reads, so recv-then-join is the deadlock-free order.
        for process, conn in processes:
            try:
                message = conn.recv()
            except EOFError:
                message = ("error", "worker exited without reporting a result")
            if message[0] == "ok":
                for index, result, delta in message[1]:
                    results[index] = result
                    deltas.append((index, delta))
            else:
                errors.append(message[1])
        for process, _ in processes:
            process.join()
    finally:
        for process, conn in processes:
            conn.close()
            if process.is_alive():  # pragma: no cover - error teardown
                process.terminate()
                process.join()
    if errors:
        raise SimulationError(
            "parallel lockstep worker failed: " + "; ".join(errors)
        )
    # Group per-simulator slices by recorder object: the common case is one
    # shared recorder for the whole fleet, but per-simulator recorders merge
    # just as well.
    by_recorder: Dict[int, Tuple[FlightRecorder, List[Tuple[int, _RecorderDelta]]]] = {}
    for index, delta in sorted(deltas, key=lambda item: item[0]):
        recorder = simulators[index].flight_recorder
        if recorder is None or delta is None:
            continue
        entry = by_recorder.setdefault(id(recorder), (recorder, []))
        entry[1].append((index, delta))
    for recorder, tagged in by_recorder.values():
        _merge_deltas(recorder, tagged)
    return [result for result in results if result is not None]
