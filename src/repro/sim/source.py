"""Pluggable query sources feeding the scan simulator.

The simulator used to hard-code the paper's *closed* workload shape (a fixed
set of streams, each executing its queries back to back).  That shape is now
one implementation of the :class:`QuerySource` interface; the open-system
service layer (:mod:`repro.service`) provides another, where queries arrive
continuously and are admitted by an admission controller.

A query source answers three questions for the event loop:

* *when* is the next source-driven admission event
  (:meth:`QuerySource.next_event_time`),
* *which* queries start now (:meth:`QuerySource.poll`), and
* *what* follows the completion of a query
  (:meth:`QuerySource.on_complete` — the next query of the stream for closed
  workloads; for the open service, whatever the front-door pipeline releases:
  the head of the winning class queue, or several queued queries at once
  right after an adaptive MPL increase).

Sources also carry per-workload bookkeeping that does not belong in the
event loop, such as the paper's per-stream running times.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.common.errors import SimulationError
from repro.core.cscan import ScanRequest
from repro.sim.results import StreamResult

_EPS = 1e-9

#: Stream index used for queries that do not belong to a closed stream
#: (open-system arrivals).
NO_STREAM = -1


@dataclass(frozen=True)
class AdmittedQuery:
    """A query released by a source for immediate execution.

    ``submit_time`` is the moment the query entered the system (its external
    arrival time); ``None`` means it was submitted at the moment of admission,
    which is always the case for closed streams.  The gap between submission
    and admission is the query's queue wait.
    """

    spec: ScanRequest
    stream: int = NO_STREAM
    submit_time: Optional[float] = None


class QuerySource(abc.ABC):
    """Interface between a workload shape and the discrete-event simulator."""

    #: Whether the source is live plumbing into shared coordinator state
    #: owned by the driving process (the cluster's ``ShardSource``).  The
    #: parallel lockstep driver keeps such sources in the parent and proxies
    #: their calls; self-contained sources (closed streams) are forked into
    #: the worker along with their simulator.
    master_coupled = False

    @abc.abstractmethod
    def next_event_time(self) -> Optional[float]:
        """Time of the next source-driven admission, or ``None`` if none is
        scheduled (more queries may still be released by completions)."""

    @abc.abstractmethod
    def poll(self, now: float) -> List[AdmittedQuery]:
        """Queries to start at time ``now`` (admission events due by now)."""

    @abc.abstractmethod
    def on_complete(self, query_id: int, now: float) -> List[AdmittedQuery]:
        """React to the completion of ``query_id``; returns queries released
        by that completion (to be started at time ``now``)."""

    @abc.abstractmethod
    def drained(self) -> bool:
        """``True`` once the source will never release another query."""

    def stream_results(self) -> List[StreamResult]:
        """Per-stream results, for sources that model closed streams."""
        return []

    def describe(self) -> Dict[str, object]:
        """Flat description of the workload shape (for reports)."""
        return {}

    def size_hint(self) -> Optional[int]:
        """Total queries the source will ever release, when known up front.

        ``None`` (the default) means unknown — open-system arrivals and
        cluster shards cannot know; ``engine="auto"`` then stays scalar.
        """
        return None


class ClosedStreamSource(QuerySource):
    """The paper's closed workload: streams of back-to-back queries.

    Stream ``i`` starts ``i * start_delay_s`` seconds after the run begins
    (3 s in the paper, Section 5.1); within a stream the next query is
    admitted the moment the previous one completes.
    """

    def __init__(
        self,
        streams: Sequence[Sequence[ScanRequest]],
        start_delay_s: float,
    ) -> None:
        if not streams or all(len(stream) == 0 for stream in streams):
            raise SimulationError("workload contains no queries")
        seen_ids: Set[int] = set()
        for stream in streams:
            for spec in stream:
                if spec.query_id in seen_ids:
                    raise SimulationError(
                        f"duplicate query id {spec.query_id} in workload"
                    )
                seen_ids.add(spec.query_id)
        self._streams = [list(stream) for stream in streams]
        self._cursor: List[int] = [0] * len(self._streams)
        self._start: List[Optional[float]] = [None] * len(self._streams)
        self._results: List[Optional[StreamResult]] = [None] * len(self._streams)
        self._stream_of: Dict[int, int] = {
            spec.query_id: index
            for index, stream in enumerate(self._streams)
            for spec in stream
        }
        self._pending_starts: List[Tuple[float, int]] = sorted(
            (index * start_delay_s, index)
            for index, stream in enumerate(self._streams)
            if stream
        )
        self._start_delay_s = start_delay_s
        # Released-query counter so drained() is O(1); the event loop polls
        # it every iteration and a per-stream cursor walk shows up at scale.
        self._released = 0
        self._total_queries = sum(len(stream) for stream in self._streams)

    # ------------------------------------------------------------- interface
    def next_event_time(self) -> Optional[float]:
        if not self._pending_starts:
            return None
        return self._pending_starts[0][0]

    def poll(self, now: float) -> List[AdmittedQuery]:
        admitted: List[AdmittedQuery] = []
        while self._pending_starts and self._pending_starts[0][0] <= now + _EPS:
            _, stream_index = self._pending_starts.pop(0)
            query = self._advance(stream_index, now)
            if query is not None:
                admitted.append(query)
        return admitted

    def on_complete(self, query_id: int, now: float) -> List[AdmittedQuery]:
        stream_index = self._stream_of[query_id]
        query = self._advance(stream_index, now)
        if query is not None:
            return [query]
        start = self._start[stream_index] or 0.0
        self._results[stream_index] = StreamResult(
            stream=stream_index,
            start_time=start,
            finish_time=now,
            query_names=[spec.name for spec in self._streams[stream_index]],
        )
        return []

    def drained(self) -> bool:
        if self._pending_starts:
            return False
        return self._released >= self._total_queries

    def stream_results(self) -> List[StreamResult]:
        return [result for result in self._results if result is not None]

    def size_hint(self) -> Optional[int]:
        return sum(len(stream) for stream in self._streams)

    def describe(self) -> Dict[str, object]:
        return {
            "workload": "closed-streams",
            "num_streams": len(self._streams),
            "num_queries": sum(len(stream) for stream in self._streams),
            "stream_start_delay_s": self._start_delay_s,
        }

    # -------------------------------------------------------------- plumbing
    def _advance(self, stream_index: int, now: float) -> Optional[AdmittedQuery]:
        cursor = self._cursor[stream_index]
        stream = self._streams[stream_index]
        if cursor >= len(stream):
            return None
        self._cursor[stream_index] = cursor + 1
        self._released += 1
        if self._start[stream_index] is None:
            self._start[stream_index] = now
        return AdmittedQuery(spec=stream[cursor], stream=stream_index)
