"""Parameter sweeps used by the Figure 5/6/7 benchmarks.

These helpers run the same workload under every scheduling policy, or under
varying system parameters, and collect the results in dictionaries keyed by
policy name / parameter value.  They are deliberately thin: all the real
behaviour lives in the policies and the simulator.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.common.config import SystemConfig
from repro.core.cscan import ScanRequest
from repro.core.policies import POLICY_NAMES
from repro.sim.results import RunResult
from repro.sim.runner import AnyABM, run_simulation, run_standalone
from repro.sim.setup import dsm_abm_factory, nsm_abm_factory
from repro.storage.dsm import DSMTableLayout
from repro.storage.nsm import NSMTableLayout

Streams = Sequence[Sequence[ScanRequest]]
ABMFactory = Callable[[], AnyABM]


def compare_policies(
    streams: Streams,
    config: SystemConfig,
    factory_for_policy: Callable[[str], ABMFactory],
    policies: Iterable[str] = POLICY_NAMES,
    record_trace: bool = False,
) -> Dict[str, RunResult]:
    """Run the same workload once per scheduling policy."""
    results: Dict[str, RunResult] = {}
    for policy in policies:
        abm = factory_for_policy(policy)()
        results[policy] = run_simulation(
            streams, config, abm, record_trace=record_trace
        )
    return results


def compare_nsm_policies(
    streams: Streams,
    config: SystemConfig,
    layout: NSMTableLayout,
    policies: Iterable[str] = POLICY_NAMES,
    capacity_chunks: Optional[int] = None,
    record_trace: bool = False,
) -> Dict[str, RunResult]:
    """Convenience wrapper for NSM policy comparisons (Table 2, Figures 4-7)."""
    return compare_policies(
        streams,
        config,
        lambda policy: nsm_abm_factory(
            layout, config, policy, capacity_chunks=capacity_chunks
        ),
        policies=policies,
        record_trace=record_trace,
    )


def compare_dsm_policies(
    streams: Streams,
    config: SystemConfig,
    layout: DSMTableLayout,
    policies: Iterable[str] = POLICY_NAMES,
    capacity_pages: Optional[int] = None,
    record_trace: bool = False,
) -> Dict[str, RunResult]:
    """Convenience wrapper for DSM policy comparisons (Tables 3 and 4)."""
    return compare_policies(
        streams,
        config,
        lambda policy: dsm_abm_factory(
            layout, config, policy, capacity_pages=capacity_pages
        ),
        policies=policies,
        record_trace=record_trace,
    )


def standalone_times(
    specs: Iterable[ScanRequest],
    config: SystemConfig,
    abm_factory: ABMFactory,
) -> Dict[str, float]:
    """Cold standalone running time per distinct query name.

    Used to normalise latencies the way the paper does ("running time divided
    by the base time, when the query runs by itself with an empty buffer").
    """
    times: Dict[str, float] = {}
    for spec in specs:
        if spec.name in times:
            continue
        times[spec.name] = run_standalone(spec, config, abm_factory)
    return times


def buffer_capacity_sweep(
    streams: Streams,
    config: SystemConfig,
    layout: NSMTableLayout,
    capacities_chunks: Sequence[int],
    policies: Iterable[str] = POLICY_NAMES,
) -> Dict[int, Dict[str, RunResult]]:
    """Figure 6: rerun the workload for several buffer-pool capacities."""
    results: Dict[int, Dict[str, RunResult]] = {}
    for capacity in capacities_chunks:
        results[capacity] = compare_nsm_policies(
            streams,
            config.with_buffer_chunks(capacity),
            layout,
            policies=policies,
            capacity_chunks=capacity,
        )
    return results


def concurrency_sweep(
    streams_for_count: Callable[[int], Streams],
    config: SystemConfig,
    layout: NSMTableLayout,
    query_counts: Sequence[int],
    policies: Iterable[str] = POLICY_NAMES,
) -> Dict[int, Dict[str, RunResult]]:
    """Figure 7: rerun with a varying number of concurrent queries.

    ``streams_for_count(n)`` must build a workload with ``n`` concurrent
    queries (one query per stream in the paper's setting).
    """
    results: Dict[int, Dict[str, RunResult]] = {}
    for count in query_counts:
        streams = streams_for_count(count)
        results[count] = compare_nsm_policies(
            streams, config, layout, policies=policies
        )
    return results
