"""Size and time unit helpers.

The paper talks about chunk sizes (16 MB), page sizes (typically 64 KB or
256 KB in MonetDB/X100), buffer pools of 1 GB and disk bandwidths of
~200 MB/s.  Keeping unit conversion in one place avoids the classic
"is this bytes or megabytes?" bug family.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer division rounding up.

    >>> ceil_div(10, 3)
    4
    >>> ceil_div(9, 3)
    3
    """
    if denominator <= 0:
        raise ValueError("denominator must be positive, got %r" % (denominator,))
    return -(-numerator // denominator)


def format_bytes(num_bytes: float) -> str:
    """Format a byte count with a binary-unit suffix.

    >>> format_bytes(16 * MB)
    '16.0 MB'
    >>> format_bytes(512)
    '512 B'
    """
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Format a duration in seconds with adaptive precision.

    >>> format_seconds(0.002)
    '2.00 ms'
    >>> format_seconds(63.5)
    '1m 3.5s'
    """
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds < 1.0:
        return f"{seconds * 1000.0:.2f} ms"
    if seconds < 60.0:
        return f"{seconds:.2f} s"
    minutes = int(seconds // 60)
    rest = seconds - minutes * 60
    return f"{minutes}m {rest:.1f}s"
