"""Exception hierarchy for the Cooperative Scans reproduction library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming out of the library with a single ``except``
clause while still being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class StorageError(ReproError):
    """A storage-layer invariant was violated (bad chunk id, bad column, ...)."""


class BufferPoolError(ReproError):
    """A buffer-pool invariant was violated (double pin, evicting a pinned
    chunk, over-capacity, ...)."""


class SchedulingError(ReproError):
    """A scheduling policy produced an inconsistent decision."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state
    (e.g. deadlock with outstanding work)."""


class EngineError(ReproError):
    """The in-memory query engine was asked to do something invalid."""
