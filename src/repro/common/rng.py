"""Deterministic random-number helpers.

Every stochastic component of the library (workload generation, stream
shuffling, synthetic data) takes an explicit seed and builds its generator
through :func:`make_rng`, so that a whole experiment is reproducible from a
single integer.
"""

from __future__ import annotations

from typing import List

import numpy as np


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed.

    ``None`` produces a non-deterministic generator; benchmarks always pass an
    explicit seed.
    """
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from one master seed.

    Each derived stream is statistically independent (numpy ``spawn``), which
    lets e.g. every query stream of a benchmark own its own generator while
    the whole run remains reproducible.
    """
    if count < 0:
        raise ValueError("count must be non-negative, got %r" % (count,))
    master = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in master.spawn(count)]
