"""Configuration dataclasses describing the simulated machine.

The benchmark machine of the paper (Section 5.1) was a dual-CPU 2 GHz
Opteron with 4 GB of RAM and a 4-way RAID delivering slightly over 200 MB/s.
Scans use 16 MB chunks and the ABM buffer pool holds 64 chunks (1 GB).
:data:`PAPER_NSM_SYSTEM` and :data:`PAPER_DSM_SYSTEM` capture those settings;
tests use smaller configurations for speed.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.units import MB

#: Chunk placement schemes understood by the multi-volume disk subsystem.
VOLUME_PLACEMENTS = ("striped", "range")


@dataclass(frozen=True)
class DiskConfig:
    """Parameters of the simulated disk subsystem.

    Attributes
    ----------
    bandwidth_bytes_per_s:
        Sustained sequential bandwidth of one volume.
    avg_seek_s:
        Average positioning cost paid when the next chunk is not physically
        adjacent to the previously read one.
    sequential_seek_s:
        Positioning cost paid when the next chunk *is* adjacent (track-to-track
        switch); usually close to zero.
    spindles:
        Number of spindles striped *inside* one volume.  Spindles only scale a
        volume's effective bandwidth (the paper's 4-way RAID behaves like one
        fast sequential device for chunk-sized requests).
    volumes:
        Number of independent volumes, each with its own head position and
        its own ``bandwidth_bytes_per_s``.  Unlike ``spindles``, volumes serve
        requests concurrently (one in-flight load per volume).  ``volumes=1``
        reproduces the classic single-disk model exactly.
    placement:
        How logical chunks map onto volumes: ``"striped"`` (chunk *i* lives on
        volume ``i % volumes``) or ``"range"`` (contiguous chunk ranges per
        volume).
    """

    bandwidth_bytes_per_s: float = 200.0 * MB
    avg_seek_s: float = 0.008
    sequential_seek_s: float = 0.001
    spindles: int = 1
    volumes: int = 1
    placement: str = "striped"

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("disk bandwidth must be positive")
        if self.avg_seek_s < 0 or self.sequential_seek_s < 0:
            raise ConfigurationError("seek times must be non-negative")
        if self.spindles < 1:
            raise ConfigurationError("spindles must be >= 1")
        if self.volumes < 1:
            raise ConfigurationError("volumes must be >= 1")
        if self.placement not in VOLUME_PLACEMENTS:
            raise ConfigurationError(
                f"unknown volume placement {self.placement!r}; "
                f"expected one of {VOLUME_PLACEMENTS}"
            )

    def with_volumes(self, volumes: int, placement: Optional[str] = None) -> "DiskConfig":
        """Return a copy of this configuration with a different volume count."""
        return replace(
            self, volumes=volumes, placement=placement or self.placement
        )

    @property
    def effective_bandwidth(self) -> float:
        """Sequential bandwidth of one volume over all its spindles (bytes/s)."""
        return self.bandwidth_bytes_per_s * self.spindles

    @property
    def total_bandwidth(self) -> float:
        """Aggregate sequential bandwidth over all volumes (bytes/s)."""
        return self.effective_bandwidth * self.volumes


@dataclass(frozen=True)
class CpuConfig:
    """Parameters of the simulated CPU subsystem.

    Queries that are ready to process data share the cores using processor
    sharing: with ``r`` runnable queries and ``c`` cores each query progresses
    at rate ``min(1, c / r)``.
    """

    cores: int = 2

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError("cores must be >= 1")

    def rate_per_query(self, runnable_queries: int) -> float:
        """Processing rate (fraction of a dedicated core) for each runnable query."""
        if runnable_queries <= 0:
            return 0.0
        return min(1.0, self.cores / runnable_queries)


@dataclass(frozen=True)
class BufferConfig:
    """Parameters of the (active) buffer manager.

    For NSM the capacity is expressed in chunks; for DSM it is expressed in
    pages (because per-column chunk blocks have different physical sizes).
    ``capacity_chunks`` and ``capacity_pages`` are alternative views over the
    same quantity given ``chunk_bytes`` and ``page_bytes``.
    """

    chunk_bytes: int = 16 * MB
    page_bytes: int = 256 * 1024
    capacity_chunks: int = 64

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0 or self.page_bytes <= 0:
            raise ConfigurationError("chunk and page sizes must be positive")
        if self.chunk_bytes % self.page_bytes != 0:
            raise ConfigurationError(
                "chunk_bytes must be a multiple of page_bytes "
                f"(got {self.chunk_bytes} / {self.page_bytes})"
            )
        if self.capacity_chunks < 1:
            raise ConfigurationError("buffer capacity must be at least one chunk")

    @property
    def pages_per_chunk(self) -> int:
        """Number of physical pages forming one NSM chunk."""
        return self.chunk_bytes // self.page_bytes

    @property
    def capacity_pages(self) -> int:
        """Buffer capacity expressed in pages."""
        return self.capacity_chunks * self.pages_per_chunk

    @property
    def capacity_bytes(self) -> int:
        """Buffer capacity expressed in bytes."""
        return self.capacity_chunks * self.chunk_bytes


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of a simulated system.

    Combines the disk, CPU and buffer parameters plus run-level knobs such as
    the delay between starting consecutive query streams (3 s in the paper).
    """

    disk: DiskConfig = field(default_factory=DiskConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    buffer: BufferConfig = field(default_factory=BufferConfig)
    stream_start_delay_s: float = 3.0

    def __post_init__(self) -> None:
        if self.stream_start_delay_s < 0:
            raise ConfigurationError("stream_start_delay_s must be non-negative")

    def chunk_load_time(self, chunk_bytes: int | None = None, sequential: bool = False) -> float:
        """Time to load one chunk of ``chunk_bytes`` (defaults to the configured
        chunk size) from disk, including positioning cost."""
        size = self.buffer.chunk_bytes if chunk_bytes is None else chunk_bytes
        seek = self.disk.sequential_seek_s if sequential else self.disk.avg_seek_s
        return seek + size / self.disk.effective_bandwidth

    def with_buffer_chunks(self, capacity_chunks: int) -> "SystemConfig":
        """Return a copy of this configuration with a different buffer capacity."""
        return replace(self, buffer=replace(self.buffer, capacity_chunks=capacity_chunks))

    def with_volumes(self, volumes: int, placement: Optional[str] = None) -> "SystemConfig":
        """Return a copy of this configuration with a different volume count."""
        return replace(self, disk=self.disk.with_volumes(volumes, placement))

    def describe(self) -> Dict[str, Any]:
        """Return a flat dictionary describing the configuration (for reports)."""
        return {
            "disk_bandwidth_MBps": self.disk.effective_bandwidth / MB,
            "disk_avg_seek_ms": self.disk.avg_seek_s * 1000.0,
            "disk_volumes": self.disk.volumes,
            "volume_placement": self.disk.placement,
            "cpu_cores": self.cpu.cores,
            "chunk_MB": self.buffer.chunk_bytes / MB,
            "page_KB": self.buffer.page_bytes / 1024,
            "buffer_chunks": self.buffer.capacity_chunks,
            "buffer_MB": self.buffer.capacity_bytes / MB,
            "stream_start_delay_s": self.stream_start_delay_s,
        }


#: Admission-queue disciplines understood by the service layer.  ``"sjf"``
#: (shortest job first) used to be called ``"priority"``; the old name is
#: kept as a deprecated alias so existing configs and traces keep working,
#: but it no longer denotes the per-class priority concept (see
#: :class:`WorkloadClassConfig` for that).
ADMISSION_DISCIPLINES = ("fifo", "sjf", "priority")

#: Deprecated discipline names and their canonical replacements.
DEPRECATED_DISCIPLINES = {"priority": "sjf"}

#: Workload class assigned to queries that do not declare one.
DEFAULT_QUERY_CLASS = "default"

#: Sentinel for per-class settings that inherit the service-level value.
#: Compared by equality, so the string ``"inherit"`` from a parsed config
#: file works the same as the module constant.
INHERIT = "inherit"


def _inherits(value: object) -> bool:
    """Whether a per-class setting defers to the service-level value."""
    return isinstance(value, str) and value == INHERIT


def canonical_discipline(discipline: str) -> str:
    """Resolve deprecated discipline aliases (``"priority"`` -> ``"sjf"``).

    Passing a deprecated alias emits a :class:`DeprecationWarning`; the
    alias keeps working, but callers should migrate to the canonical name.
    """
    canonical = DEPRECATED_DISCIPLINES.get(discipline)
    if canonical is None:
        return discipline
    warnings.warn(
        f"admission discipline {discipline!r} is a deprecated alias for "
        f"{canonical!r}; use {canonical!r} instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return canonical


def _validate_discipline(discipline: str, where: str) -> None:
    if discipline not in ADMISSION_DISCIPLINES:
        raise ConfigurationError(
            f"unknown admission discipline {discipline!r} for {where}; "
            f"expected one of {ADMISSION_DISCIPLINES}"
        )


@dataclass(frozen=True)
class WorkloadClassConfig:
    """One workload class at the service front door (e.g. interactive/batch).

    Classes separate traffic with different latency expectations over the
    *same* ABM: each class has its own admission queue, and the admission
    scheduler shares the multiprogramming level between the non-empty queues
    in proportion to their ``weight`` (work-conserving: spare capacity is
    handed to whichever class is waiting).

    Attributes
    ----------
    name:
        Class label, matched against :attr:`repro.core.ScanRequest.query_class`.
    weight:
        MPL share of the class.  When several classes have queued queries,
        freed slots go to the class with the smallest ``active / weight``
        ratio (ties break in configured class order), so a class with twice
        the weight converges to twice the executing queries under contention.
    queue_capacity:
        Bound on this class's admission queue (``None`` = unbounded,
        ``0`` = shed every arrival that cannot start immediately).  Defaults
        to the service-level ``queue_capacity``.
    discipline:
        Order within this class's queue: ``"fifo"`` or ``"sjf"`` (smallest
        job first).  Defaults to the service-level ``discipline``.
    """

    name: str
    weight: float = 1.0
    queue_capacity: object = INHERIT
    discipline: str = INHERIT

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("workload class needs a name")
        if self.weight <= 0:
            raise ConfigurationError(
                f"workload class {self.name!r} weight must be positive, "
                f"got {self.weight}"
            )
        if not _inherits(self.queue_capacity):
            if self.queue_capacity is not None and (
                not isinstance(self.queue_capacity, int) or self.queue_capacity < 0
            ):
                raise ConfigurationError(
                    f"workload class {self.name!r} queue_capacity must be "
                    ">= 0, None or INHERIT"
                )
        if not _inherits(self.discipline):
            _validate_discipline(self.discipline, f"workload class {self.name!r}")
            object.__setattr__(
                self, "discipline", canonical_discipline(self.discipline)
            )

    def resolve(
        self, queue_capacity: Optional[int], discipline: str
    ) -> "WorkloadClassConfig":
        """Fill inherited settings from the service-level defaults."""
        resolved_capacity = (
            queue_capacity if _inherits(self.queue_capacity) else self.queue_capacity
        )
        resolved_discipline = (
            discipline if _inherits(self.discipline) else self.discipline
        )
        return WorkloadClassConfig(
            name=self.name,
            weight=self.weight,
            queue_capacity=resolved_capacity,
            discipline=resolved_discipline,
        )

    def describe(self) -> Dict[str, Any]:
        """Return a flat dictionary describing the class (for reports)."""
        return {
            "name": self.name,
            "weight": self.weight,
            "queue_capacity": (
                "inherit"
                if _inherits(self.queue_capacity)
                else "unbounded"
                if self.queue_capacity is None
                else self.queue_capacity
            ),
            "discipline": self.discipline,
        }


@dataclass(frozen=True)
class AdaptiveMPLConfig:
    """Parameters of the adaptive (AIMD) multiprogramming-level controller.

    The controller tunes the admission MPL between ``min_mpl`` and
    ``max_mpl`` from two observed signals: the p95 end-to-end latency over a
    sliding window of completions, and the ABM's buffer-hit rate (the
    fraction of consumed chunks served without triggering a load — the
    sharing dividend).  The AIMD reaction is asymmetric, like TCP's:

    * p95 above ``target_p95_s`` (checked on every completion) —
      multiplicative decrease
      (``mpl = max(min_mpl, floor(mpl * decrease_factor))``), shrinking the
      concurrent set so the relevance policy can restore sharing;
    * p95 within target (probed every ``adjust_every``-th completion) and
      hit rate at or above ``hit_rate_floor`` — additive increase
      (``mpl + increase_step``), converting spare latency headroom into
      throughput.
    """

    target_p95_s: float
    min_mpl: int = 1
    max_mpl: int = 64
    increase_step: int = 1
    decrease_factor: float = 0.5
    adjust_every: int = 4
    window: int = 32
    hit_rate_floor: float = 0.0

    def __post_init__(self) -> None:
        if self.target_p95_s <= 0:
            raise ConfigurationError("target_p95_s must be positive")
        if self.min_mpl < 1:
            raise ConfigurationError("min_mpl must be >= 1")
        if self.max_mpl < self.min_mpl:
            raise ConfigurationError("max_mpl must be >= min_mpl")
        if self.increase_step < 1:
            raise ConfigurationError("increase_step must be >= 1")
        if not 0.0 < self.decrease_factor < 1.0:
            raise ConfigurationError("decrease_factor must be in (0, 1)")
        if self.adjust_every < 1:
            raise ConfigurationError("adjust_every must be >= 1")
        if self.window < 1:
            raise ConfigurationError("window must be >= 1")
        if not 0.0 <= self.hit_rate_floor <= 1.0:
            raise ConfigurationError("hit_rate_floor must be in [0, 1]")

    def describe(self) -> Dict[str, Any]:
        """Return a flat dictionary describing the controller (for reports)."""
        return {
            "target_p95_s": self.target_p95_s,
            "min_mpl": self.min_mpl,
            "max_mpl": self.max_mpl,
            "increase_step": self.increase_step,
            "decrease_factor": self.decrease_factor,
            "adjust_every": self.adjust_every,
            "window": self.window,
            "hit_rate_floor": self.hit_rate_floor,
        }


@dataclass(frozen=True)
class ServiceConfig:
    """Parameters of the open-system query service layer.

    The service admits continuously-arriving queries into the simulator at a
    bounded multiprogramming level (MPL), queueing or shedding the excess:

    Attributes
    ----------
    max_concurrent:
        Maximum number of queries executing concurrently (the MPL).  The
        ABM's sharing policy is exercised at exactly this concurrency level
        whenever the queue is non-empty, however high the offered load.
    queue_capacity:
        Bound on the admission queue.  ``None`` means unbounded (pure
        queueing, nothing is ever shed); ``0`` means shed every arrival that
        cannot start immediately (pure loss system).
    discipline:
        Order in which queued queries are admitted: ``"fifo"`` (arrival
        order) or ``"sjf"`` (cheapest scan first, FIFO tie-break — a
        deterministic shortest-job-first; ``"priority"`` is a deprecated
        alias).
    classes:
        Workload classes served by the front door (e.g. interactive vs
        batch).  Empty means one implicit class covering all traffic, which
        behaves exactly like the historical single-queue service.  When
        non-empty, arrivals are routed to their class's queue by
        ``ScanRequest.query_class`` (unknown classes fall into the first
        configured class) and freed MPL slots are shared by class weight.
    adaptive:
        Optional :class:`AdaptiveMPLConfig`.  When set, the admission MPL is
        tuned at run time by an AIMD controller instead of staying pinned at
        ``max_concurrent`` (which then only sets the starting MPL).
    """

    max_concurrent: int = 8
    queue_capacity: Optional[int] = None
    discipline: str = "fifo"
    classes: Tuple[WorkloadClassConfig, ...] = ()
    adaptive: Optional[AdaptiveMPLConfig] = None

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ConfigurationError("max_concurrent must be >= 1")
        if self.queue_capacity is not None and self.queue_capacity < 0:
            raise ConfigurationError("queue_capacity must be >= 0 or None")
        _validate_discipline(self.discipline, "service")
        object.__setattr__(self, "discipline", canonical_discipline(self.discipline))
        object.__setattr__(self, "classes", tuple(self.classes))
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate workload class names in {names}")

    def resolved_classes(self) -> Tuple[WorkloadClassConfig, ...]:
        """The effective workload classes, inherited settings filled in.

        An empty ``classes`` tuple resolves to one implicit
        :data:`DEFAULT_QUERY_CLASS` class carrying the service-level queue
        settings — the single-queue behaviour every pre-class config had.
        """
        if not self.classes:
            return (
                WorkloadClassConfig(
                    name=DEFAULT_QUERY_CLASS,
                    weight=1.0,
                    queue_capacity=self.queue_capacity,
                    discipline=self.discipline,
                ),
            )
        return tuple(
            cls.resolve(self.queue_capacity, self.discipline)
            for cls in self.classes
        )

    def describe(self) -> Dict[str, Any]:
        """Return a flat dictionary describing the service (for reports)."""
        described: Dict[str, Any] = {
            "max_concurrent": self.max_concurrent,
            "queue_capacity": (
                "unbounded" if self.queue_capacity is None else self.queue_capacity
            ),
            "discipline": self.discipline,
        }
        if self.classes:
            described["classes"] = ",".join(
                f"{cls.name}:{cls.weight:g}" for cls in self.classes
            )
        if self.adaptive is not None:
            described["adaptive_mpl"] = True
            described["adaptive_target_p95_s"] = self.adaptive.target_p95_s
        return described


@dataclass(frozen=True)
class CoordinatorConfig:
    """CPU cost table of the cluster coordinator.

    The defaults are all zero — a *free* coordinator — which reproduces the
    historical behaviour bit for bit: no cost layer is built, admissions
    scatter instantly and gathers complete at the shard's event time.  Any
    non-zero cost turns the coordinator into a single-server
    :class:`repro.net.SimCPU` on the shared clock.

    Attributes
    ----------
    classify_s:
        CPU seconds to classify/plan one admitted query (charged once per
        query at admission).
    scatter_per_subquery_s:
        CPU seconds to build and enqueue one per-shard sub-query message.
    gather_per_subquery_s:
        CPU seconds to process one sub-query completion message.
    merge_per_query_s:
        Extra CPU seconds to merge the final result when a query's *last*
        sub-query completion arrives.
    queue_delay_warn_s:
        Threshold above which the SLO report carries a coordinator
        queue-delay warning.
    """

    classify_s: float = 0.0
    scatter_per_subquery_s: float = 0.0
    gather_per_subquery_s: float = 0.0
    merge_per_query_s: float = 0.0
    queue_delay_warn_s: float = 0.5

    def __post_init__(self) -> None:
        for name in (
            "classify_s",
            "scatter_per_subquery_s",
            "gather_per_subquery_s",
            "merge_per_query_s",
        ):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0.0:
                raise ConfigurationError(
                    f"coordinator {name} must be finite and >= 0, got {value!r}"
                )
        if not math.isfinite(self.queue_delay_warn_s) or self.queue_delay_warn_s <= 0.0:
            raise ConfigurationError(
                f"queue_delay_warn_s must be finite and > 0, "
                f"got {self.queue_delay_warn_s!r}"
            )

    @property
    def is_free(self) -> bool:
        """Whether every coordinator CPU cost is zero (the legacy model)."""
        return (
            self.classify_s == 0.0
            and self.scatter_per_subquery_s == 0.0
            and self.gather_per_subquery_s == 0.0
            and self.merge_per_query_s == 0.0
        )

    def describe(self) -> Dict[str, Any]:
        """Return a flat dictionary describing the cost table (for reports)."""
        return {
            "coordinator_classify_s": self.classify_s,
            "coordinator_scatter_per_subquery_s": self.scatter_per_subquery_s,
            "coordinator_gather_per_subquery_s": self.gather_per_subquery_s,
            "coordinator_merge_per_query_s": self.merge_per_query_s,
        }


@dataclass(frozen=True)
class NetworkConfig:
    """Cost model of the coordinator <-> shard message fabric.

    The defaults describe a *free* network (infinite bandwidth, zero
    per-message overhead), reproducing the historical instant-delivery
    behaviour bit for bit.  Any finite bandwidth or non-zero overhead gives
    the coordinator one :class:`repro.net.SimNIC` and each shard its own,
    so every scatter/gather message crosses two queued links.

    Attributes
    ----------
    bandwidth_bytes_per_s:
        Link bandwidth of every NIC (``None`` = infinitely fast).
    per_message_s:
        Fixed per-message overhead on each NIC a message crosses.
    scatter_message_bytes:
        Size of one coordinator -> shard sub-query message.
    gather_message_bytes:
        Size of one shard -> coordinator completion message.
    """

    bandwidth_bytes_per_s: Optional[float] = None
    per_message_s: float = 0.0
    scatter_message_bytes: int = 16 * 1024
    gather_message_bytes: int = 4 * 1024

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s is not None and (
            not math.isfinite(self.bandwidth_bytes_per_s)
            or self.bandwidth_bytes_per_s <= 0.0
        ):
            raise ConfigurationError(
                f"bandwidth_bytes_per_s must be positive or None, "
                f"got {self.bandwidth_bytes_per_s!r}"
            )
        if not math.isfinite(self.per_message_s) or self.per_message_s < 0.0:
            raise ConfigurationError(
                f"per_message_s must be finite and >= 0, got {self.per_message_s!r}"
            )
        for name in ("scatter_message_bytes", "gather_message_bytes"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ConfigurationError(
                    f"{name} must be a non-negative integer, got {value!r}"
                )

    @property
    def is_free(self) -> bool:
        """Whether messages cost nothing to deliver (the legacy model)."""
        return self.bandwidth_bytes_per_s is None and self.per_message_s == 0.0

    def describe(self) -> Dict[str, Any]:
        """Return a flat dictionary describing the fabric (for reports)."""
        return {
            "network_bandwidth_bytes_per_s": (
                "infinite"
                if self.bandwidth_bytes_per_s is None
                else self.bandwidth_bytes_per_s
            ),
            "network_per_message_s": self.per_message_s,
            "network_scatter_message_bytes": self.scatter_message_bytes,
            "network_gather_message_bytes": self.gather_message_bytes,
        }


#: Failure-schedule event kinds understood by the cluster failure injector.
FAILURE_KINDS = ("kill", "degrade", "repair")


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled shard failure-model transition on the simulated clock.

    Attributes
    ----------
    time:
        Simulated second at which the event fires (a lockstep frontier
        event, ordered like an in-flight message).
    shard:
        Index of the shard the event applies to.
    kind:
        ``"kill"`` (fail-stop: the shard's in-flight sub-queries are
        cancelled and it accepts no new work), ``"degrade"`` (the shard's
        disk bandwidth is scaled down by the schedule's
        ``degrade_factor``), or ``"repair"`` (the shard returns to full
        health and orphaned sub-queries are re-scattered to it).
    """

    time: float
    shard: int
    kind: str

    def __post_init__(self) -> None:
        if not math.isfinite(self.time) or self.time < 0.0:
            raise ConfigurationError(
                f"failure event time must be finite and >= 0, got {self.time!r}"
            )
        if not isinstance(self.shard, int) or self.shard < 0:
            raise ConfigurationError(
                f"failure event shard must be a non-negative integer, "
                f"got {self.shard!r}"
            )
        if self.kind not in FAILURE_KINDS:
            raise ConfigurationError(
                f"unknown failure event kind {self.kind!r}; "
                f"expected one of {FAILURE_KINDS}"
            )


@dataclass(frozen=True)
class FailureConfig:
    """A deterministic schedule of shard kill/degrade/repair events.

    The empty default schedule models a perfectly healthy cluster and is
    bit-for-bit inert.  Schedules must be globally ordered by time and form
    a valid per-shard state machine: a shard can only be degraded from the
    healthy state, killed while up or degraded, and repaired while killed
    or degraded — overlapping or out-of-order events are configuration
    errors, not silent no-ops.

    Attributes
    ----------
    events:
        Time-ordered :class:`FailureEvent` tuple.
    degrade_factor:
        Disk-bandwidth multiplier applied to a degraded shard, in ``(0, 1]``
        (``0.5`` = the classic half-speed sick disk).
    """

    events: Tuple[FailureEvent, ...] = ()
    degrade_factor: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FailureEvent):
                raise ConfigurationError(
                    f"failure schedule entries must be FailureEvent, "
                    f"got {type(event).__name__}"
                )
        if not math.isfinite(self.degrade_factor) or not (
            0.0 < self.degrade_factor <= 1.0
        ):
            raise ConfigurationError(
                f"degrade_factor must be in (0, 1], got {self.degrade_factor!r}"
            )
        previous_time = None
        state: Dict[int, str] = {}
        for event in self.events:
            if previous_time is not None and event.time < previous_time:
                raise ConfigurationError(
                    f"failure schedule is out of order: event at t={event.time} "
                    f"follows one at t={previous_time}; sort events by time"
                )
            previous_time = event.time
            current = state.get(event.shard, "up")
            if event.kind == "kill" and current == "down":
                raise ConfigurationError(
                    f"overlapping failure events: shard {event.shard} is "
                    f"already killed at t={event.time}; repair it first"
                )
            if event.kind == "degrade" and current != "up":
                raise ConfigurationError(
                    f"overlapping failure events: shard {event.shard} is "
                    f"{current!r} at t={event.time}; it must be up to degrade"
                )
            if event.kind == "repair" and current == "up":
                raise ConfigurationError(
                    f"out-of-order failure events: shard {event.shard} is "
                    f"already up at t={event.time}; nothing to repair"
                )
            state[event.shard] = {
                "kill": "down",
                "degrade": "degraded",
                "repair": "up",
            }[event.kind]

    @property
    def is_empty(self) -> bool:
        """Whether the schedule holds no events (the healthy-cluster model)."""
        return not self.events

    def describe(self) -> Dict[str, Any]:
        """Return a flat dictionary describing the schedule (for reports)."""
        return {
            "failure_events": len(self.events),
            "failure_degrade_factor": self.degrade_factor,
        }


@dataclass(frozen=True)
class HedgeConfig:
    """Hedged-request policy for straggling sub-queries.

    Once ``min_samples`` sub-query latencies have been observed, any
    sub-query still running after ``multiplier`` times the ``quantile``-th
    observed latency is *hedged*: a duplicate is scattered to another live
    replica and the first completion wins (the loser is cancelled and its
    accounting unwound).

    Attributes
    ----------
    quantile:
        Latency quantile (strictly inside ``(0, 1)``) defining "straggler".
    multiplier:
        Scale applied to the quantile latency before hedging fires.
    min_samples:
        Completed sub-queries required before any hedge is issued (hedging
        on one sample would duplicate half the warm-up workload).
    """

    quantile: float = 0.95
    multiplier: float = 1.0
    min_samples: int = 8

    def __post_init__(self) -> None:
        if not math.isfinite(self.quantile) or not 0.0 < self.quantile < 1.0:
            raise ConfigurationError(
                f"hedge quantile must be in (0, 1), got {self.quantile!r}"
            )
        if not math.isfinite(self.multiplier) or self.multiplier <= 0.0:
            raise ConfigurationError(
                f"hedge multiplier must be finite and > 0, got {self.multiplier!r}"
            )
        if not isinstance(self.min_samples, int) or self.min_samples < 1:
            raise ConfigurationError(
                f"hedge min_samples must be an integer >= 1, "
                f"got {self.min_samples!r}"
            )

    def describe(self) -> Dict[str, Any]:
        """Return a flat dictionary describing the hedge policy (for reports)."""
        return {
            "hedge_quantile": self.quantile,
            "hedge_multiplier": self.multiplier,
            "hedge_min_samples": self.min_samples,
        }


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of the sharded scatter-gather cluster layer.

    A cluster partitions the table's chunks across several independent
    shard simulators (each its own ABM + disk) behind one front admission
    queue; a query is scattered into per-shard sub-queries and completes
    when its last sub-query finishes.

    Attributes
    ----------
    shards:
        Number of shard simulators the table is partitioned across.
    placement:
        How chunks map onto shards: ``"range"`` (each shard owns one
        contiguous chunk range — the partitioned-table layout) or
        ``"striped"`` (round-robin).
    mpl_per_shard:
        Multiprogramming level each shard is sized for.  The front
        admission queue caps the cluster-wide concurrency at
        ``shards * mpl_per_shard`` whole queries.
    queue_capacity:
        Bound on the front admission queue (``None`` = unbounded,
        ``0`` = pure loss system), as in :class:`ServiceConfig`.
    discipline:
        Front-queue admission order: ``"fifo"`` or ``"sjf"``
        (``"priority"`` is a deprecated alias).
    classes:
        Workload classes at the cluster front door, exactly as in
        :class:`ServiceConfig.classes`.
    adaptive:
        Optional :class:`AdaptiveMPLConfig` tuning the cluster-wide MPL at
        run time (``cluster_mpl`` then only sets the starting MPL).
    coordinator:
        :class:`CoordinatorConfig` CPU cost table.  Free by default, which
        keeps the historical instant-scatter behaviour.
    network:
        :class:`NetworkConfig` message-fabric costs.  Free by default.
    replicas:
        Number of shards each chunk range is placed on (chained
        declustering: replica *r* of primary shard *p* lives on shard
        ``(p + r) % shards``).  ``1`` — the default — is the historical
        unreplicated cluster.
    failures:
        :class:`FailureConfig` schedule of shard kill/degrade/repair
        events.  Empty by default (no failures ever fire).
    hedge:
        Optional :class:`HedgeConfig`.  When set (and the cluster is
        replicated), straggling sub-queries are duplicated onto another
        live replica and the first completion wins.
    """

    shards: int = 1
    placement: str = "range"
    mpl_per_shard: int = 8
    queue_capacity: Optional[int] = None
    discipline: str = "fifo"
    classes: Tuple[WorkloadClassConfig, ...] = ()
    adaptive: Optional[AdaptiveMPLConfig] = None
    coordinator: CoordinatorConfig = field(default_factory=CoordinatorConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    replicas: int = 1
    failures: FailureConfig = field(default_factory=FailureConfig)
    hedge: Optional[HedgeConfig] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.mpl_per_shard < 1:
            raise ConfigurationError(
                f"mpl_per_shard must be >= 1, got {self.mpl_per_shard}"
            )
        if self.placement not in VOLUME_PLACEMENTS:
            raise ConfigurationError(
                f"unknown shard placement {self.placement!r}; "
                f"expected one of {VOLUME_PLACEMENTS}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 0:
            raise ConfigurationError("queue_capacity must be >= 0 or None")
        _validate_discipline(self.discipline, "cluster front queue")
        object.__setattr__(self, "discipline", canonical_discipline(self.discipline))
        object.__setattr__(self, "classes", tuple(self.classes))
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate workload class names in {names}")
        if not isinstance(self.coordinator, CoordinatorConfig):
            raise ConfigurationError(
                f"coordinator must be a CoordinatorConfig, "
                f"got {type(self.coordinator).__name__}"
            )
        if not isinstance(self.network, NetworkConfig):
            raise ConfigurationError(
                f"network must be a NetworkConfig, "
                f"got {type(self.network).__name__}"
            )
        if not isinstance(self.replicas, int) or self.replicas < 1:
            raise ConfigurationError(
                f"replicas must be an integer >= 1, got {self.replicas!r}"
            )
        if self.replicas > self.shards:
            raise ConfigurationError(
                f"replicas={self.replicas} exceeds shards={self.shards}; "
                "each chunk range can be placed on at most one copy per shard"
            )
        if not isinstance(self.failures, FailureConfig):
            raise ConfigurationError(
                f"failures must be a FailureConfig, "
                f"got {type(self.failures).__name__}"
            )
        for event in self.failures.events:
            if event.shard >= self.shards:
                raise ConfigurationError(
                    f"failure event at t={event.time} targets shard "
                    f"{event.shard}, but the cluster only has "
                    f"{self.shards} shard(s)"
                )
        if self.hedge is not None and not isinstance(self.hedge, HedgeConfig):
            raise ConfigurationError(
                f"hedge must be a HedgeConfig or None, "
                f"got {type(self.hedge).__name__}"
            )

    @property
    def is_resilient(self) -> bool:
        """Whether replication, failures or hedging are in play.

        ``False`` (the default) selects the legacy sub-query routing code
        path, which the equivalence suite pins bit for bit.
        """
        return (
            self.replicas > 1
            or not self.failures.is_empty
            or self.hedge is not None
        )

    @property
    def cluster_mpl(self) -> int:
        """Cluster-wide cap on concurrently executing whole queries."""
        return self.shards * self.mpl_per_shard

    @property
    def models_coordinator(self) -> bool:
        """Whether any coordinator CPU or network cost is non-zero.

        ``False`` (the default) selects the legacy free-coordinator code
        path, which the equivalence suite pins bit for bit.
        """
        return not (self.coordinator.is_free and self.network.is_free)

    def front_service(self) -> ServiceConfig:
        """The front admission queue expressed as a :class:`ServiceConfig`.

        A 1-shard cluster therefore admits exactly like a single-simulator
        service with ``max_concurrent=mpl_per_shard``.
        """
        return ServiceConfig(
            max_concurrent=self.cluster_mpl,
            queue_capacity=self.queue_capacity,
            discipline=self.discipline,
            classes=self.classes,
            adaptive=self.adaptive,
        )

    def with_shards(self, shards: int) -> "ClusterConfig":
        """Return a copy of this configuration with a different shard count."""
        return replace(self, shards=shards)

    def describe(self) -> Dict[str, Any]:
        """Return a flat dictionary describing the cluster (for reports)."""
        described: Dict[str, Any] = {
            "shards": self.shards,
            "shard_placement": self.placement,
            "mpl_per_shard": self.mpl_per_shard,
            "cluster_mpl": self.cluster_mpl,
            "queue_capacity": (
                "unbounded" if self.queue_capacity is None else self.queue_capacity
            ),
            "discipline": self.discipline,
        }
        if self.classes:
            described["classes"] = ",".join(
                f"{cls.name}:{cls.weight:g}" for cls in self.classes
            )
        if self.adaptive is not None:
            described["adaptive_mpl"] = True
            described["adaptive_target_p95_s"] = self.adaptive.target_p95_s
        if self.models_coordinator:
            described.update(self.coordinator.describe())
            described.update(self.network.describe())
        if self.replicas > 1:
            described["replicas"] = self.replicas
        if not self.failures.is_empty:
            described.update(self.failures.describe())
        if self.hedge is not None:
            described.update(self.hedge.describe())
        return described


@dataclass(frozen=True)
class ObservabilityConfig:
    """Flight-recorder knobs shared by every run entry point.

    Passed (as the ``obs`` argument) to :func:`repro.sim.runner.run_simulation`,
    :func:`repro.service.server.run_service`,
    :func:`repro.cluster.coordinator.run_cluster_service` and
    :class:`repro.sim.lockstep.LockstepRunner`.  Omitting it (``obs=None``)
    — or setting ``enabled=False`` — builds no recorder at all, which is the
    zero-overhead path: simulation results are bit-for-bit identical to a
    build without the observability layer.

    Attributes
    ----------
    enabled:
        Master switch.  ``False`` makes the entry points behave exactly as
        if no config had been passed (no recorder object is created).
    trace:
        Record per-event traces (query lifecycles, queue transitions,
        disk seek/transfer segments, CPU service intervals, ABM decisions).
        Exported via :mod:`repro.obs.export` as JSONL or Chrome trace JSON.
    metrics:
        Record metric timelines on the simulated clock (per-class queue
        depth, active MPL, per-volume utilisation, ABM buffer-hit rate,
        starved-query count) for the windowed drill-down renderers.
    max_trace_events:
        Hard cap on buffered trace events; past it, events are counted as
        dropped instead of stored, bounding memory on runaway runs.
    timeline_window_s:
        Default window width (simulated seconds) used by the timeline
        drill-down renderers; ``None`` picks ~12 windows over the run.
    """

    enabled: bool = True
    trace: bool = True
    metrics: bool = True
    max_trace_events: int = 1_000_000
    timeline_window_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_trace_events < 1:
            raise ConfigurationError("max_trace_events must be >= 1")
        if self.timeline_window_s is not None and self.timeline_window_s <= 0:
            raise ConfigurationError("timeline_window_s must be positive")

    def describe(self) -> Dict[str, Any]:
        return {
            "obs_enabled": self.enabled,
            "obs_trace": self.trace,
            "obs_metrics": self.metrics,
            "obs_max_trace_events": self.max_trace_events,
        }


#: The row-store (NSM/PAX) configuration of Section 5.1: 16 MB chunks,
#: 64-chunk (1 GB) buffer pool, ~200 MB/s RAID, dual-core CPU.
PAPER_NSM_SYSTEM = SystemConfig()

#: The column-store (DSM) configuration of Section 6.3: the buffer pool is
#: grown to 1.5 GB (96 chunk-equivalents) to allow 16 concurrent queries.
PAPER_DSM_SYSTEM = SystemConfig(
    buffer=BufferConfig(chunk_bytes=16 * MB, page_bytes=256 * 1024, capacity_chunks=96),
)
