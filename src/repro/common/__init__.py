"""Shared utilities used by every other subpackage.

The :mod:`repro.common` package deliberately has no dependency on the rest of
the library.  It provides:

* :mod:`repro.common.units` -- byte/size helpers and human-readable formatting,
* :mod:`repro.common.errors` -- the exception hierarchy of the library,
* :mod:`repro.common.rng` -- deterministic random-number helpers,
* :mod:`repro.common.config` -- the configuration dataclasses describing a
  simulated machine (disk, CPU, buffer pool) and a simulated run.
"""

from repro.common.errors import (
    ReproError,
    ConfigurationError,
    StorageError,
    BufferPoolError,
    SchedulingError,
    SimulationError,
    EngineError,
)
from repro.common.units import (
    KB,
    MB,
    GB,
    format_bytes,
    format_seconds,
    ceil_div,
)
from repro.common.rng import make_rng, spawn_rngs
from repro.common.config import (
    DiskConfig,
    CpuConfig,
    BufferConfig,
    SystemConfig,
    ServiceConfig,
    ClusterConfig,
    CoordinatorConfig,
    NetworkConfig,
    WorkloadClassConfig,
    AdaptiveMPLConfig,
    ObservabilityConfig,
    DEFAULT_QUERY_CLASS,
    canonical_discipline,
    ADMISSION_DISCIPLINES,
    VOLUME_PLACEMENTS,
    PAPER_NSM_SYSTEM,
    PAPER_DSM_SYSTEM,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "StorageError",
    "BufferPoolError",
    "SchedulingError",
    "SimulationError",
    "EngineError",
    "KB",
    "MB",
    "GB",
    "format_bytes",
    "format_seconds",
    "ceil_div",
    "make_rng",
    "spawn_rngs",
    "DiskConfig",
    "CpuConfig",
    "BufferConfig",
    "SystemConfig",
    "ServiceConfig",
    "ClusterConfig",
    "CoordinatorConfig",
    "NetworkConfig",
    "WorkloadClassConfig",
    "AdaptiveMPLConfig",
    "ObservabilityConfig",
    "DEFAULT_QUERY_CLASS",
    "canonical_discipline",
    "ADMISSION_DISCIPLINES",
    "VOLUME_PLACEMENTS",
    "PAPER_NSM_SYSTEM",
    "PAPER_DSM_SYSTEM",
]
