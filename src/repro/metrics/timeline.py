"""Validated step-function timelines and windowed rendering.

`ServiceResult.mpl_timeline`, `ClusterResult.mpl_timeline` and every series
recorded by the flight recorder's metrics registry share one shape: a
sequence of ``(time, value)`` points sampled on the simulated clock.  This
module gives them a single validated representation:

* :func:`validate_timeline` — rejects non-finite or backwards timestamps
  (the invariant every renderer and aggregation below relies on);
* :class:`Timeline` — a step function with ``value_at`` lookup and
  time-weighted windowed aggregation;
* :func:`render_timeline` — a text drill-down: one row per window, one
  column per series, so an SLO violation can be localised to a time window
  and component without leaving the terminal.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.metrics.report import format_table

Point = Tuple[float, float]


def validate_timeline(
    points: Sequence[Tuple[float, float]], where: str = "timeline"
) -> Tuple[Point, ...]:
    """Check a ``(time, value)`` sequence and return it as a tuple.

    Raises :class:`~repro.common.errors.SimulationError` if any timestamp
    is non-finite, negative, or earlier than its predecessor (equal
    timestamps are fine: a step function may change twice at one instant,
    e.g. a query completing and its successor being admitted).
    """
    validated: List[Point] = []
    previous = None
    for index, point in enumerate(points):
        time, value = float(point[0]), float(point[1])
        if not math.isfinite(time) or not math.isfinite(value):
            raise SimulationError(
                f"{where}: non-finite point ({time!r}, {value!r}) at index {index}"
            )
        if time < 0:
            raise SimulationError(
                f"{where}: negative timestamp {time!r} at index {index}"
            )
        if previous is not None and time < previous:
            raise SimulationError(
                f"{where}: timestamps go backwards at index {index} "
                f"({time!r} < {previous!r})"
            )
        previous = time
        validated.append((time, value))
    return tuple(validated)


class Timeline:
    """A validated step function over the simulated clock.

    The value at time ``t`` is the value of the last point at or before
    ``t`` (0.0 before the first point).
    """

    __slots__ = ("points", "_times")

    def __init__(
        self, points: Sequence[Tuple[float, float]], where: str = "timeline"
    ) -> None:
        self.points = validate_timeline(points, where=where)
        self._times = [time for time, _ in self.points]

    def __len__(self) -> int:
        return len(self.points)

    @property
    def start(self) -> float:
        return self.points[0][0] if self.points else 0.0

    @property
    def end(self) -> float:
        return self.points[-1][0] if self.points else 0.0

    def value_at(self, time: float) -> float:
        index = bisect_right(self._times, time)
        return self.points[index - 1][1] if index else 0.0

    def mean_over(self, start: float, end: float) -> float:
        """Time-weighted mean value over ``[start, end)``."""
        if end <= start:
            return self.value_at(start)
        total = 0.0
        cursor = start
        value = self.value_at(start)
        index = bisect_right(self._times, start)
        while index < len(self.points) and self.points[index][0] < end:
            time, next_value = self.points[index]
            total += value * (time - cursor)
            cursor, value = time, next_value
            index += 1
        total += value * (end - cursor)
        return total / (end - start)

    def max_over(self, start: float, end: float) -> float:
        """Maximum value attained over ``[start, end)``."""
        best = self.value_at(start)
        index = bisect_right(self._times, start)
        while index < len(self.points) and self.points[index][0] < end:
            best = max(best, self.points[index][1])
            index += 1
        return best

    def windows(
        self, window_s: float, t_end: Optional[float] = None
    ) -> List[Tuple[float, float, float, float]]:
        """Aggregate into ``(start, end, time-weighted mean, max)`` rows."""
        if window_s <= 0:
            raise SimulationError("window_s must be positive")
        end = self.end if t_end is None else t_end
        if end <= 0:
            return []
        rows = []
        cursor = 0.0
        while cursor < end:
            upper = min(cursor + window_s, end)
            rows.append((cursor, upper,
                         self.mean_over(cursor, upper),
                         self.max_over(cursor, upper)))
            cursor = upper
        return rows


def default_window(duration: float, target_windows: int = 12) -> float:
    """A readable window width: ~``target_windows`` rows over ``duration``."""
    if duration <= 0:
        return 1.0
    return max(duration / target_windows, 1e-9)


def render_timeline(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    window_s: Optional[float] = None,
    t_end: Optional[float] = None,
    title: str = "Timeline",
) -> str:
    """Render several timelines side by side, one row per window.

    Each cell shows the series' time-weighted mean over the window, with
    the window maximum in parentheses when it differs meaningfully.
    """
    timelines: Dict[str, Timeline] = {
        name: Timeline(points, where=name) for name, points in series.items()
    }
    if not timelines:
        return format_table(["window"], [], title=title)
    end = t_end if t_end is not None else max(
        timeline.end for timeline in timelines.values()
    )
    width = window_s if window_s is not None else default_window(end)
    names = sorted(timelines)
    rows = []
    reference = Timeline([(0.0, 0.0)])
    spans = reference.windows(width, t_end=end) if end > 0 else []
    for start, upper, _, _ in spans:
        cells = [f"{start:.2f}-{upper:.2f}s"]
        for name in names:
            timeline = timelines[name]
            mean = timeline.mean_over(start, upper)
            peak = timeline.max_over(start, upper)
            if peak > mean * 1.05 + 1e-12:
                cells.append(f"{mean:.2f} (max {peak:.2f})")
            else:
                cells.append(f"{mean:.2f}")
        rows.append(cells)
    return format_table(["window"] + names, rows, title=title)
