"""Plain-text rendering of experiment results in the paper's table layout."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.metrics.stats import PolicyComparison, QueryTypeStats, SystemStats


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a simple aligned text table."""
    columns = len(headers)
    normalised_rows: List[List[str]] = []
    for row in rows:
        cells = [_format_cell(cell) for cell in row]
        if len(cells) != columns:
            raise ValueError(
                f"row has {len(cells)} cells but table has {columns} columns"
            )
        normalised_rows.append(cells)
    widths = [len(str(header)) for header in headers]
    for row in normalised_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in normalised_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if abs(cell) >= 1000:
            return f"{cell:.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)


def render_policy_comparison(
    comparison: PolicyComparison,
    policies: Optional[Sequence[str]] = None,
    title: str = "System statistics",
) -> str:
    """Render the system-statistics block of Tables 2/3."""
    stats = comparison.system_stats()
    names = list(policies) if policies is not None else sorted(stats)
    rows = []
    metrics = (
        ("Avg. stream time", "avg_stream_time"),
        ("Avg. normalized latency", "avg_normalized_latency"),
        ("Total time", "total_time"),
        ("CPU use", "cpu_use"),
        ("Disk use", "disk_use"),
        ("I/O requests", "io_requests"),
    )
    for label, key in metrics:
        row = [label]
        for policy in names:
            value = stats[policy].as_dict()[key]
            if key in ("cpu_use", "disk_use"):
                row.append(f"{value * 100:.1f}%")
            elif key == "io_requests":
                row.append(int(value))
            else:
                row.append(value)
        rows.append(row)
    return format_table(["metric"] + list(names), rows, title=title)


def render_query_table(
    comparison: PolicyComparison,
    policies: Optional[Sequence[str]] = None,
    title: str = "Query statistics",
) -> str:
    """Render the per-query-type block of Tables 2/3."""
    query_stats = comparison.query_stats()
    names = list(policies) if policies is not None else sorted(query_stats)
    all_types: List[str] = []
    for policy in names:
        for entry in query_stats[policy]:
            if entry.name not in all_types:
                all_types.append(entry.name)
    all_types.sort()
    headers = ["query", "count", "standalone"]
    for policy in names:
        headers.extend([f"{policy}:lat", f"{policy}:norm", f"{policy}:IOs"])
    rows = []
    for query_name in all_types:
        per_policy: Dict[str, QueryTypeStats] = {}
        for policy in names:
            for entry in query_stats[policy]:
                if entry.name == query_name:
                    per_policy[policy] = entry
        first = next(iter(per_policy.values()))
        row: List[object] = [query_name, first.count, first.standalone_time]
        for policy in names:
            entry = per_policy.get(policy)
            if entry is None:
                row.extend(["-", "-", "-"])
            else:
                row.extend(
                    [entry.avg_latency, entry.avg_normalized_latency, round(entry.avg_ios, 1)]
                )
        rows.append(row)
    return format_table(headers, rows, title=title)


def render_relative_scatter(
    comparison: PolicyComparison,
    reference_policy: str = "relevance",
    title: str = "Relative to relevance (Figure 5 view)",
) -> str:
    """Render the Figure 5 ratios (stream time and latency vs. relevance)."""
    relative = comparison.relative_to(reference_policy)
    rows = [
        [policy, values["stream_time_ratio"], values["latency_ratio"]]
        for policy, values in sorted(relative.items())
    ]
    return format_table(
        ["policy", "stream time ratio", "norm. latency ratio"], rows, title=title
    )
