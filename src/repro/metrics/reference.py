"""The published 2006 TPC-H 100 GB configurations of Table 1.

Table 1 is not an experiment but published benchmark data the paper uses to
motivate its hardware-trend argument (Section 2): systems buy hundreds of
barely-filled disks purely for random-I/O arms, and the I/O subsystem
dominates system cost.  We reproduce the table as a reference dataset plus
the derived quantities quoted in the text (average disk count, average total
storage, storage cost share).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class TpchSystem:
    """One row of Table 1 (a published TPC-H 100 GB result from 2006)."""

    cpus: str
    ram_gb: int
    disks: int
    total_storage_tb: float
    storage_cost_share: float
    throughput_single: float
    throughput_5way: float


#: The four most recent 2006 TPC-H 100 GB submissions (Table 1).
TPCH_2006_RESULTS: Tuple[TpchSystem, ...] = (
    TpchSystem("4x Xeon 3.0GHz dual-core", 64, 124, 4.4, 0.47, 19497.0, 10404.0),
    TpchSystem("2x Opteron 2GHz", 48, 336, 6.0, 0.80, 12941.0, 11531.0),
    TpchSystem("4x Xeon 3.0GHz dual-core", 32, 92, 3.2, 0.67, 11423.0, 6768.0),
    TpchSystem("2x Power5 1.65GHz dual-core", 32, 45, 1.6, 0.65, 8415.0, 4802.0),
)


def average_disk_count(systems: Tuple[TpchSystem, ...] = TPCH_2006_RESULTS) -> float:
    """Average number of disks (the paper quotes ~150)."""
    return sum(system.disks for system in systems) / len(systems)


def average_total_storage_tb(
    systems: Tuple[TpchSystem, ...] = TPCH_2006_RESULTS,
) -> float:
    """Average total storage in TB (the paper quotes 3.8 TB)."""
    return sum(system.total_storage_tb for system in systems) / len(systems)


def storage_cost_share(
    systems: Tuple[TpchSystem, ...] = TPCH_2006_RESULTS,
) -> float:
    """Average fraction of system cost spent on storage (paper: > 2/3 for
    some systems; the average across the four rows is ~65 %)."""
    return sum(system.storage_cost_share for system in systems) / len(systems)


def concurrency_slowdown(
    systems: Tuple[TpchSystem, ...] = TPCH_2006_RESULTS,
) -> List[float]:
    """Per-system ratio of single-stream to 5-way throughput.

    Values well above 1 show how much concurrent streams hurt, which is the
    paper's argument for why many disks are needed in the 5-stream scenario.
    """
    return [
        system.throughput_single / system.throughput_5way for system in systems
    ]


def disk_fill_fraction(
    database_size_gb: float = 100.0,
    systems: Tuple[TpchSystem, ...] = TPCH_2006_RESULTS,
) -> List[float]:
    """Fraction of the total storage actually occupied by the database
    (the paper notes all these disks are less than 10 % full)."""
    return [
        database_size_gb / (system.total_storage_tb * 1024.0) for system in systems
    ]
