"""Aggregation of simulation results into the paper's statistics.

Tables 2 and 3 report two groups of numbers per policy:

* **system statistics** — average stream time (throughput), average
  normalized latency, total time, CPU use and the number of I/O requests;
* **query statistics** — per query type (F-01, S-50, ...) the count,
  standalone cold time, average/stddev latency, normalized latency and the
  number of I/Os issued while scheduling that query type.

:func:`summarise_run` and :func:`per_query_type_stats` compute exactly those,
and :class:`PolicyComparison` collects them across policies so that the
benchmark harness (and the report renderer) can print paper-style tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.sim.results import QueryResult, RunResult


# --------------------------------------------------------------- percentiles
def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` with linear interpolation.

    Deterministic, pure-python implementation of the standard
    "linear" (type-7) estimator: the ``q``-th percentile of ``n`` sorted
    values sits at rank ``(n - 1) * q / 100`` and is interpolated between
    the two neighbouring order statistics.  Matches
    ``numpy.percentile(values, q)`` exactly for finite inputs.
    """
    return _percentile_sorted(sorted(values), q)


def _percentile_sorted(data: Sequence[float], q: float) -> float:
    """:func:`percentile` over an already-sorted sample."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not data:
        raise ValueError("cannot take a percentile of an empty sequence")
    if len(data) == 1:
        return float(data[0])
    rank = (len(data) - 1) * (q / 100.0)
    lower = int(math.floor(rank))
    upper = min(lower + 1, len(data) - 1)
    fraction = rank - lower
    return float(data[lower]) + (float(data[upper]) - float(data[lower])) * fraction


def percentiles(
    values: Sequence[float], qs: Sequence[float] = (50.0, 95.0, 99.0)
) -> Dict[float, float]:
    """Several percentiles of the same sample, sorted once."""
    data = sorted(values)
    return {q: _percentile_sorted(data, q) for q in qs}


@dataclass(frozen=True)
class LatencySummary:
    """Distributional summary of a latency (or any duration) sample.

    Carries the SLO-relevant tail percentiles (p50/p95/p99) alongside the
    usual mean/extremes; an empty sample yields all zeros so reports can
    render runs where e.g. every arrival was shed.
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    @staticmethod
    def from_values(values: Sequence[float]) -> "LatencySummary":
        data = sorted(values)
        if not data:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return LatencySummary(
            count=len(data),
            mean=sum(data) / len(data),
            p50=_percentile_sorted(data, 50.0),
            p95=_percentile_sorted(data, 95.0),
            p99=_percentile_sorted(data, 99.0),
            minimum=float(data[0]),
            maximum=float(data[-1]),
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary (for reports and SLO tables)."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }


@dataclass(frozen=True)
class QueryTypeStats:
    """Per-query-type statistics (one row of the paper's query tables)."""

    name: str
    count: int
    standalone_time: float
    avg_latency: float
    stddev_latency: float
    avg_normalized_latency: float
    avg_ios: float

    @staticmethod
    def from_results(
        name: str, results: List[QueryResult], standalone_time: float
    ) -> "QueryTypeStats":
        """Aggregate the results of all queries with the same label."""
        latencies = [query.latency for query in results]
        count = len(latencies)
        avg = sum(latencies) / count if count else 0.0
        if count > 1:
            variance = sum((value - avg) ** 2 for value in latencies) / (count - 1)
        else:
            variance = 0.0
        normalized = (
            avg / standalone_time if standalone_time > 0 else float("inf")
        )
        avg_ios = (
            sum(query.loads_triggered for query in results) / count if count else 0.0
        )
        return QueryTypeStats(
            name=name,
            count=count,
            standalone_time=standalone_time,
            avg_latency=avg,
            stddev_latency=math.sqrt(variance),
            avg_normalized_latency=normalized,
            avg_ios=avg_ios,
        )


@dataclass(frozen=True)
class SystemStats:
    """System-wide statistics (the top block of Tables 2 and 3)."""

    policy: str
    avg_stream_time: float
    avg_normalized_latency: float
    total_time: float
    cpu_use: float
    io_requests: int
    #: Mean busy fraction over all disk volumes (0.0 for hand-built results).
    disk_use: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary (used by reports and EXPERIMENTS.md generation)."""
        return {
            "avg_stream_time": self.avg_stream_time,
            "avg_normalized_latency": self.avg_normalized_latency,
            "total_time": self.total_time,
            "cpu_use": self.cpu_use,
            "io_requests": float(self.io_requests),
            "disk_use": self.disk_use,
        }


def summarise_run(
    result: RunResult, standalone_times: Mapping[str, float]
) -> SystemStats:
    """Compute the system statistics of one policy run."""
    return SystemStats(
        policy=result.policy,
        avg_stream_time=result.average_stream_time,
        avg_normalized_latency=result.average_normalized_latency(dict(standalone_times)),
        total_time=result.total_time,
        cpu_use=result.cpu_utilisation,
        io_requests=result.io_requests,
        disk_use=result.disk_utilisation,
    )


def per_query_type_stats(
    result: RunResult, standalone_times: Mapping[str, float]
) -> List[QueryTypeStats]:
    """Compute the per-query-type statistics of one policy run."""
    stats = []
    for name, queries in sorted(result.queries_by_name().items()):
        stats.append(
            QueryTypeStats.from_results(
                name, queries, standalone_times.get(name, 0.0)
            )
        )
    return stats


@dataclass
class PolicyComparison:
    """All policies' results for one experiment, plus the shared baselines."""

    standalone_times: Dict[str, float]
    runs: Dict[str, RunResult] = field(default_factory=dict)

    def add(self, result: RunResult) -> None:
        """Register the result of one policy run."""
        self.runs[result.policy] = result

    def system_stats(self) -> Dict[str, SystemStats]:
        """System statistics per policy."""
        return {
            policy: summarise_run(result, self.standalone_times)
            for policy, result in self.runs.items()
        }

    def query_stats(self) -> Dict[str, List[QueryTypeStats]]:
        """Per-query-type statistics per policy."""
        return {
            policy: per_query_type_stats(result, self.standalone_times)
            for policy, result in self.runs.items()
        }

    def relative_to(self, reference_policy: str = "relevance") -> Dict[str, Dict[str, float]]:
        """Throughput and latency of each policy relative to a reference.

        This is the Figure 5 view: ``(avg stream time / reference,
        avg normalized latency / reference)`` per policy.
        """
        stats = self.system_stats()
        if reference_policy not in stats:
            raise KeyError(f"no run recorded for policy {reference_policy!r}")
        reference = stats[reference_policy]
        relative: Dict[str, Dict[str, float]] = {}
        for policy, stat in stats.items():
            relative[policy] = {
                "stream_time_ratio": _safe_ratio(
                    stat.avg_stream_time, reference.avg_stream_time
                ),
                "latency_ratio": _safe_ratio(
                    stat.avg_normalized_latency, reference.avg_normalized_latency
                ),
            }
        return relative


def _safe_ratio(value: float, reference: float) -> float:
    if reference <= 0:
        return float("inf")
    return value / reference


def compare_runs(
    runs: Mapping[str, RunResult], standalone_times: Mapping[str, float]
) -> PolicyComparison:
    """Build a :class:`PolicyComparison` from a policy -> result mapping."""
    comparison = PolicyComparison(standalone_times=dict(standalone_times))
    for result in runs.values():
        comparison.add(result)
    return comparison
