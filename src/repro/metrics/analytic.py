"""Closed-form models from the paper.

These are the analytic results the paper uses to motivate Cooperative Scans:

* Equation 1 / Figure 2 — the probability that a randomly-filled buffer pool
  contains at least one chunk useful to a query (high even for small buffers
  and selective queries, which is the sharing opportunity the normal policy
  wastes);
* the expected number of I/Os a *normal* (round-robin, no reuse) system
  performs before a new query finishes: ``C_new + sum(min(C_new, C_q))``;
* the worst-case I/Os for *elevator*: ``min(C_T, C_new + sum(C_q))``;
* the NSM and DSM block-reuse probabilities of Section 6.1 (DSM divides the
  NSM probability by the column-overlap probability).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng


def buffer_reuse_probability(table_chunks: int, query_chunks: int, buffer_chunks: int) -> float:
    """Equation 1: probability that a randomly-filled buffer pool of
    ``buffer_chunks`` chunks contains at least one of the ``query_chunks``
    chunks a query needs, out of a table of ``table_chunks`` chunks.

    ``P_reuse = 1 - prod_{i=0}^{C_B - 1} (C_T - C_Q - i) / (C_T - i)``
    """
    if table_chunks <= 0:
        raise ConfigurationError("table_chunks must be positive")
    if not 0 <= query_chunks <= table_chunks:
        raise ConfigurationError("query_chunks must be within [0, table_chunks]")
    if not 0 <= buffer_chunks <= table_chunks:
        raise ConfigurationError("buffer_chunks must be within [0, table_chunks]")
    probability_none = 1.0
    for i in range(buffer_chunks):
        numerator = table_chunks - query_chunks - i
        denominator = table_chunks - i
        if denominator <= 0:
            break
        if numerator <= 0:
            probability_none = 0.0
            break
        probability_none *= numerator / denominator
    return 1.0 - probability_none


def buffer_reuse_probability_curve(
    table_chunks: int,
    buffer_fractions: Sequence[float],
    query_demands: Sequence[int],
) -> Dict[float, List[Tuple[int, float]]]:
    """The full Figure 2 data: one curve per buffered fraction.

    Returns ``{buffer_fraction: [(query_chunks, probability), ...]}``.
    """
    curves: Dict[float, List[Tuple[int, float]]] = {}
    for fraction in buffer_fractions:
        buffer_chunks = max(0, int(round(fraction * table_chunks)))
        curve = [
            (demand, buffer_reuse_probability(table_chunks, demand, buffer_chunks))
            for demand in query_demands
        ]
        curves[fraction] = curve
    return curves


def monte_carlo_reuse_probability(
    table_chunks: int,
    query_chunks: int,
    buffer_chunks: int,
    trials: int = 20_000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of Equation 1 (used to validate the formula)."""
    if trials <= 0:
        raise ConfigurationError("trials must be positive")
    rng = make_rng(seed)
    if query_chunks == 0 or buffer_chunks == 0:
        return 0.0
    hits = 0
    table = np.arange(table_chunks)
    for _ in range(trials):
        buffered = rng.choice(table, size=buffer_chunks, replace=False)
        wanted = rng.choice(table, size=query_chunks, replace=False)
        if np.intersect1d(buffered, wanted, assume_unique=True).size > 0:
            hits += 1
    return hits / trials


def expected_ios_normal(new_query_chunks: int, running_query_chunks: Iterable[int]) -> int:
    """Section 3: expected I/Os in the system until a fresh query finishes
    under the *normal* policy (round-robin, no reuse)."""
    if new_query_chunks < 0:
        raise ConfigurationError("chunk counts must be non-negative")
    return new_query_chunks + sum(
        min(new_query_chunks, chunks) for chunks in running_query_chunks
    )


def expected_ios_elevator(
    table_chunks: int, new_query_chunks: int, running_query_chunks: Iterable[int]
) -> int:
    """Section 3: worst-case I/Os until a fresh query finishes under *elevator*."""
    if table_chunks <= 0:
        raise ConfigurationError("table_chunks must be positive")
    return min(table_chunks, new_query_chunks + sum(running_query_chunks))


def nsm_block_reuse_probability(other_query_tuples: int, table_tuples: int) -> float:
    """Section 6.1: probability that a block fetched for one query is also
    used by another query reading ``other_query_tuples`` tuples (NSM)."""
    if table_tuples <= 0:
        raise ConfigurationError("table_tuples must be positive")
    return min(1.0, other_query_tuples / table_tuples)


def dsm_block_reuse_probability(
    other_query_tuples: int, table_tuples: int, column_overlap_probability: float
) -> float:
    """Section 6.1: the DSM reuse probability adds the column-overlap factor."""
    if not 0.0 <= column_overlap_probability <= 1.0:
        raise ConfigurationError("column_overlap_probability must be in [0, 1]")
    return (
        nsm_block_reuse_probability(other_query_tuples, table_tuples)
        * column_overlap_probability
    )


def average_query_latency_example() -> Dict[str, float]:
    """The introduction's worked example: Q1 needs 30 chunks, Q2 needs 10.

    Returns the average waiting times under round-robin (normal), the good
    and bad elevator orders, and the optimal schedule — the numbers quoted in
    Section 1 (30, 25, 35 and 25 chunks of waiting respectively).
    """
    q1, q2 = 30, 10
    round_robin = ((2 * q2) + (q1 + q2)) / 2.0
    elevator_good = (q2 + (q1 + q2)) / 2.0
    elevator_bad = ((q1 + q2) + q1) / 2.0
    optimal = elevator_good
    return {
        "normal_round_robin": round_robin,
        "elevator_good_order": elevator_good,
        "elevator_bad_order": elevator_bad,
        "optimal": optimal,
    }
