"""Metrics, analytic models and report formatting.

* :mod:`repro.metrics.analytic` -- the closed-form models of Sections 2-3 and
  6.1: the buffer-reuse probability of Equation 1 / Figure 2 (plus a
  Monte-Carlo cross-check), the expected I/O counts of the normal and
  elevator policies, and the NSM/DSM block-reuse probabilities;
* :mod:`repro.metrics.stats` -- aggregation of simulation results into the
  system- and per-query statistics reported in Tables 2 and 3;
* :mod:`repro.metrics.report` -- plain-text rendering of those statistics in
  the paper's table layout (used by benchmarks and examples);
* :mod:`repro.metrics.reference` -- the published TPC-H configurations of
  Table 1 and the derived ratios quoted in Section 2;
* :mod:`repro.metrics.timeline` -- validated ``(time, value)`` step
  timelines with windowed aggregation and a text drill-down renderer
  (shared by the MPL timelines and the flight recorder's metric series).
"""

from repro.metrics.analytic import (
    buffer_reuse_probability,
    buffer_reuse_probability_curve,
    monte_carlo_reuse_probability,
    expected_ios_normal,
    expected_ios_elevator,
    nsm_block_reuse_probability,
    dsm_block_reuse_probability,
)
from repro.metrics.stats import (
    QueryTypeStats,
    SystemStats,
    PolicyComparison,
    LatencySummary,
    summarise_run,
    per_query_type_stats,
    compare_runs,
    percentile,
    percentiles,
)
from repro.metrics.report import (
    format_table,
    render_policy_comparison,
    render_query_table,
)
from repro.metrics.reference import TPCH_2006_RESULTS, TpchSystem, storage_cost_share
from repro.metrics.timeline import (
    Timeline,
    default_window,
    render_timeline,
    validate_timeline,
)

__all__ = [
    "buffer_reuse_probability",
    "buffer_reuse_probability_curve",
    "monte_carlo_reuse_probability",
    "expected_ios_normal",
    "expected_ios_elevator",
    "nsm_block_reuse_probability",
    "dsm_block_reuse_probability",
    "QueryTypeStats",
    "SystemStats",
    "PolicyComparison",
    "LatencySummary",
    "summarise_run",
    "per_query_type_stats",
    "compare_runs",
    "percentile",
    "percentiles",
    "format_table",
    "render_policy_comparison",
    "render_query_table",
    "TPCH_2006_RESULTS",
    "TpchSystem",
    "storage_cost_share",
    "Timeline",
    "default_window",
    "render_timeline",
    "validate_timeline",
]
