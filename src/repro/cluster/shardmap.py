"""Chunk-to-shard placement and query planning for the cluster layer.

A :class:`ShardMap` partitions a table's logical chunks across several shard
simulators the same way :class:`repro.storage.volumes.VolumeLayout`
partitions them across disk volumes — it *is* a volume layout, reused one
level up: ``"range"`` placement gives each shard one contiguous chunk range
(the classic partitioned table), ``"striped"`` round-robins chunks across
shards.

On top of the placement geometry the map does the cluster's query planning:
:meth:`ShardMap.plan` splits one global :class:`ScanRequest` into per-shard
sub-queries whose chunk ids are *shard-local* (each shard simulator models
its own table of ``chunks_owned(shard)`` chunks numbered from zero), using
:meth:`VolumeLayout.local_index` for the translation.  Locality is what
keeps per-shard seek accounting honest: chunks that are adjacent inside a
shard's range stay adjacent in the sub-query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.config import ClusterConfig
from repro.common.errors import ConfigurationError
from repro.core.cscan import ScanRequest
from repro.storage.volumes import VolumeLayout


@dataclass(frozen=True)
class ShardMap:
    """Deterministic mapping of logical chunks onto cluster shards.

    Attributes
    ----------
    num_chunks:
        Number of logical chunks of the (global) table being sharded.
    num_shards:
        Number of shard simulators.
    placement:
        ``"range"`` (contiguous chunk range per shard) or ``"striped"``.
    """

    num_chunks: int
    num_shards: int = 1
    placement: str = "range"
    #: The underlying chunk->shard geometry (a volume layout, reused).
    _layout: VolumeLayout = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # A disk may have more volumes than chunks, but a shard must own at
        # least one chunk — a zero-chunk shard has no table to simulate and
        # would only fail later, deep inside ABM construction.
        if self.num_shards > self.num_chunks:
            raise ConfigurationError(
                f"cannot shard {self.num_chunks} chunks across "
                f"{self.num_shards} shards (every shard must own at least "
                "one chunk)"
            )
        layout = VolumeLayout(
            num_chunks=self.num_chunks,
            num_volumes=self.num_shards,
            placement=self.placement,
        )
        object.__setattr__(self, "_layout", layout)
        # Range placement rounds the per-shard range up, so uneven splits
        # can starve trailing shards even with shards <= chunks (e.g. 10
        # chunks across 6 shards leaves the last shard empty).
        empty = [
            shard
            for shard in range(self.num_shards)
            if not layout.chunks_on(shard)
        ]
        if empty:
            raise ConfigurationError(
                f"{self.placement!r} placement of {self.num_chunks} chunks "
                f"across {self.num_shards} shards leaves shard(s) {empty} "
                "with no chunks; use fewer shards or striped placement"
            )

    @classmethod
    def from_cluster_config(
        cls, cluster: ClusterConfig, num_chunks: int
    ) -> "ShardMap":
        """Build the shard map described by a :class:`ClusterConfig`."""
        return cls(
            num_chunks=num_chunks,
            num_shards=cluster.shards,
            placement=cluster.placement,
        )

    # ------------------------------------------------------------ geometry
    def shard_of(self, chunk: int) -> int:
        """Shard owning the given global chunk."""
        return self._layout.volume_of(chunk)

    def local_chunk(self, chunk: int) -> int:
        """Shard-local id of a global chunk (its position on its shard)."""
        return self._layout.local_index(chunk)

    def chunks_on(self, shard: int) -> List[int]:
        """All global chunks owned by one shard, in shard-local order."""
        return self._layout.chunks_on(shard)

    def chunks_owned(self, shard: int) -> int:
        """Number of chunks one shard owns (its local table size)."""
        return len(self.chunks_on(shard))

    @property
    def shard_sizes(self) -> Tuple[int, ...]:
        """Chunks owned by each shard, indexed by shard."""
        return tuple(self.chunks_owned(shard) for shard in range(self.num_shards))

    # ------------------------------------------------------------- planning
    def shards_of(self, spec: ScanRequest) -> Tuple[int, ...]:
        """The shards a query's chunk set touches, in shard order."""
        return tuple(sorted({self.shard_of(chunk) for chunk in spec.chunks}))

    def plan(self, spec: ScanRequest) -> Dict[int, ScanRequest]:
        """Split one global scan into per-shard sub-queries.

        Returns a dict mapping each touched shard to a sub-query carrying
        the same ``query_id``, name, columns and per-chunk CPU cost, with
        the shard's portion of the chunk set translated to shard-local ids.
        A query touching one shard yields exactly one sub-query identical in
        shape to the original (which is what makes a 1-shard cluster
        reproduce the single-simulator service bit for bit).
        """
        by_shard: Dict[int, List[int]] = {}
        for chunk in spec.chunks:
            by_shard.setdefault(self.shard_of(chunk), []).append(
                self.local_chunk(chunk)
            )
        plan: Dict[int, ScanRequest] = {}
        for shard in sorted(by_shard):
            plan[shard] = ScanRequest(
                query_id=spec.query_id,
                name=spec.name,
                chunks=tuple(sorted(by_shard[shard])),
                columns=spec.columns,
                cpu_per_chunk=spec.cpu_per_chunk,
            )
        return plan

    def validate_shard_tables(self, shard_chunk_counts: Tuple[int, ...]) -> None:
        """Check that per-shard table sizes match the chunks each shard owns.

        ``shard_chunk_counts[i]`` is the number of chunks shard *i*'s ABM
        models; a mismatch would silently mis-route sub-query chunks.
        """
        if len(shard_chunk_counts) != self.num_shards:
            raise ConfigurationError(
                f"cluster has {self.num_shards} shards but "
                f"{len(shard_chunk_counts)} shard tables were supplied"
            )
        for shard, count in enumerate(shard_chunk_counts):
            owned = self.chunks_owned(shard)
            if count != owned:
                raise ConfigurationError(
                    f"shard {shard} owns {owned} chunks of the table but its "
                    f"ABM models {count}"
                )

    def describe(self) -> Dict[str, object]:
        """Flat description of the sharding (for reports)."""
        return {
            "num_chunks": self.num_chunks,
            "num_shards": self.num_shards,
            "shard_placement": self.placement,
            "shard_sizes": list(self.shard_sizes),
        }
