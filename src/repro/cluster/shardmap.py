"""Chunk-to-shard placement and query planning for the cluster layer.

A :class:`ShardMap` partitions a table's logical chunks across several shard
simulators the same way :class:`repro.storage.volumes.VolumeLayout`
partitions them across disk volumes — it *is* a volume layout, reused one
level up: ``"range"`` placement gives each shard one contiguous chunk range
(the classic partitioned table), ``"striped"`` round-robins chunks across
shards.

On top of the placement geometry the map does the cluster's query planning:
:meth:`ShardMap.plan` splits one global :class:`ScanRequest` into per-shard
sub-queries whose chunk ids are *shard-local* (each shard simulator models
its own table of ``chunks_owned(shard)`` chunks numbered from zero), using
:meth:`VolumeLayout.local_index` for the translation.  Locality is what
keeps per-shard seek accounting honest: chunks that are adjacent inside a
shard's range stay adjacent in the sub-query.

With ``replicas=R > 1`` the map uses *chained declustering*: replica ``r``
of primary shard ``p``'s chunk range lives on shard ``(p + r) % N``, so
each shard stores its own primary range plus the ranges of its ``R - 1``
predecessors, and losing any single shard leaves every chunk readable on
``R - 1`` other shards.  A shard's local table enumerates everything it
*stores* (sorted by global chunk id); :meth:`sub_request` translates a
chunk group to whichever replica the coordinator picked.  ``replicas=1``
stores exactly the primary ranges, and every local id coincides with
:meth:`VolumeLayout.local_index` — the unreplicated geometry, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.common.config import ClusterConfig
from repro.common.errors import ConfigurationError
from repro.core.cscan import ScanRequest
from repro.storage.volumes import VolumeLayout


@dataclass(frozen=True)
class ShardMap:
    """Deterministic mapping of logical chunks onto cluster shards.

    Attributes
    ----------
    num_chunks:
        Number of logical chunks of the (global) table being sharded.
    num_shards:
        Number of shard simulators.
    placement:
        ``"range"`` (contiguous chunk range per shard) or ``"striped"``.
    replicas:
        Copies of each primary chunk range, placed by chained declustering
        (replica *r* of primary *p* on shard ``(p + r) % num_shards``).
    """

    num_chunks: int
    num_shards: int = 1
    placement: str = "range"
    replicas: int = 1
    #: The underlying chunk->shard geometry (a volume layout, reused).
    _layout: VolumeLayout = field(init=False, repr=False, compare=False)
    #: Per-shard tuple of every global chunk the shard stores (all replicas),
    #: sorted by global chunk id — the shard's local table enumeration.
    _stored: Tuple[Tuple[int, ...], ...] = field(
        init=False, repr=False, compare=False
    )
    #: Per-shard map from global chunk id to its shard-local position.
    _local: Tuple[Dict[int, int], ...] = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        # A disk may have more volumes than chunks, but a shard must own at
        # least one chunk — a zero-chunk shard has no table to simulate and
        # would only fail later, deep inside ABM construction.
        if self.num_shards > self.num_chunks:
            raise ConfigurationError(
                f"cannot shard {self.num_chunks} chunks across "
                f"{self.num_shards} shards (every shard must own at least "
                "one chunk)"
            )
        if not 1 <= self.replicas <= self.num_shards:
            raise ConfigurationError(
                f"replicas must be between 1 and num_shards="
                f"{self.num_shards}, got {self.replicas}"
            )
        layout = VolumeLayout(
            num_chunks=self.num_chunks,
            num_volumes=self.num_shards,
            placement=self.placement,
        )
        object.__setattr__(self, "_layout", layout)
        # Range placement rounds the per-shard range up, so uneven splits
        # can starve trailing shards even with shards <= chunks (e.g. 10
        # chunks across 6 shards leaves the last shard empty).  With
        # replication the check still applies to the *primary* ranges: an
        # empty primary range would leave that shard nothing to lead on and
        # replica placement asymmetric.
        empty = [
            shard
            for shard in range(self.num_shards)
            if not layout.chunks_on(shard)
        ]
        if empty:
            raise ConfigurationError(
                f"{self.placement!r} placement of {self.num_chunks} chunks "
                f"across {self.num_shards} shards leaves shard(s) {empty} "
                "with no chunks; use fewer shards or striped placement"
            )
        stored: List[Tuple[int, ...]] = []
        local: List[Dict[int, int]] = []
        for shard in range(self.num_shards):
            chunks = sorted(
                {
                    chunk
                    for replica in range(self.replicas)
                    for chunk in layout.chunks_on(
                        (shard - replica) % self.num_shards
                    )
                }
            )
            stored.append(tuple(chunks))
            local.append({chunk: rank for rank, chunk in enumerate(chunks)})
        object.__setattr__(self, "_stored", tuple(stored))
        object.__setattr__(self, "_local", tuple(local))

    @classmethod
    def from_cluster_config(
        cls, cluster: ClusterConfig, num_chunks: int
    ) -> "ShardMap":
        """Build the shard map described by a :class:`ClusterConfig`."""
        return cls(
            num_chunks=num_chunks,
            num_shards=cluster.shards,
            placement=cluster.placement,
            replicas=cluster.replicas,
        )

    # ------------------------------------------------------------ geometry
    def shard_of(self, chunk: int) -> int:
        """*Primary* shard of the given global chunk."""
        return self._layout.volume_of(chunk)

    def primary_of(self, chunk: int) -> int:
        """Alias of :meth:`shard_of`, explicit about replication."""
        return self._layout.volume_of(chunk)

    def replica_shards(self, primary: int) -> Tuple[int, ...]:
        """Every shard storing the given primary shard's chunk range.

        The first entry is the primary itself; the rest follow the chained
        declustering ring order.
        """
        return tuple(
            (primary + replica) % self.num_shards
            for replica in range(self.replicas)
        )

    def replicas_of(self, chunk: int) -> Tuple[int, ...]:
        """Every shard storing a copy of the given global chunk."""
        return self.replica_shards(self.shard_of(chunk))

    def local_chunk(self, chunk: int) -> int:
        """Local id of a global chunk on its *primary* shard."""
        return self._local[self.shard_of(chunk)][chunk]

    def local_chunk_on(self, shard: int, chunk: int) -> int:
        """Local id of a global chunk on any shard that stores it."""
        try:
            return self._local[shard][chunk]
        except KeyError as exc:
            raise ConfigurationError(
                f"shard {shard} stores no copy of chunk {chunk} "
                f"(replicas={self.replicas})"
            ) from exc

    def chunks_on(self, shard: int) -> List[int]:
        """All global chunks *stored* on one shard, in shard-local order."""
        return list(self._stored[shard])

    def chunks_owned(self, shard: int) -> int:
        """Number of chunks one shard stores (its local table size)."""
        return len(self._stored[shard])

    @property
    def shard_sizes(self) -> Tuple[int, ...]:
        """Chunks stored by each shard, indexed by shard."""
        return tuple(self.chunks_owned(shard) for shard in range(self.num_shards))

    # ------------------------------------------------------------- planning
    def shards_of(self, spec: ScanRequest) -> Tuple[int, ...]:
        """The primary shards a query's chunk set touches, in shard order."""
        return tuple(sorted({self.shard_of(chunk) for chunk in spec.chunks}))

    def plan(self, spec: ScanRequest) -> Dict[int, ScanRequest]:
        """Split one global scan into per-primary-shard sub-queries.

        Returns a dict mapping each touched shard to a sub-query carrying
        the same ``query_id``, name, columns and per-chunk CPU cost, with
        the shard's portion of the chunk set translated to shard-local ids.
        A query touching one shard yields exactly one sub-query identical in
        shape to the original (which is what makes a 1-shard cluster
        reproduce the single-simulator service bit for bit).  Replication
        does not change this plan — it only widens where each group *may*
        run; replica-flexible routing goes through :meth:`plan_groups` +
        :meth:`sub_request` instead.
        """
        by_shard: Dict[int, List[int]] = {}
        for chunk in spec.chunks:
            by_shard.setdefault(self.shard_of(chunk), []).append(
                self._layout.local_index(chunk)
            )
        plan: Dict[int, ScanRequest] = {}
        for shard in sorted(by_shard):
            plan[shard] = ScanRequest(
                query_id=spec.query_id,
                name=spec.name,
                chunks=tuple(sorted(by_shard[shard])),
                columns=spec.columns,
                cpu_per_chunk=spec.cpu_per_chunk,
            )
        return plan

    def plan_groups(self, spec: ScanRequest) -> Dict[int, Tuple[int, ...]]:
        """Group a query's *global* chunks by primary shard.

        The routing-agnostic half of replica-flexible planning: each group
        can be materialised on any of its primary's :meth:`replica_shards`
        via :meth:`sub_request`.
        """
        by_primary: Dict[int, List[int]] = {}
        for chunk in spec.chunks:
            by_primary.setdefault(self.shard_of(chunk), []).append(chunk)
        return {
            primary: tuple(sorted(chunks))
            for primary, chunks in sorted(by_primary.items())
        }

    def sub_request(
        self,
        spec: ScanRequest,
        global_chunks: Sequence[int],
        shard: int,
        sub_id: int,
    ) -> ScanRequest:
        """Materialise one chunk group as a sub-query on a chosen replica.

        ``sub_id`` becomes the sub-query's ``query_id`` (the coordinator
        synthesises unique ids so re-scatters and hedges never collide on a
        shard); the chunks are translated to ``shard``'s local table.
        """
        return ScanRequest(
            query_id=sub_id,
            name=spec.name,
            chunks=tuple(
                sorted(
                    self.local_chunk_on(shard, chunk)
                    for chunk in global_chunks
                )
            ),
            columns=spec.columns,
            cpu_per_chunk=spec.cpu_per_chunk,
            query_class=spec.query_class,
        )

    def validate_shard_tables(self, shard_chunk_counts: Tuple[int, ...]) -> None:
        """Check that per-shard table sizes match the chunks each shard stores.

        ``shard_chunk_counts[i]`` is the number of chunks shard *i*'s ABM
        models; a mismatch would silently mis-route sub-query chunks.
        """
        if len(shard_chunk_counts) != self.num_shards:
            raise ConfigurationError(
                f"cluster has {self.num_shards} shards but "
                f"{len(shard_chunk_counts)} shard tables were supplied"
            )
        for shard, count in enumerate(shard_chunk_counts):
            owned = self.chunks_owned(shard)
            if count != owned:
                raise ConfigurationError(
                    f"shard {shard} stores {owned} chunks of the table but "
                    f"its ABM models {count}"
                )

    def describe(self) -> Dict[str, object]:
        """Flat description of the sharding (for reports)."""
        described: Dict[str, object] = {
            "num_chunks": self.num_chunks,
            "num_shards": self.num_shards,
            "shard_placement": self.placement,
            "shard_sizes": list(self.shard_sizes),
        }
        if self.replicas > 1:
            described["replicas"] = self.replicas
        return described
