"""Failure injection and hedge monitoring for the sharded cluster.

Two small frontier-event sources plug a :class:`ClusterCoordinator` into
the :class:`repro.sim.lockstep.LockstepRunner` ``interrupts`` hook:

* :class:`FailureInjector` walks a :class:`repro.common.config.FailureConfig`
  schedule (kill / degrade / repair events on the simulated clock) and
  fires each event at its exact time on the lockstep frontier — *before*
  any shard steps at that instant, so a kill scheduled at the same time as
  a scatter delivery deterministically wins the race;
* :class:`HedgeMonitor` simply re-exposes the coordinator's own hedging
  deadline (the time the oldest straggling sub-query crosses the latency
  quantile threshold) as a frontier event, so hedges fire at the exact
  moment a sub-query becomes late instead of at the next shard event.

Both are pure adapters: all the state lives in the coordinator, which
keeps the schedule deterministic and the sources trivially resumable.
:func:`random_failure_schedule` builds seedable kill/repair schedules for
benchmarks and examples.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.common.config import FailureConfig, FailureEvent


class FailureInjector:
    """Replays a :class:`FailureConfig` schedule against the coordinator.

    The schedule was validated (time-ordered, state-machine consistent) by
    ``FailureConfig.__post_init__``; the injector is a cursor over it.
    """

    def __init__(self, config: FailureConfig, coordinator) -> None:
        self.config = config
        self.coordinator = coordinator
        self._cursor = 0

    def next_event_time(self) -> Optional[float]:
        """Time of the next unfired schedule event (``None`` when done)."""
        if self._cursor >= len(self.config.events):
            return None
        return self.config.events[self._cursor].time

    def fire(self, now: float) -> None:
        """Apply the next schedule event; the cursor always advances."""
        event = self.config.events[self._cursor]
        self._cursor += 1
        if event.kind == "kill":
            self.coordinator.kill_shard(event.shard, now)
        elif event.kind == "degrade":
            self.coordinator.degrade_shard(
                event.shard, now, self.config.degrade_factor
            )
        else:  # "repair" — FailureEvent admits no other kind.
            self.coordinator.repair_shard(event.shard, now)

    @property
    def events_fired(self) -> int:
        """How many schedule events have been applied so far."""
        return self._cursor


class HedgeMonitor:
    """Frontier-event adapter for the coordinator's hedging deadline."""

    def __init__(self, coordinator) -> None:
        self.coordinator = coordinator

    def next_event_time(self) -> Optional[float]:
        """When the oldest eligible sub-query becomes hedge-worthy."""
        return self.coordinator.next_hedge_time()

    def fire(self, now: float) -> None:
        """Scatter duplicates for every sub-query past its deadline."""
        self.coordinator.fire_hedges(now)


def random_failure_schedule(
    shards: int,
    kills: int,
    start: float,
    spacing: float,
    downtime: float,
    seed: int = 0,
    degrade_factor: float = 0.5,
) -> FailureConfig:
    """A seedable kill/repair schedule for benchmarks and examples.

    ``kills`` shards are killed one at a time — the k-th kill at
    ``start + k * spacing``, each repaired ``downtime`` seconds later —
    with the victim shard drawn uniformly (without immediate repeats) by a
    private :class:`random.Random` stream.  Repairs land before the next
    kill when ``downtime < spacing``, keeping at most one shard down at a
    time so the schedule stays valid for any ``replicas >= 1``.
    """
    if downtime >= spacing:
        raise ValueError(
            f"downtime={downtime} must be < spacing={spacing} so each shard "
            "is repaired before the next kill"
        )
    rng = random.Random(seed)
    events: List[FailureEvent] = []
    previous = -1
    for index in range(kills):
        victim = rng.randrange(shards)
        if shards > 1 and victim == previous:
            victim = (victim + 1) % shards
        previous = victim
        kill_at = start + index * spacing
        events.append(FailureEvent(time=kill_at, shard=victim, kind="kill"))
        events.append(
            FailureEvent(time=kill_at + downtime, shard=victim, kind="repair")
        )
    return FailureConfig(events=tuple(events), degrade_factor=degrade_factor)
