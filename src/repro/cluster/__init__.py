"""Sharded scatter-gather cluster layer over multiple ABM+disk simulators.

The open-system service (:mod:`repro.service`) admits traffic into *one*
simulator — one ABM sharing one machine's disk volumes.  This package is the
next scaling step toward "millions of users": the table's chunks are
partitioned across several independent shard simulators (each its own ABM,
buffer pool, disk volumes and event core, advanced in lockstep on a shared
clock by :class:`repro.sim.lockstep.LockstepRunner`) behind one front
admission queue:

* :mod:`repro.cluster.shardmap` — :class:`ShardMap`, the chunk->shard
  placement (range-partitioned or striped, built on
  :class:`repro.storage.volumes.VolumeLayout`) and the query planner that
  splits a global scan into shard-local sub-queries;
* :mod:`repro.cluster.coordinator` — the scatter-gather coordinator: one
  :class:`repro.service.admission.AdmissionController` front door, per-shard
  :class:`ShardSource` query sources, gathering of sub-query completions
  into whole-query :class:`ClusterQueryRecord` outcomes, and the
  :func:`run_cluster_service` / :func:`compare_cluster_policies` entry
  points producing a merged cluster :class:`repro.service.slo.SLOReport`.

When :attr:`repro.common.config.ClusterConfig.models_coordinator` is set,
the coordinator itself is a real resource: a :mod:`repro.net` CPU + NIC
cost bundle delays scatter deliveries and gather completions, and the
merged SLO report carries its utilisation and queue-delay warnings.

With ``replicas=R > 1``, a failure schedule, or a hedge policy
(:attr:`repro.common.config.ClusterConfig.is_resilient`) the cluster also
tolerates shard failures:

* :mod:`repro.cluster.shardmap` places each chunk range on ``R`` shards by
  chained declustering, and the coordinator routes each chunk group to the
  least-loaded live replica;
* :mod:`repro.cluster.failures` — :class:`FailureInjector` replays a
  seedable kill/degrade/repair schedule as lockstep frontier events
  (degraded shards lose disk bandwidth in place; killed shards fail-stop,
  their work re-scattered to surviving replicas), and
  :class:`HedgeMonitor` fires hedged duplicates for sub-queries that
  exceed a latency quantile (first completion wins, the loser is cancelled
  and fully unwound);
* the merged SLO report and :class:`ClusterResult` gain an
  :class:`repro.service.slo.AvailabilitySLO` section — per-shard health
  timelines, hedge/re-scatter counters and failure-attributed latency.

A 1-shard cluster reproduces :func:`repro.service.run_service` bit for bit
(same scheduling decisions, same SLO report) — pinned by
``tests/test_cluster_equivalence.py``, which also pins that ``replicas=1``
with an empty failure schedule reproduces the legacy cluster exactly.
"""

from repro.cluster.shardmap import ShardMap
from repro.cluster.coordinator import (
    ClusterCoordinator,
    ClusterQueryRecord,
    ClusterResult,
    ShardSource,
    compare_cluster_policies,
    run_cluster_service,
)
from repro.cluster.failures import (
    FailureInjector,
    HedgeMonitor,
    random_failure_schedule,
)

__all__ = [
    "ShardMap",
    "ClusterCoordinator",
    "ClusterQueryRecord",
    "ClusterResult",
    "ShardSource",
    "compare_cluster_policies",
    "run_cluster_service",
    "FailureInjector",
    "HedgeMonitor",
    "random_failure_schedule",
]
