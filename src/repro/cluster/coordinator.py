"""The scatter-gather coordinator of the sharded cluster.

One :class:`ClusterCoordinator` owns the cluster's front door — the same
:class:`repro.service.frontdoor.FrontDoor` pipeline the single-simulator
service runs (arrivals -> classification -> per-class admission ->
completion/release), capping the number of concurrently executing *whole*
queries at the cluster MPL (``shards * mpl_per_shard``, or whatever the
adaptive controller currently allows).  Each shard simulator sees the
cluster through its own :class:`ShardSource` (a
:class:`repro.sim.source.QuerySource`):

* **scatter** — when the front door admits a query, the coordinator plans
  it through the :class:`ShardMap` into shard-local sub-queries and hands
  each owning shard its piece (timestamped with the admission time, so a
  shard stepping later on the shared clock starts it at the right moment);
* **gather** — a sub-query completion on any shard reports back through
  :meth:`ClusterCoordinator.complete_subquery`; the whole query completes
  when its *last* sub-query finishes, which is when its
  :class:`ClusterQueryRecord` is written and its completion is fed to the
  front door — releasing its MPL slot, updating the adaptive controller,
  and possibly admitting (and scattering) the next queued queries.

When the cluster configuration models the coordinator as a real resource
(:attr:`repro.common.config.ClusterConfig.models_coordinator`), a
:class:`repro.net.CoordinatorResources` bundle is threaded through both
halves: admissions charge classify + per-sub-query scatter CPU, every
scatter/gather message crosses the coordinator's NIC and the owning
shard's NIC, and a query only completes once the coordinator's CPU has
processed (and, for the last sub-query, merged) its gather message.
Admission-to-shard-start and last-subquery-to-completion therefore gain
modeled delay, and the coordinator can genuinely saturate.  With the
default free configuration no bundle exists and the legacy instant
scatter/gather path runs unchanged.

A 1-shard cluster degenerates to exactly the single-simulator open-system
service (:func:`repro.service.run_service`): every query has one sub-query
identical to itself, every completion releases the front door immediately,
and the pending buffers are always drained within the poll that filled
them.  ``tests/test_cluster_equivalence.py`` pins this bit for bit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.common.config import ClusterConfig, DEFAULT_QUERY_CLASS, SystemConfig
from repro.common.errors import SimulationError
from repro.cluster.shardmap import ShardMap
from repro.metrics.timeline import validate_timeline
from repro.net.resources import CoordinatorResources, CoordinatorSLO
from repro.obs.profile import SchedulerProfile
from repro.obs.recorder import (
    FlightRecorder,
    ObservabilityLike,
    build_flight_recorder,
)
from repro.service.admission import (
    AdmissionController,
    QueuedQuery,
    layout_aware_job_size,
)
from repro.service.arrivals import Arrival, offered_rate
from repro.service.frontdoor import FrontDoor, MPLController
from repro.service.slo import SLOReport, build_slo_report, merge_shard_slo_reports
from repro.sim.lockstep import LockstepRunner
from repro.sim.results import RunResult
from repro.sim.runner import AnyABM, ScanSimulator
from repro.sim.source import NO_STREAM, AdmittedQuery, QuerySource

_EPS = 1e-9


@dataclass
class ClusterQueryRecord:
    """Gathered outcome of one whole query served by the cluster."""

    query_id: int
    name: str
    #: When the query arrived at the cluster's front door.
    submit_time: float
    #: When the front queue admitted it (sub-queries scattered).
    admit_time: float
    #: When its last sub-query finished (the query's completion).
    finish_time: float
    #: Global chunks the query scanned, over all shards.
    num_chunks: int
    #: Shards the query's chunk set was scattered across.
    shards: Tuple[int, ...]
    #: Chunk loads attributed to the query, summed over its shards
    #: (filled in after the run from the per-shard results).
    loads_triggered: int = 0
    #: Workload class the front door routed the query to.
    query_class: str = DEFAULT_QUERY_CLASS

    @property
    def num_subqueries(self) -> int:
        """Number of per-shard sub-queries the query was split into."""
        return len(self.shards)

    @property
    def queue_wait(self) -> float:
        """Time spent waiting in the front admission queue."""
        return max(0.0, self.admit_time - self.submit_time)

    @property
    def execution_latency(self) -> float:
        """Admission-to-completion latency (slowest sub-query chain)."""
        return self.finish_time - self.admit_time

    @property
    def end_to_end_latency(self) -> float:
        """Submission-to-completion latency (queue wait plus execution)."""
        return self.finish_time - self.submit_time


@dataclass
class _OpenQuery:
    """Coordinator-side state of one admitted, not yet gathered query."""

    submit_time: float
    admit_time: float
    name: str
    query_class: str
    num_chunks: int
    shards: Tuple[int, ...]
    remaining: int


class ClusterCoordinator:
    """Scatter/gather bookkeeping around the shared front-door pipeline."""

    def __init__(
        self,
        arrivals: Sequence[Arrival],
        shard_map: ShardMap,
        admission: AdmissionController,
        mpl_controller: Optional[MPLController] = None,
        loads_probe: Optional[Callable[[int], int]] = None,
        obs: Optional[FlightRecorder] = None,
        resources: Optional[CoordinatorResources] = None,
    ) -> None:
        self.frontdoor = FrontDoor(
            arrivals,
            admission,
            mpl_controller=mpl_controller,
            loads_probe=loads_probe,
            where="cluster workload",
            obs=obs,
        )
        #: Optional flight recorder; scatter/gather events go to the
        #: front-door process's ``cluster`` track.
        self._obs = obs
        self._obs_pid = "frontdoor"
        #: Optional CPU/NIC cost bundle; ``None`` selects the legacy
        #: free-coordinator path (instant scatter and gather).
        self.resources = resources
        self.shard_map = shard_map
        #: Sub-queries scattered to each shard but not yet polled by it,
        #: as ``(release_time, admitted)`` in release order.
        self._pending: List[Deque[Tuple[float, AdmittedQuery]]] = [
            deque() for _ in range(shard_map.num_shards)
        ]
        self._open: Dict[int, _OpenQuery] = {}
        #: Gathered per-query outcomes, in completion order.
        self.records: List[ClusterQueryRecord] = []
        #: Sub-queries scattered to each shard over the run.
        self.subqueries_scattered: List[int] = [0] * shard_map.num_shards

    @property
    def admission(self) -> AdmissionController:
        """The front door's admission controller (counters, queues)."""
        return self.frontdoor.admission

    # ------------------------------------------------------------ front door
    def next_arrival_time(self) -> Optional[float]:
        """Time of the next unconsumed external arrival."""
        return self.frontdoor.next_arrival_time()

    def pump(self, now: float) -> None:
        """Run the front door up to ``now``, scattering what it admits.

        Admitted queries land in the owning shards' pending buffers
        (timestamped ``now``); queued and shed arrivals are tracked by the
        admission controller.  Idempotent within one instant: every shard's
        poll calls this, the first call does the work.
        """
        for entry in self.frontdoor.pump(now):
            self._scatter(entry, now)

    def drained(self) -> bool:
        """``True`` once no future query can be admitted (arrivals exhausted
        and the front queues empty)."""
        return self.frontdoor.drained()

    # --------------------------------------------------------------- scatter
    def _scatter(
        self,
        entry: QueuedQuery,
        now: float,
        direct_shard: Optional[int] = None,
    ) -> Optional[AdmittedQuery]:
        """Split one admitted query across its owning shards.

        Sub-queries are buffered for each shard's next poll, except the one
        addressed to ``direct_shard`` (the shard whose completion released
        this query), which is returned for immediate start — mirroring how
        the single-simulator service starts the released query in the same
        event.

        With a modeled coordinator there is no immediate start: every
        sub-query first pays classify + scatter CPU and then two NIC hops,
        landing in the owning shard's pending buffer stamped with its
        *delivery* time.
        """
        plan = self.shard_map.plan(entry.spec)
        if not plan:
            raise SimulationError(
                f"query {entry.spec.query_id} planned into zero sub-queries"
            )
        self._open[entry.spec.query_id] = _OpenQuery(
            submit_time=entry.submit_time,
            admit_time=now,
            name=entry.spec.name,
            query_class=entry.query_class,
            num_chunks=entry.spec.num_chunks,
            shards=tuple(plan),
            remaining=len(plan),
        )
        if self._obs is not None:
            self._obs.instant(
                "cluster.scatter",
                "cluster",
                now,
                self._obs_pid,
                "cluster",
                query=entry.spec.query_id,
                query_name=entry.spec.name,
                query_class=entry.query_class,
                chunks=entry.spec.num_chunks,
                shards=sorted(plan),
                subqueries=len(plan),
            )
            self._obs.set_gauge("cluster.open_queries", now, float(len(self._open)))
        if self.resources is not None:
            # Classify + build the scatter messages on the coordinator CPU,
            # then ship each sub-query over two NIC hops.  Per-shard
            # delivery times are monotone across queries (the coordinator
            # NIC serialises sends), so each pending deque stays sorted.
            ready = self.resources.admit(
                now, entry.spec.query_id, len(plan)
            )
            for shard, sub_spec in plan.items():
                admitted = AdmittedQuery(
                    spec=sub_spec,
                    stream=NO_STREAM,
                    submit_time=entry.submit_time,
                )
                self.subqueries_scattered[shard] += 1
                delivered = self.resources.deliver_scatter(
                    ready, shard, entry.spec.query_id
                )
                self._pending[shard].append((delivered, admitted))
            return None
        direct: Optional[AdmittedQuery] = None
        for shard, sub_spec in plan.items():
            admitted = AdmittedQuery(
                spec=sub_spec,
                stream=NO_STREAM,
                submit_time=entry.submit_time,
            )
            self.subqueries_scattered[shard] += 1
            if shard == direct_shard:
                direct = admitted
            else:
                self._pending[shard].append((now, admitted))
        return direct

    # ---------------------------------------------------------------- gather
    def complete_subquery(
        self, shard: int, query_id: int, now: float
    ) -> List[AdmittedQuery]:
        """Record one sub-query completion on ``shard``.

        When it was the query's last sub-query the whole query completes:
        its record is written and its completion is fed to the front door,
        which may admit the next queued queries — whose sub-queries for
        this same shard (if any) are returned for immediate start.

        With a modeled coordinator every completion message pays two NIC
        hops plus gather CPU, and the final one additionally pays the
        merge, so the query completes at the coordinator's processing time
        rather than the shard's event time (and nothing starts immediately
        — released queries travel back through the scatter path).
        """
        open_query = self._open.get(query_id)
        if open_query is None:
            raise SimulationError(
                f"sub-query completion for unknown query {query_id}"
            )
        if shard not in open_query.shards:
            raise SimulationError(
                f"query {query_id} completed on shard {shard} it never touched"
            )
        open_query.remaining -= 1
        completion = now
        if self.resources is not None:
            arrived = self.resources.deliver_gather(now, shard, query_id)
            completion = self.resources.process_gather(
                arrived, query_id, final=open_query.remaining == 0
            )
        if self._obs is not None:
            self._obs.instant(
                "cluster.subquery.complete",
                "cluster",
                now,
                self._obs_pid,
                "cluster",
                query=query_id,
                shard=shard,
                remaining=open_query.remaining,
            )
        if open_query.remaining > 0:
            return []
        del self._open[query_id]
        if self._obs is not None:
            self._obs.instant(
                "cluster.gather",
                "cluster",
                completion,
                self._obs_pid,
                "cluster",
                query=query_id,
                query_name=open_query.name,
                query_class=open_query.query_class,
                shards=list(open_query.shards),
                end_to_end_latency=completion - open_query.submit_time,
            )
            self._obs.set_gauge(
                "cluster.open_queries", completion, float(len(self._open))
            )
        self.records.append(
            ClusterQueryRecord(
                query_id=query_id,
                name=open_query.name,
                submit_time=open_query.submit_time,
                admit_time=open_query.admit_time,
                finish_time=completion,
                num_chunks=open_query.num_chunks,
                shards=open_query.shards,
                query_class=open_query.query_class,
            )
        )
        if completion > now:
            # Arrivals that landed while the gather was in flight must be
            # admitted before this query's MPL slot is released, so the
            # front door sees events in chronological order.
            self.pump(completion)
        started: List[AdmittedQuery] = []
        for entry in self.frontdoor.on_complete(query_id, completion):
            direct = self._scatter(entry, completion, direct_shard=shard)
            if direct is not None:
                started.append(direct)
        return started

    # ------------------------------------------------------------- per shard
    def take_pending(self, shard: int, now: float) -> List[AdmittedQuery]:
        """Sub-queries buffered for ``shard`` that are due by ``now``."""
        queue = self._pending[shard]
        due: List[AdmittedQuery] = []
        while queue and queue[0][0] <= now + _EPS:
            due.append(queue.popleft()[1])
        return due

    def pending_head_time(self, shard: int) -> Optional[float]:
        """Release time of the oldest buffered sub-query for ``shard``."""
        queue = self._pending[shard]
        if not queue:
            return None
        return queue[0][0]

    def has_pending(self, shard: int) -> bool:
        """Whether ``shard`` still has buffered sub-queries to start."""
        return bool(self._pending[shard])

    def earliest_in_flight(self) -> Optional[float]:
        """Delivery time of the earliest undelivered sub-query message.

        The :class:`repro.sim.lockstep.LockstepRunner` treats this as an
        event of the min-frontier step: no shard clock may pass it.
        """
        times = [queue[0][0] for queue in self._pending if queue]
        if not times:
            return None
        return min(times)

    def describe(self) -> Dict[str, object]:
        """Flat description of the cluster front door (for reports)."""
        return {
            "workload": "sharded-cluster",
            **self.shard_map.describe(),
            **self.frontdoor.describe(),
        }


class ShardSource(QuerySource):
    """One shard simulator's view of the cluster coordinator."""

    def __init__(self, coordinator: ClusterCoordinator, shard: int) -> None:
        self.coordinator = coordinator
        self.shard = shard

    # ------------------------------------------------------------- interface
    def next_event_time(self) -> Optional[float]:
        candidates: List[float] = []
        pending = self.coordinator.pending_head_time(self.shard)
        if pending is not None:
            candidates.append(pending)
        # Every shard wakes for external arrivals: whichever shard steps
        # first pumps the front queue, the others pick up their pieces.
        arrival = self.coordinator.next_arrival_time()
        if arrival is not None:
            candidates.append(arrival)
        if not candidates:
            return None
        return min(candidates)

    def poll(self, now: float) -> List[AdmittedQuery]:
        self.coordinator.pump(now)
        return self.coordinator.take_pending(self.shard, now)

    def on_complete(self, query_id: int, now: float) -> List[AdmittedQuery]:
        return self.coordinator.complete_subquery(self.shard, query_id, now)

    def drained(self) -> bool:
        return not self.coordinator.has_pending(self.shard) and (
            self.coordinator.drained()
        )

    def describe(self) -> Dict[str, object]:
        return {"shard": self.shard, **self.coordinator.describe()}


@dataclass
class ClusterResult:
    """Outcome of one arrival sequence served by the whole cluster."""

    policy: str
    cluster: ClusterConfig
    shard_map: ShardMap
    #: Raw per-shard simulation results (sub-query granularity).
    shard_runs: List[RunResult]
    #: Per-shard SLO views of the same runs (sub-query latencies).
    shard_reports: List[SLOReport]
    #: The gathered cluster-level SLO report (whole-query latencies,
    #: front-queue counters, per-class slices, utilisation over all
    #: shards' volumes).
    slo: SLOReport
    #: Gathered per-query outcomes, sorted by query id.
    records: List[ClusterQueryRecord] = field(default_factory=list)
    #: ``(time, mpl)`` trajectory of the enforced cluster MPL limit.
    mpl_timeline: Tuple[Tuple[float, int], ...] = ()
    #: The flight recorder shared by the front door and every shard
    #: (``None`` when observability was not requested).
    obs: Optional[FlightRecorder] = None
    #: Coordinator CPU/NIC accounting (``None`` unless the cluster
    #: configuration models the coordinator as a real resource).
    coordinator: Optional[CoordinatorSLO] = None
    #: Validated ``(time, utilisation)`` timelines of the coordinator CPU,
    #: coordinator NIC and each shard NIC (empty on the free path).
    coordinator_timelines: Dict[str, Tuple[Tuple[float, float], ...]] = field(
        default_factory=dict
    )

    @property
    def duration(self) -> float:
        """Cluster makespan: the slowest shard's total time, or the last
        gather-merge when the modeled coordinator finishes later."""
        latest = max((run.total_time for run in self.shard_runs), default=0.0)
        if self.records:
            latest = max(
                latest, max(record.finish_time for record in self.records)
            )
        return latest

    @property
    def final_mpl(self) -> int:
        """The MPL in force when the run ended."""
        return self.mpl_timeline[-1][1] if self.mpl_timeline else 0

    @property
    def scheduler_profile(self) -> Optional[SchedulerProfile]:
        """Per-phase scheduling cost merged over every shard's run."""
        profiles = [
            run.scheduler_profile
            for run in self.shard_runs
            if run.scheduler_profile is not None
        ]
        if not profiles:
            return None
        return SchedulerProfile.merge(profiles)


def run_cluster_service(
    arrivals: Sequence[Arrival],
    config: SystemConfig,
    shard_abms: Sequence[AnyABM],
    cluster: ClusterConfig,
    num_chunks: Optional[int] = None,
    record_trace: bool = False,
    mpl_controller: Optional[MPLController] = None,
    obs: ObservabilityLike = None,
) -> ClusterResult:
    """Serve one arrival sequence with a sharded scatter-gather cluster.

    ``shard_abms`` supplies one Active Buffer Manager per shard, each
    modelling that shard's local table (``ShardMap.chunks_owned(shard)``
    chunks); ``config`` describes each shard's machine (disk volumes, CPU,
    buffer).  ``num_chunks`` is the global table size; by default it is the
    sum of the shard tables, which is exact for both placements.  The front
    door (workload classes, job sizing, adaptive MPL) is configured exactly
    like :func:`repro.service.run_service` configures its own.

    ``obs`` threads one shared flight recorder through the front door (the
    ``"frontdoor"`` process), the coordinator's scatter/gather track and
    every shard simulator (processes ``"shard0"``, ``"shard1"``, ...); the
    recorder comes back on :attr:`ClusterResult.obs`.
    """
    recorder = build_flight_recorder(obs)
    abms = list(shard_abms)
    if num_chunks is None:
        num_chunks = sum(abm.num_chunks for abm in abms)
    shard_map = ShardMap.from_cluster_config(cluster, num_chunks)
    shard_map.validate_shard_tables(tuple(abm.num_chunks for abm in abms))
    admission = AdmissionController(
        cluster.front_service(),
        job_size=layout_aware_job_size(
            getattr(abms[0], "layout", None) if abms else None
        ),
    )
    resources: Optional[CoordinatorResources] = None
    if cluster.models_coordinator:
        resources = CoordinatorResources(
            cluster.coordinator, cluster.network, shard_map.num_shards
        )
        if recorder is not None:
            resources.attach_observability(recorder)
    coordinator = ClusterCoordinator(
        arrivals,
        shard_map,
        admission,
        mpl_controller=mpl_controller,
        loads_probe=lambda query_id: sum(
            abm.loads_triggered.get(query_id, 0) for abm in abms
        ),
        obs=recorder,
        resources=resources,
    )
    simulators = [
        ScanSimulator(
            ShardSource(coordinator, shard), config, abm, record_trace=record_trace
        )
        for shard, abm in enumerate(abms)
    ]
    shard_runs = LockstepRunner(
        simulators, obs=recorder, message_source=coordinator
    ).run()

    records = sorted(coordinator.records, key=lambda record: record.query_id)
    loads: Dict[int, int] = {}
    for run in shard_runs:
        for query in run.queries:
            loads[query.query_id] = (
                loads.get(query.query_id, 0) + query.loads_triggered
            )
    for record in records:
        record.loads_triggered = loads.get(record.query_id, 0)

    rate = offered_rate(arrivals)
    shard_reports = [
        build_slo_report(
            run,
            offered=coordinator.subqueries_scattered[shard],
            shed=0,
            max_queue_len=0,
            offered_rate_qps=rate,
        )
        for shard, run in enumerate(shard_runs)
    ]
    coordinator_slo: Optional[CoordinatorSLO] = None
    coordinator_duration: Optional[float] = None
    coordinator_timelines: Dict[str, Tuple[Tuple[float, float], ...]] = {}
    if resources is not None:
        coordinator_duration = max(
            [run.total_time for run in shard_runs]
            + [record.finish_time for record in records],
            default=0.0,
        )
        coordinator_slo = resources.report(coordinator_duration)
        coordinator_timelines = resources.timelines()
    slo = merge_shard_slo_reports(
        shard_reports,
        end_to_end=[record.end_to_end_latency for record in records],
        queue_waits=[record.queue_wait for record in records],
        executions=[record.execution_latency for record in records],
        offered=admission.offered,
        admitted=admission.admitted,
        completed=len(records),
        shed=admission.shed_count,
        max_queue_len=admission.max_queue_len,
        offered_rate_qps=rate,
        classes=coordinator.frontdoor.class_reports(),
        coordinator=coordinator_slo,
        duration=coordinator_duration,
    )
    mpl_timeline = tuple(coordinator.frontdoor.mpl_timeline)
    validate_timeline(mpl_timeline, where="cluster MPL timeline")
    return ClusterResult(
        policy=slo.policy,
        cluster=cluster,
        shard_map=shard_map,
        shard_runs=shard_runs,
        shard_reports=shard_reports,
        slo=slo,
        records=records,
        mpl_timeline=mpl_timeline,
        obs=recorder,
        coordinator=coordinator_slo,
        coordinator_timelines=coordinator_timelines,
    )


def compare_cluster_policies(
    arrivals: Sequence[Arrival],
    config: SystemConfig,
    shard_abms_for_policy,
    cluster: ClusterConfig,
    policies: Sequence[str] = ("normal", "attach", "elevator", "relevance"),
) -> Dict[str, ClusterResult]:
    """Serve the identical arrival sequence under each scheduling policy.

    ``shard_abms_for_policy(policy)`` must return a fresh sequence of
    per-shard ABMs; the cluster analogue of
    :func:`repro.service.compare_service_policies`.
    """
    results: Dict[str, ClusterResult] = {}
    for policy in policies:
        results[policy] = run_cluster_service(
            arrivals, config, shard_abms_for_policy(policy), cluster
        )
    return results
