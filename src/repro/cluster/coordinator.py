"""The scatter-gather coordinator of the sharded cluster.

One :class:`ClusterCoordinator` owns the cluster's front door — the same
:class:`repro.service.frontdoor.FrontDoor` pipeline the single-simulator
service runs (arrivals -> classification -> per-class admission ->
completion/release), capping the number of concurrently executing *whole*
queries at the cluster MPL (``shards * mpl_per_shard``, or whatever the
adaptive controller currently allows).  Each shard simulator sees the
cluster through its own :class:`ShardSource` (a
:class:`repro.sim.source.QuerySource`):

* **scatter** — when the front door admits a query, the coordinator plans
  it through the :class:`ShardMap` into shard-local sub-queries and hands
  each owning shard its piece (timestamped with the admission time, so a
  shard stepping later on the shared clock starts it at the right moment);
* **gather** — a sub-query completion on any shard reports back through
  :meth:`ClusterCoordinator.complete_subquery`; the whole query completes
  when its *last* sub-query finishes, which is when its
  :class:`ClusterQueryRecord` is written and its completion is fed to the
  front door — releasing its MPL slot, updating the adaptive controller,
  and possibly admitting (and scattering) the next queued queries.

When the cluster configuration models the coordinator as a real resource
(:attr:`repro.common.config.ClusterConfig.models_coordinator`), a
:class:`repro.net.CoordinatorResources` bundle is threaded through both
halves: admissions charge classify + per-sub-query scatter CPU, every
scatter/gather message crosses the coordinator's NIC and the owning
shard's NIC, and a query only completes once the coordinator's CPU has
processed (and, for the last sub-query, merged) its gather message.
Admission-to-shard-start and last-subquery-to-completion therefore gain
modeled delay, and the coordinator can genuinely saturate.  With the
default free configuration no bundle exists and the legacy instant
scatter/gather path runs unchanged.

A 1-shard cluster degenerates to exactly the single-simulator open-system
service (:func:`repro.service.run_service`): every query has one sub-query
identical to itself, every completion releases the front door immediately,
and the pending buffers are always drained within the poll that filled
them.  ``tests/test_cluster_equivalence.py`` pins this bit for bit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.config import (
    ClusterConfig,
    DEFAULT_QUERY_CLASS,
    HedgeConfig,
    SystemConfig,
)
from repro.common.errors import SimulationError
from repro.cluster.shardmap import ShardMap
from repro.core.cscan import ScanRequest
from repro.metrics.stats import LatencySummary, percentile
from repro.metrics.timeline import validate_timeline
from repro.net.resources import CoordinatorResources, CoordinatorSLO
from repro.obs.alerts import (
    Alert,
    AlertPolicy,
    QueryCompletion,
    evaluate_alerts,
    render_health_digest,
)
from repro.obs.postmortem import (
    LatencyBreakdown,
    assemble_cluster_breakdown,
    build_blame_report,
)
from repro.obs.profile import SchedulerProfile
from repro.obs.recorder import (
    FlightRecorder,
    ObservabilityLike,
    build_flight_recorder,
)
from repro.service.admission import (
    AdmissionController,
    QueuedQuery,
    layout_aware_job_size,
)
from repro.service.arrivals import Arrival, offered_rate
from repro.service.frontdoor import FrontDoor, MPLController
from repro.service.slo import (
    AvailabilitySLO,
    SLOReport,
    build_slo_report,
    merge_shard_slo_reports,
)
from repro.sim.lockstep import LockstepRunner
from repro.sim.results import RunResult
from repro.sim.runner import AnyABM, ScanSimulator
from repro.sim.source import NO_STREAM, AdmittedQuery, QuerySource

_EPS = 1e-9


@dataclass
class ClusterQueryRecord:
    """Gathered outcome of one whole query served by the cluster."""

    query_id: int
    name: str
    #: When the query arrived at the cluster's front door.
    submit_time: float
    #: When the front queue admitted it (sub-queries scattered).
    admit_time: float
    #: When its last sub-query finished (the query's completion).
    finish_time: float
    #: Global chunks the query scanned, over all shards.
    num_chunks: int
    #: Shards the query's chunk set was scattered across.
    shards: Tuple[int, ...]
    #: Chunk loads attributed to the query, summed over its shards
    #: (filled in after the run from the per-shard results).
    loads_triggered: int = 0
    #: Workload class the front door routed the query to.
    query_class: str = DEFAULT_QUERY_CLASS
    #: Critical-path stamps: the last-completing sub-query (the one whose
    #: finish completed the whole query) defines the chain the end-to-end
    #: latency is attributed along.  ``critical_shard < 0`` means the
    #: stamps were not recorded (hand-built records).
    critical_shard: int = -1
    #: Shard-side id of the critical sub-query (the whole query id on the
    #: legacy path, a synthesized id in resilient mode).
    critical_sub_id: Optional[int] = None
    #: When the coordinator CPU finished classify+scatter for this query.
    ready_time: float = 0.0
    #: When the critical sub-query was dispatched (equals ``ready_time``
    #: for originals; later for re-scatters, orphans and hedges).
    dispatch_time: float = 0.0
    #: When the critical sub-query's scatter message reached its shard.
    delivered_time: float = 0.0
    #: When the critical sub-query finished on its shard.
    shard_finish_time: float = 0.0
    #: When its gather message reached the coordinator.
    gather_arrived_time: float = 0.0
    #: How the critical sub-query came to be dispatched: ``"original"``,
    #: ``"rescatter"``, ``"orphan"`` or ``"hedge"``.
    critical_origin: str = "original"
    #: Always-on end-to-end latency attribution along the critical path
    #: (assembled after the run; ``None`` for hand-built records).
    breakdown: Optional[LatencyBreakdown] = None

    @property
    def num_subqueries(self) -> int:
        """Number of per-shard sub-queries the query was split into."""
        return len(self.shards)

    @property
    def queue_wait(self) -> float:
        """Time spent waiting in the front admission queue."""
        return max(0.0, self.admit_time - self.submit_time)

    @property
    def execution_latency(self) -> float:
        """Admission-to-completion latency (slowest sub-query chain)."""
        return self.finish_time - self.admit_time

    @property
    def end_to_end_latency(self) -> float:
        """Submission-to-completion latency (queue wait plus execution)."""
        return self.finish_time - self.submit_time


@dataclass
class _OpenQuery:
    """Coordinator-side state of one admitted, not yet gathered query."""

    submit_time: float
    admit_time: float
    name: str
    query_class: str
    num_chunks: int
    shards: Tuple[int, ...]
    remaining: int
    #: The original global scan (resilient mode keeps it so re-scatters and
    #: hedges can materialise fresh sub-queries; the legacy path never
    #: needs it).
    spec: Optional[ScanRequest] = None
    #: When the coordinator CPU finished classify+scatter (``admit_time``
    #: on the free path).
    ready: float = 0.0
    #: Legacy-path per-shard scatter delivery times (resilient mode stamps
    #: each :class:`_SubQuery` instead).
    delivered: Dict[int, float] = field(default_factory=dict)


#: Synthesized sub-query ids start far above any front-door query id, so a
#: sub-query's id never collides with a whole query's (or another sub's —
#: re-scatters and hedges each get a fresh id, even on the same shard).
_SUB_ID_BASE = 1_000_000_000


@dataclass
class _SubQuery:
    """One dispatched copy of a chunk group (resilient mode only)."""

    sub_id: int
    query_id: int
    #: Primary shard of the chunk group (the group's identity).
    primary: int
    #: The group's *global* chunk ids (re-scatters re-translate them).
    global_chunks: Tuple[int, ...]
    #: Replica shard this copy was dispatched to.
    shard: int
    #: When this copy was scattered (hedging measures age from here).
    scatter_time: float
    submit_time: float
    #: ``sub_id`` of the copy this one hedges, or ``None`` for originals.
    hedge_of: Optional[int] = None
    #: When this copy's scatter message reached its shard.
    delivered: float = 0.0
    #: Why this copy was dispatched: ``"original"`` (first scatter),
    #: ``"rescatter"`` (its predecessor's shard was killed), ``"orphan"``
    #: (parked until a repair) or ``"hedge"`` (straggler duplicate).
    origin: str = "original"


class ClusterCoordinator:
    """Scatter/gather bookkeeping around the shared front-door pipeline."""

    def __init__(
        self,
        arrivals: Sequence[Arrival],
        shard_map: ShardMap,
        admission: AdmissionController,
        mpl_controller: Optional[MPLController] = None,
        loads_probe: Optional[Callable[[int], int]] = None,
        obs: Optional[FlightRecorder] = None,
        resources: Optional[CoordinatorResources] = None,
        resilient: bool = False,
        hedge: Optional[HedgeConfig] = None,
        degrade_factor: float = 0.5,
    ) -> None:
        self.frontdoor = FrontDoor(
            arrivals,
            admission,
            mpl_controller=mpl_controller,
            loads_probe=loads_probe,
            where="cluster workload",
            obs=obs,
        )
        #: Optional flight recorder; scatter/gather events go to the
        #: front-door process's ``cluster`` track.
        self._obs = obs
        self._obs_pid = "frontdoor"
        #: Optional CPU/NIC cost bundle; ``None`` selects the legacy
        #: free-coordinator path (instant scatter and gather).
        self.resources = resources
        self.shard_map = shard_map
        #: Sub-queries scattered to each shard but not yet polled by it,
        #: as ``(release_time, admitted)`` in release order.
        self._pending: List[Deque[Tuple[float, AdmittedQuery]]] = [
            deque() for _ in range(shard_map.num_shards)
        ]
        self._open: Dict[int, _OpenQuery] = {}
        #: Gathered per-query outcomes, in completion order.
        self.records: List[ClusterQueryRecord] = []
        #: Sub-queries scattered to each shard over the run.
        self.subqueries_scattered: List[int] = [0] * shard_map.num_shards
        #: Replica-flexible routing with failure tolerance.  ``False``
        #: selects the legacy primary-only path, byte for byte.
        self.resilient = resilient
        #: Hedged-request policy (``None`` disables hedging).
        self.hedge_config = hedge
        #: Disk bandwidth multiplier applied to degraded shards.
        self.degrade_factor = degrade_factor
        num_shards = shard_map.num_shards
        #: Per-shard liveness / degradation flags (resilient mode).
        self._live: List[bool] = [True] * num_shards
        self._degraded: List[bool] = [False] * num_shards
        #: Sub-queries currently dispatched to each shard (pending or
        #: running) — the load signal for least-loaded replica routing.
        self._outstanding: List[int] = [0] * num_shards
        #: Live dispatched copies by sub-query id, in dispatch order.
        self._subs: Dict[int, _SubQuery] = {}
        #: ``(query_id, primary) -> [sub_id, ...]`` — the racing copies of
        #: each chunk group (one normally, two while a hedge races).
        self._groups: Dict[Tuple[int, int], List[int]] = {}
        #: Every sub-query id ever dispatched for a query (append-only;
        #: loads attribution sums the shards' per-sub counters over these).
        self._sub_ids_by_query: Dict[int, List[int]] = {}
        #: Chunk groups with no live replica, waiting for a repair.
        self._orphans: List[Tuple[int, int, Tuple[int, ...]]] = []
        #: Completed sub-query latencies (hedge threshold sample).
        self._sub_latencies: List[float] = []
        self._hedge_cache: Tuple[int, float] = (-1, 0.0)
        #: Latest simulated time the coordinator has witnessed.
        self._clock = 0.0
        #: The shard simulators (resilient mode cancels failed or hedged-out
        #: sub-queries directly on them); set via :meth:`attach_shards`.
        self._simulators: Optional[List[ScanSimulator]] = None
        self._next_sub_id = _SUB_ID_BASE
        #: Availability counters and per-shard ``(time, state)`` timelines.
        self.kills = 0
        self.degrades = 0
        self.repairs = 0
        self.hedges_fired = 0
        self.hedges_won = 0
        self.hedges_cancelled = 0
        self.rescatters = 0
        self.orphaned = 0
        self.shard_timelines: List[List[Tuple[float, str]]] = [
            [(0.0, "up")] for _ in range(num_shards)
        ]
        #: Whole queries whose latency a failure, hedge or degraded shard
        #: may have touched (for failure-attributed latency reporting).
        self._affected: Set[int] = set()

    @property
    def admission(self) -> AdmissionController:
        """The front door's admission controller (counters, queues)."""
        return self.frontdoor.admission

    # ------------------------------------------------------------ front door
    def next_arrival_time(self) -> Optional[float]:
        """Time of the next unconsumed external arrival."""
        return self.frontdoor.next_arrival_time()

    def pump(self, now: float) -> None:
        """Run the front door up to ``now``, scattering what it admits.

        Admitted queries land in the owning shards' pending buffers
        (timestamped ``now``); queued and shed arrivals are tracked by the
        admission controller.  Idempotent within one instant: every shard's
        poll calls this, the first call does the work.
        """
        for entry in self.frontdoor.pump(now):
            self._scatter(entry, now)

    def drained(self) -> bool:
        """``True`` once no future query can be admitted (arrivals exhausted
        and the front queues empty).  Resilient mode also holds the cluster
        open while orphaned chunk groups wait for a repair — the work still
        exists even though no shard can run it yet."""
        if self.resilient and self._orphans:
            return False
        return self.frontdoor.drained()

    # --------------------------------------------------------------- scatter
    def _scatter(
        self,
        entry: QueuedQuery,
        now: float,
        direct_shard: Optional[int] = None,
    ) -> Optional[AdmittedQuery]:
        """Split one admitted query across its owning shards.

        Sub-queries are buffered for each shard's next poll, except the one
        addressed to ``direct_shard`` (the shard whose completion released
        this query), which is returned for immediate start — mirroring how
        the single-simulator service starts the released query in the same
        event.

        With a modeled coordinator there is no immediate start: every
        sub-query first pays classify + scatter CPU and then two NIC hops,
        landing in the owning shard's pending buffer stamped with its
        *delivery* time.

        In resilient mode the plan is replica-flexible instead: each chunk
        group may run on any live replica, and nothing starts immediately
        (``direct_shard`` is ignored — the releasing shard picks its new
        sub-query out of the pending buffer within the same poll).
        """
        if self.resilient:
            self._scatter_resilient(entry, now)
            return None
        plan = self.shard_map.plan(entry.spec)
        if not plan:
            raise SimulationError(
                f"query {entry.spec.query_id} planned into zero sub-queries"
            )
        open_query = _OpenQuery(
            submit_time=entry.submit_time,
            admit_time=now,
            name=entry.spec.name,
            query_class=entry.query_class,
            num_chunks=entry.spec.num_chunks,
            shards=tuple(plan),
            remaining=len(plan),
            ready=now,
        )
        self._open[entry.spec.query_id] = open_query
        if self._obs is not None:
            self._obs.instant(
                "cluster.scatter",
                "cluster",
                now,
                self._obs_pid,
                "cluster",
                query=entry.spec.query_id,
                query_name=entry.spec.name,
                query_class=entry.query_class,
                chunks=entry.spec.num_chunks,
                shards=sorted(plan),
                subqueries=len(plan),
            )
            self._obs.set_gauge("cluster.open_queries", now, float(len(self._open)))
        if self.resources is not None:
            # Classify + build the scatter messages on the coordinator CPU,
            # then ship each sub-query over two NIC hops.  Per-shard
            # delivery times are monotone across queries (the coordinator
            # NIC serialises sends), so each pending deque stays sorted.
            ready = self.resources.admit(
                now, entry.spec.query_id, len(plan)
            )
            open_query.ready = ready
            for shard, sub_spec in plan.items():
                admitted = AdmittedQuery(
                    spec=sub_spec,
                    stream=NO_STREAM,
                    submit_time=entry.submit_time,
                )
                self.subqueries_scattered[shard] += 1
                delivered = self.resources.deliver_scatter(
                    ready, shard, entry.spec.query_id
                )
                open_query.delivered[shard] = delivered
                self._pending[shard].append((delivered, admitted))
            return None
        direct: Optional[AdmittedQuery] = None
        for shard, sub_spec in plan.items():
            admitted = AdmittedQuery(
                spec=sub_spec,
                stream=NO_STREAM,
                submit_time=entry.submit_time,
            )
            self.subqueries_scattered[shard] += 1
            open_query.delivered[shard] = now
            if shard == direct_shard:
                direct = admitted
            else:
                self._pending[shard].append((now, admitted))
        return direct

    # ------------------------------------------------- resilient scatter path
    def _scatter_resilient(self, entry: QueuedQuery, now: float) -> None:
        """Plan one admitted query into replica-routable chunk groups."""
        groups = self.shard_map.plan_groups(entry.spec)
        if not groups:
            raise SimulationError(
                f"query {entry.spec.query_id} planned into zero sub-queries"
            )
        query_id = entry.spec.query_id
        self._clock = max(self._clock, now)
        primaries = tuple(sorted(groups))
        self._open[query_id] = _OpenQuery(
            submit_time=entry.submit_time,
            admit_time=now,
            name=entry.spec.name,
            query_class=entry.query_class,
            num_chunks=entry.spec.num_chunks,
            shards=primaries,
            remaining=len(groups),
            spec=entry.spec,
        )
        if self._obs is not None:
            self._obs.instant(
                "cluster.scatter",
                "cluster",
                now,
                self._obs_pid,
                "cluster",
                query=query_id,
                query_name=entry.spec.name,
                query_class=entry.query_class,
                chunks=entry.spec.num_chunks,
                shards=list(primaries),
                subqueries=len(groups),
            )
            self._obs.set_gauge("cluster.open_queries", now, float(len(self._open)))
        ready = now
        if self.resources is not None:
            ready = self.resources.admit(now, query_id, len(groups))
        self._open[query_id].ready = ready
        for primary in primaries:
            self._dispatch_group(query_id, primary, groups[primary], ready)

    def _pick_replica(
        self, primary: int, exclude: Tuple[int, ...] = ()
    ) -> Optional[int]:
        """Least-loaded live replica of a primary's chunk range.

        Ties break towards the front of the chained-declustering ring (the
        primary itself first), keeping routing deterministic.  ``None``
        when every replica is dead or excluded.
        """
        best: Optional[int] = None
        best_key: Optional[Tuple[int, int]] = None
        for order, shard in enumerate(self.shard_map.replica_shards(primary)):
            if shard in exclude or not self._live[shard]:
                continue
            key = (self._outstanding[shard], order)
            if best_key is None or key < best_key:
                best_key = key
                best = shard
        return best

    def _dispatch_group(
        self,
        query_id: int,
        primary: int,
        global_chunks: Sequence[int],
        now: float,
        exclude: Tuple[int, ...] = (),
        hedge_of: Optional[int] = None,
        origin: str = "original",
    ) -> Optional[int]:
        """Materialise one chunk group on the best live replica.

        Returns the chosen shard, or ``None`` when no replica is live (the
        group is parked as an orphan until a repair).  ``exclude`` keeps a
        hedge off the shard already running the original.  ``origin``
        labels why this copy exists, so the postmortem breakdown can
        bucket its pre-dispatch wait (re-scatter / orphan / hedge
        penalty vs plain coordinator work).
        """
        target = self._pick_replica(primary, exclude)
        if target is None:
            self._orphans.append((query_id, primary, tuple(global_chunks)))
            self.orphaned += 1
            self._affected.add(query_id)
            if self._obs is not None:
                self._obs.instant(
                    "cluster.orphan",
                    "cluster",
                    now,
                    self._obs_pid,
                    "cluster",
                    query=query_id,
                    primary=primary,
                )
            return None
        open_query = self._open[query_id]
        sub_id = self._next_sub_id
        self._next_sub_id += 1
        assert open_query.spec is not None
        sub_spec = self.shard_map.sub_request(
            open_query.spec, global_chunks, target, sub_id
        )
        sub = _SubQuery(
            sub_id=sub_id,
            query_id=query_id,
            primary=primary,
            global_chunks=tuple(global_chunks),
            shard=target,
            scatter_time=now,
            submit_time=open_query.submit_time,
            hedge_of=hedge_of,
            origin=origin,
        )
        self._subs[sub_id] = sub
        self._groups.setdefault((query_id, primary), []).append(sub_id)
        self._sub_ids_by_query.setdefault(query_id, []).append(sub_id)
        self._outstanding[target] += 1
        self.subqueries_scattered[target] += 1
        delivered = now
        if self.resources is not None:
            delivered = self.resources.deliver_scatter(now, target, query_id)
        sub.delivered = delivered
        self._pending[target].append(
            (
                delivered,
                AdmittedQuery(
                    spec=sub_spec,
                    stream=NO_STREAM,
                    submit_time=open_query.submit_time,
                ),
            )
        )
        if self._degraded[target]:
            self._affected.add(query_id)
        return target

    # ---------------------------------------------------------------- gather
    def complete_subquery(
        self, shard: int, query_id: int, now: float
    ) -> List[AdmittedQuery]:
        """Record one sub-query completion on ``shard``.

        When it was the query's last sub-query the whole query completes:
        its record is written and its completion is fed to the front door,
        which may admit the next queued queries — whose sub-queries for
        this same shard (if any) are returned for immediate start.

        With a modeled coordinator every completion message pays two NIC
        hops plus gather CPU, and the final one additionally pays the
        merge, so the query completes at the coordinator's processing time
        rather than the shard's event time (and nothing starts immediately
        — released queries travel back through the scatter path).

        In resilient mode ``query_id`` is a synthesized sub-query id; the
        first copy of a chunk group to finish wins and any racing hedge is
        cancelled (its MPL, pending-buffer and accounting state unwound).
        """
        if self.resilient:
            return self._complete_sub_resilient(shard, query_id, now)
        open_query = self._open.get(query_id)
        if open_query is None:
            raise SimulationError(
                f"sub-query completion for unknown query {query_id}"
            )
        if shard not in open_query.shards:
            raise SimulationError(
                f"query {query_id} completed on shard {shard} it never touched"
            )
        open_query.remaining -= 1
        completion = now
        arrived = now
        if self.resources is not None:
            arrived = self.resources.deliver_gather(now, shard, query_id)
            completion = self.resources.process_gather(
                arrived, query_id, final=open_query.remaining == 0
            )
        if self._obs is not None:
            self._obs.instant(
                "cluster.subquery.complete",
                "cluster",
                now,
                self._obs_pid,
                "cluster",
                query=query_id,
                shard=shard,
                remaining=open_query.remaining,
            )
        if open_query.remaining > 0:
            return []
        del self._open[query_id]
        if self._obs is not None:
            self._obs.instant(
                "cluster.gather",
                "cluster",
                completion,
                self._obs_pid,
                "cluster",
                query=query_id,
                query_name=open_query.name,
                query_class=open_query.query_class,
                shards=list(open_query.shards),
                end_to_end_latency=completion - open_query.submit_time,
            )
            self._obs.set_gauge(
                "cluster.open_queries", completion, float(len(self._open))
            )
        self.records.append(
            ClusterQueryRecord(
                query_id=query_id,
                name=open_query.name,
                submit_time=open_query.submit_time,
                admit_time=open_query.admit_time,
                finish_time=completion,
                num_chunks=open_query.num_chunks,
                shards=open_query.shards,
                query_class=open_query.query_class,
                # The last sub-query to finish IS the critical path; on the
                # legacy path its shard-side id is the whole query id and
                # originals dispatch the moment the coordinator is ready.
                critical_shard=shard,
                critical_sub_id=query_id,
                ready_time=open_query.ready,
                dispatch_time=open_query.ready,
                delivered_time=open_query.delivered.get(shard, open_query.ready),
                shard_finish_time=now,
                gather_arrived_time=arrived,
            )
        )
        if completion > now:
            # Arrivals that landed while the gather was in flight must be
            # admitted before this query's MPL slot is released, so the
            # front door sees events in chronological order.
            self.pump(completion)
        started: List[AdmittedQuery] = []
        for entry in self.frontdoor.on_complete(query_id, completion):
            direct = self._scatter(entry, completion, direct_shard=shard)
            if direct is not None:
                started.append(direct)
        return started

    def _complete_sub_resilient(
        self, shard: int, sub_id: int, now: float
    ) -> List[AdmittedQuery]:
        """Resilient-mode gather: first copy of a group to finish wins."""
        self._clock = max(self._clock, now)
        sub = self._subs.get(sub_id)
        if sub is None:
            raise SimulationError(
                f"sub-query completion for unknown sub-query {sub_id}"
            )
        if sub.shard != shard:
            raise SimulationError(
                f"sub-query {sub_id} completed on shard {shard} but was "
                f"dispatched to shard {sub.shard}"
            )
        del self._subs[sub_id]
        self._outstanding[shard] -= 1
        self._sub_latencies.append(now - sub.scatter_time)
        query_id = sub.query_id
        losers = [
            other
            for other in self._groups.pop((query_id, sub.primary), [])
            if other != sub_id
        ]
        for loser in losers:
            self._cancel_sub(loser, now)
        if losers:
            self.hedges_cancelled += len(losers)
            if sub.hedge_of is not None:
                self.hedges_won += 1
        open_query = self._open.get(query_id)
        if open_query is None:
            raise SimulationError(
                f"sub-query {sub_id} gathered for unknown query {query_id}"
            )
        open_query.remaining -= 1
        completion = now
        arrived = now
        if self.resources is not None:
            arrived = self.resources.deliver_gather(now, shard, query_id)
            completion = self.resources.process_gather(
                arrived, query_id, final=open_query.remaining == 0
            )
        if self._obs is not None:
            self._obs.instant(
                "cluster.subquery.complete",
                "cluster",
                now,
                self._obs_pid,
                "cluster",
                query=query_id,
                sub=sub_id,
                shard=shard,
                hedged=sub.hedge_of is not None,
                remaining=open_query.remaining,
            )
        if open_query.remaining > 0:
            return []
        del self._open[query_id]
        if self._obs is not None:
            self._obs.instant(
                "cluster.gather",
                "cluster",
                completion,
                self._obs_pid,
                "cluster",
                query=query_id,
                query_name=open_query.name,
                query_class=open_query.query_class,
                shards=list(open_query.shards),
                end_to_end_latency=completion - open_query.submit_time,
            )
            self._obs.set_gauge(
                "cluster.open_queries", completion, float(len(self._open))
            )
        self.records.append(
            ClusterQueryRecord(
                query_id=query_id,
                name=open_query.name,
                submit_time=open_query.submit_time,
                admit_time=open_query.admit_time,
                finish_time=completion,
                num_chunks=open_query.num_chunks,
                shards=open_query.shards,
                query_class=open_query.query_class,
                # The winning copy of the last chunk group to gather — a
                # hedge winner or re-scattered copy carries its origin so
                # the pre-dispatch wait lands in the right penalty bucket.
                critical_shard=shard,
                critical_sub_id=sub_id,
                ready_time=open_query.ready,
                dispatch_time=sub.scatter_time,
                delivered_time=sub.delivered,
                shard_finish_time=now,
                gather_arrived_time=arrived,
                critical_origin=sub.origin,
            )
        )
        if completion > now:
            self.pump(completion)
        for entry in self.frontdoor.on_complete(query_id, completion):
            self._scatter(entry, completion)
        return []

    def _cancel_sub(self, sub_id: int, now: float) -> _SubQuery:
        """Withdraw one dispatched copy without completing it.

        A copy still sitting in its shard's pending buffer is simply
        removed; one the shard already started is cancelled inside the
        simulator (unpinning its chunk and freeing its slot).  Either way
        its outstanding count is unwound, so routing and MPL accounting
        never leak cancelled work.
        """
        sub = self._subs.pop(sub_id)
        self._outstanding[sub.shard] -= 1
        queue = self._pending[sub.shard]
        for index, (_, admitted) in enumerate(queue):
            if admitted.spec.query_id == sub_id:
                del queue[index]
                return sub
        self._require_simulators()[sub.shard].cancel_query(sub_id, now)
        return sub

    # ------------------------------------------------------- failure control
    def attach_shards(self, simulators: Sequence[ScanSimulator]) -> None:
        """Give resilient mode direct access to the shard simulators."""
        self._simulators = list(simulators)

    def _require_simulators(self) -> List[ScanSimulator]:
        if self._simulators is None:
            raise SimulationError(
                "resilient coordinator was not attached to its shard "
                "simulators; call attach_shards() before running"
            )
        return self._simulators

    def kill_shard(self, shard: int, now: float) -> None:
        """Fail-stop one shard: cancel its work, re-scatter every group.

        Undelivered scatters for the shard are dropped (the message has no
        destination any more), in-flight sub-queries are cancelled inside
        the simulator, and each orphaned chunk group is immediately
        re-dispatched to its least-loaded surviving replica — or parked
        until a repair when none is live.
        """
        if not self._live[shard]:
            raise SimulationError(f"shard {shard} is already down")
        self._clock = max(self._clock, now)
        self._live[shard] = False
        self._degraded[shard] = False
        self.kills += 1
        self.shard_timelines[shard].append((now, "down"))
        if self._obs is not None:
            self._obs.instant(
                "cluster.shard.kill",
                "cluster",
                now,
                self._obs_pid,
                "cluster",
                shard=shard,
            )
            self._obs.set_gauge(
                "cluster.live_shards", now, float(sum(self._live))
            )
        pending_ids = {
            admitted.spec.query_id for _, admitted in self._pending[shard]
        }
        self._pending[shard].clear()
        victims = [sub for sub in self._subs.values() if sub.shard == shard]
        simulators = self._require_simulators()
        for sub in victims:
            del self._subs[sub.sub_id]
            self._outstanding[shard] -= 1
            if sub.sub_id not in pending_ids:
                simulators[shard].cancel_query(sub.sub_id, now)
            group = self._groups[(sub.query_id, sub.primary)]
            group.remove(sub.sub_id)
            self._affected.add(sub.query_id)
            if group:
                continue  # A hedge copy elsewhere still covers the group.
            del self._groups[(sub.query_id, sub.primary)]
            target = self._dispatch_group(
                sub.query_id, sub.primary, sub.global_chunks, now,
                origin="rescatter",
            )
            if target is not None:
                self.rescatters += 1
                if self._obs is not None:
                    self._obs.instant(
                        "cluster.rescatter",
                        "cluster",
                        now,
                        self._obs_pid,
                        "cluster",
                        query=sub.query_id,
                        primary=sub.primary,
                        from_shard=shard,
                        to_shard=target,
                    )

    def degrade_shard(
        self, shard: int, now: float, factor: Optional[float] = None
    ) -> None:
        """Halve (by default) one live shard's disk bandwidth in place."""
        if not self._live[shard] or self._degraded[shard]:
            raise SimulationError(
                f"cannot degrade shard {shard}: it is not up"
            )
        self._clock = max(self._clock, now)
        self._degraded[shard] = True
        self.degrades += 1
        self.shard_timelines[shard].append((now, "degraded"))
        scale = self.degrade_factor if factor is None else factor
        self._require_simulators()[shard].set_disk_bandwidth_scale(scale)
        for sub in self._subs.values():
            if sub.shard == shard:
                self._affected.add(sub.query_id)
        if self._obs is not None:
            self._obs.instant(
                "cluster.shard.degrade",
                "cluster",
                now,
                self._obs_pid,
                "cluster",
                shard=shard,
                bandwidth_scale=scale,
            )

    def repair_shard(self, shard: int, now: float) -> None:
        """Bring a killed or degraded shard back to full health.

        A repaired shard immediately becomes a routing target again, and
        any chunk groups orphaned while every replica was down are
        re-dispatched on the spot.
        """
        if self._live[shard] and not self._degraded[shard]:
            raise SimulationError(
                f"cannot repair shard {shard}: it is already up"
            )
        self._clock = max(self._clock, now)
        was_down = not self._live[shard]
        self._live[shard] = True
        self._degraded[shard] = False
        self.repairs += 1
        self.shard_timelines[shard].append((now, "up"))
        self._require_simulators()[shard].set_disk_bandwidth_scale(1.0)
        if self._obs is not None:
            self._obs.instant(
                "cluster.shard.repair",
                "cluster",
                now,
                self._obs_pid,
                "cluster",
                shard=shard,
            )
            self._obs.set_gauge(
                "cluster.live_shards", now, float(sum(self._live))
            )
        if was_down and self._orphans:
            orphans = self._orphans
            self._orphans = []
            for query_id, primary, chunks in orphans:
                target = self._dispatch_group(
                    query_id, primary, chunks, now, origin="orphan"
                )
                if target is not None:
                    self.rescatters += 1
                    if self._obs is not None:
                        self._obs.instant(
                            "cluster.rescatter",
                            "cluster",
                            now,
                            self._obs_pid,
                            "cluster",
                            query=query_id,
                            primary=primary,
                            to_shard=target,
                        )

    # --------------------------------------------------------------- hedging
    def _hedge_threshold(self) -> Optional[float]:
        """Current lateness threshold, or ``None`` before enough samples.

        ``multiplier x`` the configured quantile of every completed
        sub-query latency so far; recomputed only when the sample grew.
        """
        hedge = self.hedge_config
        if hedge is None or len(self._sub_latencies) < hedge.min_samples:
            return None
        size = len(self._sub_latencies)
        cached_size, cached = self._hedge_cache
        if cached_size != size:
            cached = hedge.multiplier * percentile(
                self._sub_latencies, hedge.quantile * 100.0
            )
            self._hedge_cache = (size, cached)
        return cached

    def _hedge_eligible(self, sub: _SubQuery) -> bool:
        """Original, sole copy of its group, with a live alternative."""
        if sub.hedge_of is not None:
            return False
        group = self._groups.get((sub.query_id, sub.primary))
        if group is None or len(group) != 1:
            return False
        return self._pick_replica(sub.primary, exclude=(sub.shard,)) is not None

    def next_hedge_time(self) -> Optional[float]:
        """When the oldest eligible sub-query crosses the threshold.

        ``None`` without a hedge policy, before the sample warms up, or
        when nothing is eligible; never before the coordinator's clock (a
        sub-query already past the threshold hedges *now*, not in the
        past).
        """
        if not self.resilient or self.hedge_config is None:
            return None
        threshold = self._hedge_threshold()
        if threshold is None:
            return None
        best: Optional[float] = None
        for sub in self._subs.values():
            if not self._hedge_eligible(sub):
                continue
            due = sub.scatter_time + threshold
            if best is None or due < best:
                best = due
        if best is None:
            return None
        return max(best, self._clock)

    def fire_hedges(self, now: float) -> None:
        """Scatter a duplicate for every sub-query past the threshold.

        Each duplicate races the original on a *different* live replica;
        the first completion wins and :meth:`_cancel_sub` unwinds the
        loser.
        """
        threshold = self._hedge_threshold()
        if threshold is None:
            return
        self._clock = max(self._clock, now)
        due = [
            sub
            for sub in self._subs.values()
            if self._hedge_eligible(sub)
            and sub.scatter_time + threshold <= now + _EPS
        ]
        for sub in due:
            target = self._dispatch_group(
                sub.query_id,
                sub.primary,
                sub.global_chunks,
                now,
                exclude=(sub.shard,),
                hedge_of=sub.sub_id,
                origin="hedge",
            )
            if target is None:
                continue
            self.hedges_fired += 1
            self._affected.add(sub.query_id)
            if self._obs is not None:
                self._obs.instant(
                    "cluster.hedge.fire",
                    "cluster",
                    now,
                    self._obs_pid,
                    "cluster",
                    query=sub.query_id,
                    sub=sub.sub_id,
                    slow_shard=sub.shard,
                    hedge_shard=target,
                    age=now - sub.scatter_time,
                )

    def stall_detail(self) -> str:
        """Extra context for the lockstep deadlock error (resilient mode)."""
        if not self.resilient:
            return ""
        parts: List[str] = []
        if self._orphans:
            parts.append(
                f"{len(self._orphans)} orphaned chunk group(s) waiting for "
                "a repair that never comes"
            )
        down = [
            shard for shard, live in enumerate(self._live) if not live
        ]
        if down:
            parts.append(f"shard(s) {down} down")
        return "; ".join(parts)

    def sub_ids_of(self, query_id: int) -> Tuple[int, ...]:
        """Every sub-query id ever dispatched for one whole query.

        The legacy path reuses the whole query's id on every shard, so it
        returns the query id itself; resilient mode returns the synthesized
        ids (including cancelled copies, whose chunk loads still happened).
        """
        if not self.resilient:
            return (query_id,)
        return tuple(self._sub_ids_by_query.get(query_id, ()))

    def availability_report(self, duration: float) -> AvailabilitySLO:
        """Fold the failure/hedging history into an availability section."""
        timelines: List[Tuple[Tuple[float, str], ...]] = []
        downtime: List[float] = []
        degraded: List[float] = []
        for shard in range(self.shard_map.num_shards):
            timeline = self.shard_timelines[shard]
            down_s = 0.0
            degraded_s = 0.0
            for index, (start, state) in enumerate(timeline):
                if index + 1 < len(timeline):
                    end = timeline[index + 1][0]
                else:
                    end = max(duration, start)
                span = max(0.0, end - start)
                if state == "down":
                    down_s += span
                elif state == "degraded":
                    degraded_s += span
            closed = list(timeline)
            if closed[-1][0] < duration:
                # Close the timeline at the run's end so availability is
                # computed over the full makespan.
                closed.append((duration, closed[-1][1]))
            timelines.append(tuple(closed))
            downtime.append(down_s)
            degraded.append(degraded_s)
        affected = [
            record.end_to_end_latency
            for record in self.records
            if record.query_id in self._affected
        ]
        unaffected = [
            record.end_to_end_latency
            for record in self.records
            if record.query_id not in self._affected
        ]
        return AvailabilitySLO(
            replicas=self.shard_map.replicas,
            shard_timelines=tuple(timelines),
            downtime_s=tuple(downtime),
            degraded_s=tuple(degraded),
            kills=self.kills,
            degrades=self.degrades,
            repairs=self.repairs,
            hedges_fired=self.hedges_fired,
            hedges_won=self.hedges_won,
            hedges_cancelled=self.hedges_cancelled,
            rescatters=self.rescatters,
            orphaned=self.orphaned,
            affected_queries=len(affected),
            affected_latency=LatencySummary.from_values(affected),
            unaffected_latency=LatencySummary.from_values(unaffected),
        )

    # ------------------------------------------------------------- per shard
    def take_pending(self, shard: int, now: float) -> List[AdmittedQuery]:
        """Sub-queries buffered for ``shard`` that are due by ``now``."""
        queue = self._pending[shard]
        due: List[AdmittedQuery] = []
        while queue and queue[0][0] <= now + _EPS:
            due.append(queue.popleft()[1])
        return due

    def pending_head_time(self, shard: int) -> Optional[float]:
        """Release time of the oldest buffered sub-query for ``shard``."""
        queue = self._pending[shard]
        if not queue:
            return None
        return queue[0][0]

    def has_pending(self, shard: int) -> bool:
        """Whether ``shard`` still has buffered sub-queries to start."""
        return bool(self._pending[shard])

    def earliest_in_flight(self) -> Optional[float]:
        """Delivery time of the earliest undelivered sub-query message.

        The :class:`repro.sim.lockstep.LockstepRunner` treats this as an
        event of the min-frontier step: no shard clock may pass it.
        """
        times = [queue[0][0] for queue in self._pending if queue]
        if not times:
            return None
        return min(times)

    def describe(self) -> Dict[str, object]:
        """Flat description of the cluster front door (for reports)."""
        return {
            "workload": "sharded-cluster",
            **self.shard_map.describe(),
            **self.frontdoor.describe(),
        }


class ShardSource(QuerySource):
    """One shard simulator's view of the cluster coordinator."""

    #: Plumbs straight into coordinator state owned by the driving process:
    #: the lockstep runner must never fork a simulator fed by this source.
    master_coupled = True

    def __init__(self, coordinator: ClusterCoordinator, shard: int) -> None:
        self.coordinator = coordinator
        self.shard = shard

    # ------------------------------------------------------------- interface
    def next_event_time(self) -> Optional[float]:
        candidates: List[float] = []
        pending = self.coordinator.pending_head_time(self.shard)
        if pending is not None:
            candidates.append(pending)
        # Every shard wakes for external arrivals: whichever shard steps
        # first pumps the front queue, the others pick up their pieces.
        arrival = self.coordinator.next_arrival_time()
        if arrival is not None:
            candidates.append(arrival)
        if not candidates:
            return None
        return min(candidates)

    def poll(self, now: float) -> List[AdmittedQuery]:
        self.coordinator.pump(now)
        return self.coordinator.take_pending(self.shard, now)

    def on_complete(self, query_id: int, now: float) -> List[AdmittedQuery]:
        return self.coordinator.complete_subquery(self.shard, query_id, now)

    def drained(self) -> bool:
        return not self.coordinator.has_pending(self.shard) and (
            self.coordinator.drained()
        )

    def describe(self) -> Dict[str, object]:
        return {"shard": self.shard, **self.coordinator.describe()}


@dataclass
class ClusterResult:
    """Outcome of one arrival sequence served by the whole cluster."""

    policy: str
    cluster: ClusterConfig
    shard_map: ShardMap
    #: Raw per-shard simulation results (sub-query granularity).
    shard_runs: List[RunResult]
    #: Per-shard SLO views of the same runs (sub-query latencies).
    shard_reports: List[SLOReport]
    #: The gathered cluster-level SLO report (whole-query latencies,
    #: front-queue counters, per-class slices, utilisation over all
    #: shards' volumes).
    slo: SLOReport
    #: Gathered per-query outcomes, sorted by query id.
    records: List[ClusterQueryRecord] = field(default_factory=list)
    #: ``(time, mpl)`` trajectory of the enforced cluster MPL limit.
    mpl_timeline: Tuple[Tuple[float, int], ...] = ()
    #: The flight recorder shared by the front door and every shard
    #: (``None`` when observability was not requested).
    obs: Optional[FlightRecorder] = None
    #: Coordinator CPU/NIC accounting (``None`` unless the cluster
    #: configuration models the coordinator as a real resource).
    coordinator: Optional[CoordinatorSLO] = None
    #: Validated ``(time, utilisation)`` timelines of the coordinator CPU,
    #: coordinator NIC and each shard NIC (empty on the free path).
    coordinator_timelines: Dict[str, Tuple[Tuple[float, float], ...]] = field(
        default_factory=dict
    )
    #: Replication/failure/hedging accounting (``None`` unless the cluster
    #: configuration is resilient); also threaded into ``slo.availability``.
    availability: Optional[AvailabilitySLO] = None
    #: Firing episodes of the run's alert policy (empty when no policy was
    #: supplied or nothing fired).
    alerts: Tuple[Alert, ...] = ()

    def health_digest(self, title: str = "Cluster health digest") -> str:
        """Rendered incident summary: every firing alert with its window,
        peak and top-blamed latency phase (or a single all-clear line)."""
        return render_health_digest(self.alerts, self.duration, title=title)

    @property
    def duration(self) -> float:
        """Cluster makespan: the slowest shard's total time, or the last
        gather-merge when the modeled coordinator finishes later."""
        latest = max((run.total_time for run in self.shard_runs), default=0.0)
        if self.records:
            latest = max(
                latest, max(record.finish_time for record in self.records)
            )
        return latest

    @property
    def final_mpl(self) -> int:
        """The MPL in force when the run ended."""
        return self.mpl_timeline[-1][1] if self.mpl_timeline else 0

    @property
    def scheduler_profile(self) -> Optional[SchedulerProfile]:
        """Per-phase scheduling cost merged over every shard's run."""
        profiles = [
            run.scheduler_profile
            for run in self.shard_runs
            if run.scheduler_profile is not None
        ]
        if not profiles:
            return None
        return SchedulerProfile.merge(profiles)


def run_cluster_service(
    arrivals: Sequence[Arrival],
    config: SystemConfig,
    shard_abms: Sequence[AnyABM],
    cluster: ClusterConfig,
    num_chunks: Optional[int] = None,
    record_trace: bool = False,
    mpl_controller: Optional[MPLController] = None,
    obs: ObservabilityLike = None,
    alerts: Optional[AlertPolicy] = None,
    workers: int = 1,
) -> ClusterResult:
    """Serve one arrival sequence with a sharded scatter-gather cluster.

    ``shard_abms`` supplies one Active Buffer Manager per shard, each
    modelling that shard's local table (``ShardMap.chunks_owned(shard)``
    chunks); ``config`` describes each shard's machine (disk volumes, CPU,
    buffer).  ``num_chunks`` is the global table size; by default it is the
    sum of the shard tables, which is exact for both placements.  The front
    door (workload classes, job sizing, adaptive MPL) is configured exactly
    like :func:`repro.service.run_service` configures its own.

    ``obs`` threads one shared flight recorder through the front door (the
    ``"frontdoor"`` process), the coordinator's scatter/gather track and
    every shard simulator (processes ``"shard0"``, ``"shard1"``, ...); the
    recorder comes back on :attr:`ClusterResult.obs`.

    ``alerts`` optionally evaluates an :class:`repro.obs.alerts.AlertPolicy`
    against the finished run — burn-rate rules over the whole-query
    completions and threshold rules over the per-shard disk
    (``"shard<i>.disk"``) and coordinator (``"coordinator.cpu"`` /
    ``"coordinator.nic"``) busy timelines — returning the firing episodes
    on :attr:`ClusterResult.alerts`.
    """
    recorder = build_flight_recorder(obs)
    abms = list(shard_abms)
    if num_chunks is None:
        # Every global chunk appears in exactly `replicas` shard tables
        # (once, with replicas=1), so the sum of the shard tables over-
        # counts the global table by exactly that factor.
        num_chunks = sum(abm.num_chunks for abm in abms) // cluster.replicas
    shard_map = ShardMap.from_cluster_config(cluster, num_chunks)
    shard_map.validate_shard_tables(tuple(abm.num_chunks for abm in abms))
    admission = AdmissionController(
        cluster.front_service(),
        job_size=layout_aware_job_size(
            getattr(abms[0], "layout", None) if abms else None
        ),
    )
    resources: Optional[CoordinatorResources] = None
    if cluster.models_coordinator:
        resources = CoordinatorResources(
            cluster.coordinator, cluster.network, shard_map.num_shards
        )
        if recorder is not None:
            resources.attach_observability(recorder)
    resilient = cluster.is_resilient
    if resilient:
        # Loads are recorded per synthesized sub-query id; the probe maps
        # them back to the whole query (`coordinator` binds late — the
        # probe only runs once the simulation does).
        def loads_probe(query_id: int) -> int:
            return sum(
                abm.loads_triggered.get(sub_id, 0)
                for abm in abms
                for sub_id in coordinator.sub_ids_of(query_id)
            )

    else:

        def loads_probe(query_id: int) -> int:
            return sum(abm.loads_triggered.get(query_id, 0) for abm in abms)

    coordinator = ClusterCoordinator(
        arrivals,
        shard_map,
        admission,
        mpl_controller=mpl_controller,
        loads_probe=loads_probe,
        obs=recorder,
        resources=resources,
        resilient=resilient,
        hedge=cluster.hedge,
        degrade_factor=cluster.failures.degrade_factor,
    )
    simulators = [
        ScanSimulator(
            ShardSource(coordinator, shard), config, abm, record_trace=record_trace
        )
        for shard, abm in enumerate(abms)
    ]
    interrupts: List[object] = []
    if resilient:
        from repro.cluster.failures import FailureInjector, HedgeMonitor

        coordinator.attach_shards(simulators)
        if not cluster.failures.is_empty:
            interrupts.append(FailureInjector(cluster.failures, coordinator))
        if cluster.hedge is not None:
            interrupts.append(HedgeMonitor(coordinator))
    # ``workers`` is accepted for API symmetry with standalone fleets, but
    # shard sources are master-coupled (they share the coordinator), so the
    # lockstep runner always keeps cluster fleets on the serial frontier
    # path — worker count cannot change cluster results.
    shard_runs = LockstepRunner(
        simulators,
        obs=recorder,
        message_source=coordinator,
        interrupts=interrupts,
        workers=workers,
    ).run()

    records = sorted(coordinator.records, key=lambda record: record.query_id)
    if resilient:
        # Attribute loads through every dispatched copy (the shards'
        # counters survive cancellation — a hedged loser's chunk loads
        # really happened and really hit the disks).
        for record in records:
            record.loads_triggered = sum(
                abm.loads_triggered.get(sub_id, 0)
                for abm in abms
                for sub_id in coordinator.sub_ids_of(record.query_id)
            )
    else:
        loads: Dict[int, int] = {}
        for run in shard_runs:
            for query in run.queries:
                loads[query.query_id] = (
                    loads.get(query.query_id, 0) + query.loads_triggered
                )
        for record in records:
            record.loads_triggered = loads.get(record.query_id, 0)

    # Critical-path attribution: chain every record's coordinator stamps
    # with its critical sub-query's shard-side execution breakdown.  The
    # winning sub-query always completed on its shard, so its QueryResult
    # (and breakdown) exists even under kills, hedges and re-scatters.
    queries_by_shard = [
        {query.query_id: query for query in run.queries} for run in shard_runs
    ]
    for record in records:
        if record.critical_shard < 0 or record.critical_sub_id is None:
            continue
        sub_result = queries_by_shard[record.critical_shard].get(
            record.critical_sub_id
        )
        if sub_result is None or sub_result.breakdown is None:
            continue
        record.breakdown = assemble_cluster_breakdown(
            submit=record.submit_time,
            admit=record.admit_time,
            ready=record.ready_time,
            dispatch=record.dispatch_time,
            delivered=record.delivered_time,
            shard_start=sub_result.arrival_time,
            shard_execution=sub_result.breakdown,
            shard_finish=record.shard_finish_time,
            gather_arrived=record.gather_arrived_time,
            finish=record.finish_time,
            critical_shard=record.critical_shard,
            origin=record.critical_origin,
            where=f"cluster query {record.query_id} breakdown",
        )

    rate = offered_rate(arrivals)
    shard_reports = [
        build_slo_report(
            run,
            offered=coordinator.subqueries_scattered[shard],
            shed=0,
            max_queue_len=0,
            offered_rate_qps=rate,
        )
        for shard, run in enumerate(shard_runs)
    ]
    coordinator_slo: Optional[CoordinatorSLO] = None
    coordinator_duration: Optional[float] = None
    coordinator_timelines: Dict[str, Tuple[Tuple[float, float], ...]] = {}
    makespan = max(
        [run.total_time for run in shard_runs]
        + [record.finish_time for record in records],
        default=0.0,
    )
    if resources is not None:
        coordinator_duration = makespan
        coordinator_slo = resources.report(coordinator_duration)
        coordinator_timelines = resources.timelines()
    availability: Optional[AvailabilitySLO] = None
    if resilient:
        availability = coordinator.availability_report(makespan)
    slo = merge_shard_slo_reports(
        shard_reports,
        end_to_end=[record.end_to_end_latency for record in records],
        queue_waits=[record.queue_wait for record in records],
        executions=[record.execution_latency for record in records],
        offered=admission.offered,
        admitted=admission.admitted,
        completed=len(records),
        shed=admission.shed_count,
        max_queue_len=admission.max_queue_len,
        offered_rate_qps=rate,
        classes=coordinator.frontdoor.class_reports(),
        coordinator=coordinator_slo,
        duration=coordinator_duration,
        availability=availability,
    )
    blame = build_blame_report(
        (record.query_class, record.breakdown) for record in records
    )
    if blame.overall.count:
        slo = replace(slo, blame=blame)
    fired: Tuple[Alert, ...] = ()
    if alerts is not None and not alerts.is_empty:
        completions = [
            QueryCompletion(
                finish_time=record.finish_time,
                query_class=record.query_class,
                breakdown=record.breakdown,
            )
            for record in records
            if record.breakdown is not None
        ]
        busy_series: Dict[str, Tuple[Tuple[float, float], ...]] = {
            f"shard{shard}.disk": run.disk_busy_timeline
            for shard, run in enumerate(shard_runs)
        }
        if resources is not None:
            busy_series.update(resources.busy_timelines())
        fired = evaluate_alerts(
            alerts,
            completions,
            busy_series,
            makespan,
            obs=recorder,
            where="cluster alerts",
        )
    mpl_timeline = tuple(coordinator.frontdoor.mpl_timeline)
    validate_timeline(mpl_timeline, where="cluster MPL timeline")
    return ClusterResult(
        policy=slo.policy,
        cluster=cluster,
        shard_map=shard_map,
        shard_runs=shard_runs,
        shard_reports=shard_reports,
        slo=slo,
        records=records,
        mpl_timeline=mpl_timeline,
        obs=recorder,
        coordinator=coordinator_slo,
        coordinator_timelines=coordinator_timelines,
        availability=availability,
        alerts=fired,
    )


def compare_cluster_policies(
    arrivals: Sequence[Arrival],
    config: SystemConfig,
    shard_abms_for_policy,
    cluster: ClusterConfig,
    policies: Sequence[str] = ("normal", "attach", "elevator", "relevance"),
) -> Dict[str, ClusterResult]:
    """Serve the identical arrival sequence under each scheduling policy.

    ``shard_abms_for_policy(policy)`` must return a fresh sequence of
    per-shard ABMs; the cluster analogue of
    :func:`repro.service.compare_service_policies`.
    """
    results: Dict[str, ClusterResult] = {}
    for policy in policies:
        results[policy] = run_cluster_service(
            arrivals, config, shard_abms_for_policy(policy), cluster
        )
    return results
