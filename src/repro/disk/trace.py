"""I/O access traces (chunk id over time).

Figure 4 of the paper plots, for each scheduling policy, which chunk was read
at which point in time.  The simulator records every completed chunk load in
an :class:`IOTrace`; the Figure 4 benchmark renders the traces as text series
and computes summary statistics (number of concurrent scan "fronts", detach
events, sequentiality).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One completed disk request."""

    time: float
    chunk: int
    num_bytes: int
    triggered_by: Optional[int] = None
    column: Optional[str] = None


@dataclass
class IOTrace:
    """Ordered record of all disk requests completed during a run."""

    events: List[TraceEvent] = field(default_factory=list)

    def record(
        self,
        time: float,
        chunk: int,
        num_bytes: int,
        triggered_by: Optional[int] = None,
        column: Optional[str] = None,
    ) -> None:
        """Append one completed request to the trace."""
        self.events.append(
            TraceEvent(
                time=time,
                chunk=chunk,
                num_bytes=num_bytes,
                triggered_by=triggered_by,
                column=column,
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    @property
    def total_bytes(self) -> int:
        """Total bytes transferred over the whole run."""
        return sum(event.num_bytes for event in self.events)

    @property
    def duration(self) -> float:
        """Time of the last completed request (0 for an empty trace)."""
        if not self.events:
            return 0.0
        return self.events[-1].time

    def series(self) -> Tuple[List[float], List[int]]:
        """Return (times, chunks) suitable for plotting Figure 4."""
        times = [event.time for event in self.events]
        chunks = [event.chunk for event in self.events]
        return times, chunks

    # -------------------------------------------------------------- analysis
    def sequential_fraction(self) -> float:
        """Fraction of requests that read the chunk following the previous one.

        The elevator policy approaches 1.0; normal with many interleaved scans
        is much lower; relevance sits in between (its pattern is quasi-random
        at chunk granularity but that is fine because chunks are large).
        """
        if len(self.events) < 2:
            return 1.0
        sequential = sum(
            1
            for previous, current in zip(self.events, self.events[1:])
            if current.chunk == previous.chunk + 1
        )
        return sequential / (len(self.events) - 1)

    def distinct_chunks(self) -> int:
        """Number of distinct chunks touched during the run."""
        return len({event.chunk for event in self.events})

    def reread_count(self) -> int:
        """Number of requests that re-read an already-read chunk.

        High values indicate poor sharing (the same data had to be fetched
        repeatedly for different queries).
        """
        seen: set[int] = set()
        rereads = 0
        for event in self.events:
            if event.chunk in seen:
                rereads += 1
            seen.add(event.chunk)
        return rereads

    def concurrent_fronts(self, window: int = 8) -> float:
        """Estimate of the number of simultaneously advancing scan cursors.

        Looks at sliding windows of requests and counts how many distinct
        ascending "runs" are interleaved.  normal keeps one front per query,
        attach fewer, elevator exactly one.
        """
        if len(self.events) < 2:
            return 1.0
        fronts_per_window: List[int] = []
        chunks = [event.chunk for event in self.events]
        for start in range(0, len(chunks) - window + 1, window):
            segment = chunks[start : start + window]
            fronts = 1
            for previous, current in zip(segment, segment[1:]):
                if current != previous + 1:
                    fronts += 1
            fronts_per_window.append(fronts)
        if not fronts_per_window:
            return 1.0
        return sum(fronts_per_window) / len(fronts_per_window)

    def render_ascii(self, num_chunks: int, width: int = 72, height: int = 20) -> str:
        """Render the trace as a small ASCII scatter plot (time vs chunk).

        Useful to eyeball the Figure 4 patterns from a terminal without any
        plotting dependency.
        """
        if not self.events:
            return "(empty trace)"
        duration = max(event.time for event in self.events) or 1.0
        grid = [[" "] * width for _ in range(height)]
        for event in self.events:
            col = min(width - 1, int(event.time / duration * (width - 1)))
            row = min(height - 1, int(event.chunk / max(1, num_chunks - 1) * (height - 1)))
            grid[height - 1 - row][col] = "*"
        lines = ["".join(row) for row in grid]
        header = f"chunk 0..{num_chunks - 1} (y) over time 0..{duration:.1f}s (x)"
        return "\n".join([header] + lines)
