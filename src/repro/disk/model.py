"""Timing model of the simulated disk subsystem.

The model is deliberately simple — the scheduling policies are what we study,
not the disk itself — but it keeps the two properties that matter for the
paper's conclusions:

* a chunk-sized transfer amortises positioning cost, so any order of chunk
  loads achieves close-to-sequential bandwidth (Section 3 / Section 4,
  "disk (arm) latency is still well amortized"), and
* non-adjacent accesses still pay a small extra seek, so the elevator policy
  (strictly sequential) retains a slight per-request advantage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.config import DiskConfig
from repro.disk.request import IORequest


@dataclass
class DiskModel:
    """Stateful disk timing model.

    The model remembers the last chunk read so it can distinguish sequential
    from non-sequential accesses.  It also accumulates simple statistics
    (requests served, bytes transferred, busy time) used by the metrics layer
    to compute bandwidth utilisation.
    """

    config: DiskConfig = field(default_factory=DiskConfig)
    last_chunk: Optional[int] = None
    requests_served: int = 0
    bytes_transferred: int = 0
    busy_time: float = 0.0

    def service_time(self, request: IORequest) -> float:
        """Time to serve ``request`` given the current head position.

        Does not mutate state; :meth:`serve` does.
        """
        sequential = self.last_chunk is not None and request.chunk == self.last_chunk + 1
        seek = (
            self.config.sequential_seek_s if sequential else self.config.avg_seek_s
        )
        return seek + request.num_bytes / self.config.effective_bandwidth

    def serve(self, request: IORequest) -> float:
        """Serve a request: update statistics and return its service time."""
        duration = self.service_time(request)
        self.last_chunk = request.chunk
        self.requests_served += 1
        self.bytes_transferred += request.num_bytes
        self.busy_time += duration
        return duration

    def reset(self) -> None:
        """Clear head position and statistics (start of a new run)."""
        self.last_chunk = None
        self.requests_served = 0
        self.bytes_transferred = 0
        self.busy_time = 0.0

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` time the disk spent transferring data."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def achieved_bandwidth(self) -> float:
        """Average bandwidth over the busy time (bytes/s)."""
        if self.busy_time <= 0:
            return 0.0
        return self.bytes_transferred / self.busy_time
