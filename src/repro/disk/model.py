"""Timing model of the simulated disk subsystem.

The model is deliberately simple — the scheduling policies are what we study,
not the disk itself — but it keeps the two properties that matter for the
paper's conclusions:

* a chunk-sized transfer amortises positioning cost, so any order of chunk
  loads achieves close-to-sequential bandwidth (Section 3 / Section 4,
  "disk (arm) latency is still well amortized"), and
* non-adjacent accesses still pay a small extra seek, so the elevator policy
  (strictly sequential) retains a slight per-request advantage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.common.config import DiskConfig
from repro.common.errors import SimulationError
from repro.disk.request import IORequest

#: Tolerance for busy-time accounting checks (absolute and relative).
_UTILISATION_EPS = 1e-9


@dataclass
class DiskModel:
    """Stateful disk timing model.

    The model remembers the last chunk read so it can distinguish sequential
    from non-sequential accesses.  It also accumulates simple statistics
    (requests served, bytes transferred, busy time) used by the metrics layer
    to compute bandwidth utilisation.
    """

    config: DiskConfig = field(default_factory=DiskConfig)
    last_chunk: Optional[int] = None
    requests_served: int = 0
    sequential_requests: int = 0
    bytes_transferred: int = 0
    busy_time: float = 0.0
    #: Seek portion of the most recent :meth:`serve` (the flight recorder
    #: splits each request into a seek and a transfer span from this).
    last_seek_s: float = 0.0

    def is_sequential(self, chunk: int) -> bool:
        """Whether reading ``chunk`` next avoids the full positioning cost.

        Both the *next* physical chunk and the *same* chunk count: the head is
        already positioned there, so back-to-back reads of one chunk — the
        common case for consecutive DSM column blocks of a single logical
        chunk — only pay the track/rotation cost, not a full average seek.
        """
        return self.last_chunk is not None and (
            chunk == self.last_chunk or chunk == self.last_chunk + 1
        )

    def service_segments(self, request: IORequest) -> "Tuple[float, float]":
        """The ``(seek, transfer)`` portions of serving ``request`` now.

        Does not mutate state.  The seek segment is the positioning cost
        (full average seek, or the track-to-track cost for sequential
        access); the transfer segment is bytes over effective bandwidth.
        """
        seek = (
            self.config.sequential_seek_s
            if self.is_sequential(request.chunk)
            else self.config.avg_seek_s
        )
        return seek, request.num_bytes / self.config.effective_bandwidth

    def service_time(self, request: IORequest) -> float:
        """Time to serve ``request`` given the current head position.

        Does not mutate state; :meth:`serve` does.
        """
        seek, transfer = self.service_segments(request)
        return seek + transfer

    def serve(self, request: IORequest) -> float:
        """Serve a request: update statistics and return its service time."""
        seek, transfer = self.service_segments(request)
        duration = seek + transfer
        if self.is_sequential(request.chunk):
            self.sequential_requests += 1
        self.last_chunk = request.chunk
        self.last_seek_s = seek
        self.requests_served += 1
        self.bytes_transferred += request.num_bytes
        self.busy_time += duration
        return duration

    def reset(self) -> None:
        """Clear head position and statistics (start of a new run)."""
        self.last_chunk = None
        self.requests_served = 0
        self.sequential_requests = 0
        self.bytes_transferred = 0
        self.busy_time = 0.0
        self.last_seek_s = 0.0

    def sequential_fraction(self) -> float:
        """Fraction of served requests that avoided the full seek."""
        if self.requests_served <= 0:
            return 0.0
        return self.sequential_requests / self.requests_served

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` time the disk spent transferring data.

        Raises :class:`SimulationError` when the accumulated busy time
        exceeds the elapsed wall-clock time (beyond floating-point noise):
        a disk cannot be more than 100% busy, so an overshoot always means
        the caller double-counted service time and must not be masked.
        """
        if elapsed <= 0:
            return 0.0
        if self.busy_time > elapsed * (1.0 + _UTILISATION_EPS) + _UTILISATION_EPS:
            raise SimulationError(
                f"disk busy time {self.busy_time:.9f}s exceeds elapsed "
                f"{elapsed:.9f}s: busy-time accounting is broken"
            )
        return min(1.0, self.busy_time / elapsed)

    def achieved_bandwidth(self) -> float:
        """Average bandwidth over the busy time (bytes/s)."""
        if self.busy_time <= 0:
            return 0.0
        return self.bytes_transferred / self.busy_time
