"""A disk subsystem of several independent volumes.

The single :class:`repro.disk.model.DiskModel` collapses the paper's 4-way
RAID into one fast sequential device.  :class:`MultiVolumeDisk` instead owns
one ``DiskModel`` head *per volume* and routes every request to the volume
holding its chunk (via a :class:`repro.storage.volumes.VolumeLayout`), so:

* each volume keeps its own head position — seek accounting is per volume,
  and striped layouts stay sequential *within* a volume (chunk ``i`` and
  chunk ``i + V`` are adjacent on their shared volume);
* volumes serve requests concurrently — the simulator keeps one load in
  flight per volume instead of one global load;
* statistics aggregate across volumes but remain inspectable per volume
  (:meth:`per_volume_utilisation` feeds the service layer's SLO reports).

With one volume the subsystem is bit-for-bit identical to a bare
``DiskModel``: the layout maps every chunk to volume 0 at an unchanged local
position, and all requests serialise on that single head.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

from repro.common.config import DiskConfig
from repro.disk.model import DiskModel
from repro.disk.request import IORequest
from repro.storage.volumes import VolumeLayout


class MultiVolumeDisk:
    """One independent :class:`DiskModel` head per volume."""

    def __init__(self, config: DiskConfig, layout: VolumeLayout) -> None:
        if layout.num_volumes != config.volumes:
            raise ValueError(
                f"volume layout has {layout.num_volumes} volumes but the disk "
                f"configuration declares {config.volumes}"
            )
        self.config = config
        self.layout = layout
        #: Healthy-disk configuration; :meth:`set_bandwidth_scale` derives
        #: degraded configs from this so repeated degrade/repair cycles
        #: never compound.
        self._base_config = config
        self.volumes: List[DiskModel] = [
            DiskModel(config) for _ in range(layout.num_volumes)
        ]
        #: Optional flight recorder (:meth:`attach_observability`); ``None``
        #: records nothing.
        self._obs = None
        self._obs_pid = "service"
        self._obs_tids: List[str] = []

    def attach_observability(self, flight, process: str = "service") -> None:
        """Emit per-volume seek/transfer spans for every served request.

        Spans are only recorded for :meth:`serve` calls that carry a ``now``
        timestamp (the simulator's clock); timestamp-less callers keep the
        pure timing behaviour.
        """
        self._obs = flight
        self._obs_pid = process
        self._obs_tids = [f"vol{volume}" for volume in range(self.num_volumes)]

    # ------------------------------------------------------------ routing
    @property
    def num_volumes(self) -> int:
        """Number of independent volumes."""
        return len(self.volumes)

    def volume_of(self, chunk: int) -> int:
        """Volume that serves requests for the given logical chunk."""
        return self.layout.volume_of(chunk)

    def service_time(self, request: IORequest) -> float:
        """Time the owning volume would need to serve ``request`` now."""
        return self._model_for(request.chunk).service_time(self._localise(request))

    def serve(self, request: IORequest, now: Optional[float] = None) -> float:
        """Serve ``request`` on the volume owning its chunk.

        Returns the service time.  The caller is responsible for only having
        one request in service per volume at a time (the volume has a single
        head); the simulator enforces this with per-volume in-flight slots.
        ``now`` (the request's start time on the simulated clock) is only
        used to timestamp flight-recorder spans; it never affects timing.
        """
        volume = self.layout.volume_of(request.chunk)
        model = self.volumes[volume]
        duration = model.serve(self._localise(request))
        if self._obs is not None and now is not None:
            seek = model.last_seek_s
            tid = self._obs_tids[volume]
            self._obs.complete(
                "disk.seek", "disk", now, seek, self._obs_pid, tid,
                chunk=request.chunk,
                sequential=seek <= self.config.sequential_seek_s,
            )
            self._obs.complete(
                "disk.transfer", "disk", now + seek, duration - seek,
                self._obs_pid, tid,
                chunk=request.chunk,
                num_bytes=request.num_bytes,
                column=request.column,
                triggered_by=request.triggered_by,
            )
        return duration

    def set_bandwidth_scale(self, scale: float) -> None:
        """Scale every volume's sequential bandwidth (a degraded shard).

        ``scale=1.0`` restores the healthy configuration exactly.  Only
        *future* serves are affected: an in-flight request's completion time
        was computed when it was issued, matching a head that finishes its
        current transfer before slowing down.
        """
        if not scale > 0.0:
            raise ValueError(f"bandwidth scale must be > 0, got {scale!r}")
        base = self._base_config
        degraded = (
            base
            if scale == 1.0
            else replace(
                base,
                bandwidth_bytes_per_s=base.bandwidth_bytes_per_s * scale,
            )
        )
        self.config = degraded
        for model in self.volumes:
            model.config = degraded

    def _model_for(self, chunk: int) -> DiskModel:
        return self.volumes[self.layout.volume_of(chunk)]

    def _localise(self, request: IORequest) -> IORequest:
        """Rewrite the chunk id to its volume-local position.

        The per-volume head tracks *physical* adjacency on that volume, so
        consecutive local indices (e.g. chunks ``i`` and ``i + V`` under
        striping) are charged the sequential seek.
        """
        local = self.layout.local_index(request.chunk)
        if local == request.chunk:
            return request
        return replace(request, chunk=local)

    # --------------------------------------------------------- statistics
    @property
    def requests_served(self) -> int:
        """Requests served across all volumes."""
        return sum(model.requests_served for model in self.volumes)

    @property
    def sequential_requests(self) -> int:
        """Requests that avoided a full seek, across all volumes."""
        return sum(model.sequential_requests for model in self.volumes)

    @property
    def bytes_transferred(self) -> int:
        """Bytes transferred across all volumes."""
        return sum(model.bytes_transferred for model in self.volumes)

    @property
    def busy_time(self) -> float:
        """Total head busy time summed over all volumes."""
        return sum(model.busy_time for model in self.volumes)

    def sequential_fraction(self) -> float:
        """Fraction of all requests that avoided the full seek."""
        served = self.requests_served
        if served <= 0:
            return 0.0
        return self.sequential_requests / served

    def utilisation(self, elapsed: float) -> float:
        """Mean busy fraction over all volumes (1.0 = every head always busy)."""
        if elapsed <= 0 or not self.volumes:
            return 0.0
        return sum(self.per_volume_utilisation(elapsed)) / self.num_volumes

    def per_volume_utilisation(self, elapsed: float) -> Tuple[float, ...]:
        """Busy fraction of each volume over ``elapsed`` seconds."""
        return tuple(model.utilisation(elapsed) for model in self.volumes)

    def achieved_bandwidth(self) -> float:
        """Aggregate bandwidth over the summed busy time (bytes/s)."""
        busy = self.busy_time
        if busy <= 0:
            return 0.0
        return self.bytes_transferred / busy

    def reset(self) -> None:
        """Clear every volume's head position and statistics."""
        for model in self.volumes:
            model.reset()
