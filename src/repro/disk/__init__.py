"""Disk subsystem: timing model, request records and access traces.

The simulated disk serves one chunk-granularity request at a time *per
volume* (the paper uses large isolated I/O requests precisely so that
concurrent scans do not degenerate into random page I/O).  A
:class:`repro.disk.multivolume.MultiVolumeDisk` keeps one independent
:class:`repro.disk.model.DiskModel` head per volume; with the default single
volume the subsystem behaves exactly like the classic lone disk.  Request
timing follows a simple seek + transfer model; every served request is
recorded in an
:class:`repro.disk.trace.IOTrace`, which is what the Figure 4 benchmark plots
(chunk number against completion time, one series per scheduling policy).
"""

from repro.disk.model import DiskModel
from repro.disk.multivolume import MultiVolumeDisk
from repro.disk.request import IORequest, RequestKind
from repro.disk.trace import IOTrace, TraceEvent

__all__ = [
    "DiskModel",
    "MultiVolumeDisk",
    "IORequest",
    "RequestKind",
    "IOTrace",
    "TraceEvent",
]
