"""Disk subsystem: timing model, request records and access traces.

The simulated disk serves one chunk-granularity request at a time (the paper
uses large isolated I/O requests precisely so that concurrent scans do not
degenerate into random page I/O).  Request timing follows a simple
seek + transfer model; every served request is recorded in an
:class:`repro.disk.trace.IOTrace`, which is what the Figure 4 benchmark plots
(chunk number against completion time, one series per scheduling policy).
"""

from repro.disk.model import DiskModel
from repro.disk.request import IORequest, RequestKind
from repro.disk.trace import IOTrace, TraceEvent

__all__ = [
    "DiskModel",
    "IORequest",
    "RequestKind",
    "IOTrace",
    "TraceEvent",
]
