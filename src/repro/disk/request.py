"""I/O request records."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple


class RequestKind(Enum):
    """What kind of data an I/O request transfers."""

    #: A full NSM chunk (fixed number of pages).
    NSM_CHUNK = "nsm_chunk"
    #: A set of pages of one column belonging to one logical DSM chunk.
    DSM_COLUMN_BLOCK = "dsm_column_block"


@dataclass(frozen=True)
class IORequest:
    """A single chunk-granularity disk request.

    Attributes
    ----------
    chunk:
        Logical chunk id being (partially) loaded.
    num_bytes:
        Number of bytes transferred.
    kind:
        Whether this is an NSM chunk or a DSM per-column block.
    column:
        Column name for DSM column blocks, ``None`` for NSM chunks.
    triggered_by:
        Identifier of the query on whose behalf the request was issued
        (scheduling decisions are made *for* a query even though the loaded
        data may serve many).
    """

    chunk: int
    num_bytes: int
    kind: RequestKind = RequestKind.NSM_CHUNK
    column: Optional[str] = None
    triggered_by: Optional[int] = None

    def __post_init__(self) -> None:
        if self.chunk < 0:
            raise ValueError("chunk id must be non-negative")
        if self.num_bytes <= 0:
            raise ValueError("num_bytes must be positive")

    @property
    def is_column_block(self) -> bool:
        """Whether the request is a DSM per-column block."""
        return self.kind is RequestKind.DSM_COLUMN_BLOCK
