"""Replacement policies for the classic buffer pool.

The paper's *normal* policy is "a traditional LRU buffering policy"; older
DBMS literature (Chou & DeWitt, Sacco & Schkolnick) suggests MRU for large
scans.  Both are provided, together with FIFO and CLOCK, so that the
traditional baseline can be configured in benchmarks and ablations.

All policies operate on opaque hashable keys (page ids, chunk ids, ...); the
pool is responsible for never asking to victimise a pinned key.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Dict, Hashable, Iterable, List, Optional

from repro.common.errors import BufferPoolError


class ReplacementPolicy(ABC):
    """Interface of a replacement policy over hashable keys."""

    name: str = "abstract"

    @abstractmethod
    def insert(self, key: Hashable) -> None:
        """Register a newly cached key."""

    @abstractmethod
    def touch(self, key: Hashable) -> None:
        """Record an access to a cached key."""

    @abstractmethod
    def remove(self, key: Hashable) -> None:
        """Forget a key (it was evicted or invalidated)."""

    @abstractmethod
    def victim(self, candidates: Iterable[Hashable]) -> Optional[Hashable]:
        """Choose which of ``candidates`` to evict (``None`` if no candidate)."""

    @abstractmethod
    def __contains__(self, key: Hashable) -> bool:
        """Whether the key is currently tracked."""


class _OrderedPolicy(ReplacementPolicy):
    """Shared machinery for recency/insertion ordered policies."""

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def insert(self, key: Hashable) -> None:
        if key in self._order:
            raise BufferPoolError(f"key {key!r} inserted twice into {self.name}")
        self._order[key] = None

    def remove(self, key: Hashable) -> None:
        if key not in self._order:
            raise BufferPoolError(f"key {key!r} not tracked by {self.name}")
        del self._order[key]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._order

    def _ordered_candidates(self, candidates: Iterable[Hashable]) -> List[Hashable]:
        allowed = set(candidates)
        return [key for key in self._order if key in allowed]


class LRUReplacement(_OrderedPolicy):
    """Least-recently-used replacement."""

    name = "lru"

    def touch(self, key: Hashable) -> None:
        if key not in self._order:
            raise BufferPoolError(f"key {key!r} not tracked by {self.name}")
        self._order.move_to_end(key)

    def victim(self, candidates: Iterable[Hashable]) -> Optional[Hashable]:
        ordered = self._ordered_candidates(candidates)
        return ordered[0] if ordered else None


class MRUReplacement(_OrderedPolicy):
    """Most-recently-used replacement (classic choice for pure scans)."""

    name = "mru"

    def touch(self, key: Hashable) -> None:
        if key not in self._order:
            raise BufferPoolError(f"key {key!r} not tracked by {self.name}")
        self._order.move_to_end(key)

    def victim(self, candidates: Iterable[Hashable]) -> Optional[Hashable]:
        ordered = self._ordered_candidates(candidates)
        return ordered[-1] if ordered else None


class FIFOReplacement(_OrderedPolicy):
    """First-in-first-out replacement (insertion order, accesses ignored)."""

    name = "fifo"

    def touch(self, key: Hashable) -> None:
        if key not in self._order:
            raise BufferPoolError(f"key {key!r} not tracked by {self.name}")
        # FIFO ignores accesses.

    def victim(self, candidates: Iterable[Hashable]) -> Optional[Hashable]:
        ordered = self._ordered_candidates(candidates)
        return ordered[0] if ordered else None


class ClockReplacement(ReplacementPolicy):
    """CLOCK (second-chance) replacement."""

    name = "clock"

    def __init__(self) -> None:
        self._keys: List[Hashable] = []
        self._referenced: Dict[Hashable, bool] = {}
        self._hand: int = 0

    def insert(self, key: Hashable) -> None:
        if key in self._referenced:
            raise BufferPoolError(f"key {key!r} inserted twice into {self.name}")
        self._keys.append(key)
        self._referenced[key] = True

    def touch(self, key: Hashable) -> None:
        if key not in self._referenced:
            raise BufferPoolError(f"key {key!r} not tracked by {self.name}")
        self._referenced[key] = True

    def remove(self, key: Hashable) -> None:
        if key not in self._referenced:
            raise BufferPoolError(f"key {key!r} not tracked by {self.name}")
        index = self._keys.index(key)
        del self._keys[index]
        del self._referenced[key]
        if self._hand > index:
            self._hand -= 1
        if self._keys:
            self._hand %= len(self._keys)
        else:
            self._hand = 0

    def __contains__(self, key: Hashable) -> bool:
        return key in self._referenced

    def victim(self, candidates: Iterable[Hashable]) -> Optional[Hashable]:
        allowed = set(candidates)
        eligible = [key for key in self._keys if key in allowed]
        if not eligible:
            return None
        # Sweep at most two full rounds: one to clear reference bits, one to pick.
        for _ in range(2 * len(self._keys)):
            key = self._keys[self._hand]
            self._hand = (self._hand + 1) % len(self._keys)
            if key not in allowed:
                continue
            if self._referenced[key]:
                self._referenced[key] = False
                continue
            return key
        # All eligible keys kept getting referenced; fall back to the first.
        return eligible[0]


_POLICIES = {
    "lru": LRUReplacement,
    "mru": MRUReplacement,
    "fifo": FIFOReplacement,
    "clock": ClockReplacement,
}


def make_replacement(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (lru, mru, fifo, clock)."""
    try:
        return _POLICIES[name.lower()]()
    except KeyError as exc:
        raise BufferPoolError(f"unknown replacement policy {name!r}") from exc
