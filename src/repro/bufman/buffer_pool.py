"""A classic page-granularity buffer pool.

This is the "standard buffer manager" of Section 7.1: fixed number of frames,
pin/unpin protocol, pluggable replacement.  The simulator's *normal* baseline
and the in-memory engine's plain ``Scan`` operator go through this component;
the Active Buffer Manager can be layered on top of it (requesting ranges of
pages and pinning them), which is exercised by the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional

from repro.common.errors import BufferPoolError
from repro.bufman.replacement import ReplacementPolicy, make_replacement


@dataclass
class Frame:
    """One buffer frame holding a cached object."""

    key: Hashable
    pin_count: int = 0
    dirty: bool = False
    payload: object = None


class BufferPool:
    """Fixed-capacity cache of keyed objects with pin/unpin semantics.

    Keys are opaque (page ids, ``(table, page)`` tuples, chunk ids, ...).
    ``fetch`` returns a pinned frame, loading it through ``loader`` on a miss
    and evicting an unpinned victim chosen by the replacement policy when the
    pool is full.
    """

    def __init__(self, capacity: int, replacement: str | ReplacementPolicy = "lru") -> None:
        if capacity < 1:
            raise BufferPoolError("buffer pool capacity must be >= 1")
        self._capacity = capacity
        self._frames: Dict[Hashable, Frame] = {}
        if isinstance(replacement, str):
            self._replacement = make_replacement(replacement)
        else:
            self._replacement = replacement
        self.hits: int = 0
        self.misses: int = 0
        self.evictions: int = 0

    # ------------------------------------------------------------ inspection
    @property
    def capacity(self) -> int:
        """Maximum number of frames."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._frames

    def pinned_keys(self) -> List[Hashable]:
        """Keys currently pinned by at least one user."""
        return [key for key, frame in self._frames.items() if frame.pin_count > 0]

    def cached_keys(self) -> List[Hashable]:
        """All currently cached keys."""
        return list(self._frames)

    @property
    def hit_ratio(self) -> float:
        """Fraction of fetches served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------- operations
    def fetch(
        self,
        key: Hashable,
        loader: Optional[Callable[[Hashable], object]] = None,
        pin: bool = True,
    ) -> Frame:
        """Return the frame for ``key``, loading and caching it on a miss.

        The returned frame is pinned unless ``pin=False``; callers must
        eventually :meth:`unpin` every pinned fetch.
        """
        frame = self._frames.get(key)
        if frame is not None:
            self.hits += 1
            self._replacement.touch(key)
            if pin:
                frame.pin_count += 1
            return frame

        self.misses += 1
        if len(self._frames) >= self._capacity:
            self._evict_one()
        payload = loader(key) if loader is not None else None
        frame = Frame(key=key, pin_count=1 if pin else 0, payload=payload)
        self._frames[key] = frame
        self._replacement.insert(key)
        return frame

    def _evict_one(self) -> None:
        candidates = [key for key, frame in self._frames.items() if frame.pin_count == 0]
        victim = self._replacement.victim(candidates)
        if victim is None:
            raise BufferPoolError(
                "buffer pool is full and every frame is pinned "
                f"(capacity={self._capacity})"
            )
        self.evict(victim)

    def unpin(self, key: Hashable) -> None:
        """Release one pin on a cached key."""
        frame = self._frames.get(key)
        if frame is None:
            raise BufferPoolError(f"cannot unpin {key!r}: not cached")
        if frame.pin_count <= 0:
            raise BufferPoolError(f"cannot unpin {key!r}: pin count already zero")
        frame.pin_count -= 1

    def pin(self, key: Hashable) -> Frame:
        """Pin an already-cached key (raises if missing)."""
        frame = self._frames.get(key)
        if frame is None:
            raise BufferPoolError(f"cannot pin {key!r}: not cached")
        frame.pin_count += 1
        self._replacement.touch(key)
        return frame

    def evict(self, key: Hashable) -> None:
        """Explicitly evict an unpinned cached key."""
        frame = self._frames.get(key)
        if frame is None:
            raise BufferPoolError(f"cannot evict {key!r}: not cached")
        if frame.pin_count > 0:
            raise BufferPoolError(f"cannot evict {key!r}: pinned {frame.pin_count} times")
        del self._frames[key]
        self._replacement.remove(key)
        self.evictions += 1

    def mark_dirty(self, key: Hashable) -> None:
        """Mark a cached key as dirty (updates are out of scope but the flag
        keeps the pool honest as a general-purpose component)."""
        frame = self._frames.get(key)
        if frame is None:
            raise BufferPoolError(f"cannot mark {key!r} dirty: not cached")
        frame.dirty = True

    def clear(self) -> None:
        """Drop every unpinned frame (used between benchmark repetitions)."""
        for key in list(self._frames):
            if self._frames[key].pin_count == 0:
                self.evict(key)
