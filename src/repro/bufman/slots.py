"""Chunk-slot and column-block pools used by the Active Buffer Manager.

The ABM does not cache pages for their own sake: it tracks *chunks* (NSM) or
per-column *blocks of logical chunks* (DSM), together with which queries are
still interested in them and which queries are currently consuming them.
Those two pools are implemented here; the scheduling policies consult them
and the simulator mutates them as loads complete and queries consume data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.common.errors import BufferPoolError

#: Key of a DSM column block: (logical chunk id, column name).
BlockKey = Tuple[int, str]


@dataclass
class ChunkSlot:
    """State of one buffered NSM chunk."""

    chunk: int
    loaded_at: float
    last_used: float
    pin_count: int = 0

    @property
    def pinned(self) -> bool:
        """Whether some query is currently consuming this chunk."""
        return self.pin_count > 0


class ChunkSlotPool:
    """Fixed-capacity pool of NSM chunk slots.

    Capacity accounting includes in-flight loads, so that the scheduler never
    over-commits the buffer: ``len(buffered) + len(loading) <= capacity``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise BufferPoolError("chunk slot pool needs capacity >= 1")
        self._capacity = capacity
        self._slots: Dict[int, ChunkSlot] = {}
        self._loading: Set[int] = set()
        self.loads_completed: int = 0
        self.evictions: int = 0
        #: Optional observer (the ABM's interest tracker) notified whenever a
        #: chunk becomes buffered or is evicted, so incrementally-maintained
        #: availability stays consistent even when a driver mutates the pool
        #: directly.  Must provide ``on_chunk_loaded(chunk)`` and
        #: ``on_chunk_evicted(chunk)``; it may additionally provide
        #: ``on_load_started(chunk)``, ``on_load_cancelled(chunk)`` and
        #: ``on_pool_reset()`` (used by the vectorised tracker to maintain
        #: its loading mask) — absent hooks are simply skipped.
        self.listener = None

    # ------------------------------------------------------------ inspection
    @property
    def capacity(self) -> int:
        """Maximum number of chunks held (buffered plus in flight)."""
        return self._capacity

    def __contains__(self, chunk: int) -> bool:
        return chunk in self._slots

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[ChunkSlot]:
        return iter(self._slots.values())

    def buffered_chunks(self) -> List[int]:
        """Chunks currently fully loaded."""
        return list(self._slots)

    def is_loading(self, chunk: int) -> bool:
        """Whether the chunk is currently being loaded."""
        return chunk in self._loading

    def loading_chunks(self) -> List[int]:
        """Chunks currently in flight."""
        return list(self._loading)

    def in_use(self) -> int:
        """Number of occupied slots (buffered plus in flight)."""
        return len(self._slots) + len(self._loading)

    def free_slots(self) -> int:
        """Number of slots available without eviction."""
        return self._capacity - self.in_use()

    def has_free_slot(self) -> bool:
        """Whether a load can start without evicting."""
        return self.free_slots() > 0

    def slot(self, chunk: int) -> ChunkSlot:
        """Return the slot of a buffered chunk (raises if absent)."""
        try:
            return self._slots[chunk]
        except KeyError as exc:
            raise BufferPoolError(f"chunk {chunk} is not buffered") from exc

    def unpinned_chunks(self) -> List[int]:
        """Buffered chunks not currently consumed by any query."""
        return [chunk for chunk, slot in self._slots.items() if not slot.pinned]

    # ------------------------------------------------------------- mutation
    def start_load(self, chunk: int) -> None:
        """Reserve a slot for an in-flight load."""
        if chunk in self._slots or chunk in self._loading:
            raise BufferPoolError(f"chunk {chunk} is already buffered or loading")
        if not self.has_free_slot():
            raise BufferPoolError("no free slot: evict before starting a load")
        self._loading.add(chunk)
        hook = getattr(self.listener, "on_load_started", None)
        if hook is not None:
            hook(chunk)

    def cancel_load(self, chunk: int) -> None:
        """Abort an in-flight load reservation."""
        if chunk not in self._loading:
            raise BufferPoolError(f"chunk {chunk} is not being loaded")
        self._loading.discard(chunk)
        hook = getattr(self.listener, "on_load_cancelled", None)
        if hook is not None:
            hook(chunk)

    def complete_load(self, chunk: int, now: float) -> ChunkSlot:
        """Mark an in-flight load as finished; the chunk becomes buffered."""
        if chunk not in self._loading:
            raise BufferPoolError(f"chunk {chunk} is not being loaded")
        self._loading.discard(chunk)
        slot = ChunkSlot(chunk=chunk, loaded_at=now, last_used=now)
        self._slots[chunk] = slot
        self.loads_completed += 1
        if self.listener is not None:
            self.listener.on_chunk_loaded(chunk)
        return slot

    def pin(self, chunk: int, now: float) -> None:
        """A query starts consuming the chunk."""
        slot = self.slot(chunk)
        slot.pin_count += 1
        slot.last_used = now

    def unpin(self, chunk: int, now: float) -> None:
        """A query finished consuming the chunk."""
        slot = self.slot(chunk)
        if slot.pin_count <= 0:
            raise BufferPoolError(f"chunk {chunk} pin count already zero")
        slot.pin_count -= 1
        slot.last_used = now

    def evict(self, chunk: int) -> None:
        """Remove an unpinned buffered chunk."""
        slot = self.slot(chunk)
        if slot.pinned:
            raise BufferPoolError(f"cannot evict pinned chunk {chunk}")
        del self._slots[chunk]
        self.evictions += 1
        if self.listener is not None:
            self.listener.on_chunk_evicted(chunk)

    def reset(self) -> None:
        """Drop all state (new run)."""
        if self.listener is not None:
            for chunk in list(self._slots):
                self.listener.on_chunk_evicted(chunk)
        self._slots.clear()
        self._loading.clear()
        self.loads_completed = 0
        self.evictions = 0
        hook = getattr(self.listener, "on_pool_reset", None)
        if hook is not None:
            hook()


@dataclass
class BlockState:
    """State of one buffered DSM column block (one column of one chunk)."""

    chunk: int
    column: str
    pages: int
    loaded_at: float
    last_used: float
    pin_count: int = 0

    @property
    def key(self) -> BlockKey:
        """The (chunk, column) key of this block."""
        return (self.chunk, self.column)

    @property
    def pinned(self) -> bool:
        """Whether some query is currently consuming this block."""
        return self.pin_count > 0


class DSMBlockPool:
    """Page-accounted pool of DSM column blocks.

    Unlike the NSM pool the capacity is expressed in *pages*, because column
    blocks have widely varying physical sizes (Section 6.1).  Blocks are keyed
    by ``(chunk, column)``; pinning happens per block so a query only protects
    the columns it actually reads.
    """

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise BufferPoolError("DSM block pool needs capacity >= 1 page")
        self._capacity_pages = capacity_pages
        self._blocks: Dict[BlockKey, BlockState] = {}
        #: Per-chunk index of the buffered blocks (column -> state), so that
        #: chunk-granularity questions (``blocks_of_chunk``,
        #: ``chunk_cached_pages``) cost O(blocks of that chunk) instead of a
        #: walk over the whole pool.  Per-chunk insertion order matches the
        #: global insertion order restricted to the chunk.
        self._by_chunk: Dict[int, Dict[str, BlockState]] = {}
        self._loading: Dict[BlockKey, int] = {}
        #: Chunks protected from eviction because a query has already chosen
        #: them as its next chunk (the DSM "avoid data waste" rule).
        self._reserved_chunks: Dict[int, int] = {}
        #: Running page counter covering buffered blocks and in-flight loads,
        #: kept incrementally because ``used_pages`` sits on the hot path of
        #: every load and eviction decision.
        self._used_pages: int = 0
        self.loads_completed: int = 0
        self.evictions: int = 0
        #: Optional observer (the DSM ABM's interest tracker) notified when a
        #: block becomes buffered or is evicted; must provide
        #: ``on_block_loaded(chunk, column, pages)`` and
        #: ``on_block_evicted(chunk, column, pages)``.
        self.listener = None

    # ------------------------------------------------------------ inspection
    @property
    def capacity_pages(self) -> int:
        """Total page budget."""
        return self._capacity_pages

    def __contains__(self, key: BlockKey) -> bool:
        return key in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[BlockState]:
        return iter(self._blocks.values())

    def block(self, key: BlockKey) -> BlockState:
        """Return a buffered block (raises if absent)."""
        try:
            return self._blocks[key]
        except KeyError as exc:
            raise BufferPoolError(f"block {key} is not buffered") from exc

    def is_loading(self, key: BlockKey) -> bool:
        """Whether the block is currently in flight."""
        return key in self._loading

    def has_block(self, chunk: int, column: str) -> bool:
        """Whether the block is fully buffered."""
        return (chunk, column) in self._blocks

    def buffered_keys(self) -> List[BlockKey]:
        """All fully buffered block keys."""
        return list(self._blocks)

    def buffered_chunks(self) -> Set[int]:
        """Chunks with at least one buffered column block."""
        return set(self._by_chunk)

    def blocks_of_chunk(self, chunk: int) -> List[BlockState]:
        """All buffered blocks belonging to one logical chunk."""
        per_chunk = self._by_chunk.get(chunk)
        if not per_chunk:
            return []
        return list(per_chunk.values())

    def used_pages(self) -> int:
        """Pages occupied by buffered blocks plus in-flight loads."""
        return self._used_pages

    def free_pages(self) -> int:
        """Pages available without eviction."""
        return self._capacity_pages - self.used_pages()

    def chunk_cached_pages(self, chunk: int, columns: Optional[Iterable[str]] = None) -> int:
        """Buffered pages of a chunk, optionally restricted to some columns."""
        per_chunk = self._by_chunk.get(chunk)
        if not per_chunk:
            return 0
        if columns is None:
            return sum(state.pages for state in per_chunk.values())
        wanted = set(columns)
        return sum(
            per_chunk[column].pages for column in wanted if column in per_chunk
        )

    # ----------------------------------------------------------- reservation
    def reserve_chunk(self, chunk: int) -> None:
        """Protect a chunk from eviction (a query picked it as its next chunk)."""
        self._reserved_chunks[chunk] = self._reserved_chunks.get(chunk, 0) + 1

    def release_chunk(self, chunk: int) -> None:
        """Drop one reservation on a chunk."""
        count = self._reserved_chunks.get(chunk, 0)
        if count <= 0:
            raise BufferPoolError(f"chunk {chunk} is not reserved")
        if count == 1:
            del self._reserved_chunks[chunk]
        else:
            self._reserved_chunks[chunk] = count - 1

    def is_reserved(self, chunk: int) -> bool:
        """Whether the chunk is protected from eviction."""
        return self._reserved_chunks.get(chunk, 0) > 0

    # ------------------------------------------------------------- mutation
    def start_load(self, key: BlockKey, pages: int) -> None:
        """Reserve pages for an in-flight block load."""
        if pages <= 0:
            raise BufferPoolError("block load must cover at least one page")
        if key in self._blocks or key in self._loading:
            raise BufferPoolError(f"block {key} is already buffered or loading")
        if pages > self.free_pages():
            raise BufferPoolError(
                f"not enough free pages for block {key}: need {pages}, "
                f"have {self.free_pages()}"
            )
        self._loading[key] = pages
        self._used_pages += pages

    def complete_load(self, key: BlockKey, now: float) -> BlockState:
        """Mark an in-flight block load as finished."""
        if key not in self._loading:
            raise BufferPoolError(f"block {key} is not being loaded")
        pages = self._loading.pop(key)
        chunk, column = key
        state = BlockState(
            chunk=chunk,
            column=column,
            pages=pages,
            loaded_at=now,
            last_used=now,
        )
        self._blocks[key] = state
        self._by_chunk.setdefault(chunk, {})[column] = state
        self.loads_completed += 1
        if self.listener is not None:
            self.listener.on_block_loaded(chunk, column, pages)
        return state

    def pin(self, key: BlockKey, now: float) -> None:
        """A query starts consuming this block."""
        state = self.block(key)
        state.pin_count += 1
        state.last_used = now

    def unpin(self, key: BlockKey, now: float) -> None:
        """A query finished consuming this block."""
        state = self.block(key)
        if state.pin_count <= 0:
            raise BufferPoolError(f"block {key} pin count already zero")
        state.pin_count -= 1
        state.last_used = now

    def evict(self, key: BlockKey) -> int:
        """Evict an unpinned block; returns the number of pages freed."""
        state = self.block(key)
        if state.pinned:
            raise BufferPoolError(f"cannot evict pinned block {key}")
        if self.is_reserved(state.chunk):
            raise BufferPoolError(
                f"cannot evict block {key}: chunk {state.chunk} is reserved"
            )
        del self._blocks[key]
        per_chunk = self._by_chunk[state.chunk]
        del per_chunk[state.column]
        if not per_chunk:
            del self._by_chunk[state.chunk]
        self._used_pages -= state.pages
        self.evictions += 1
        if self.listener is not None:
            self.listener.on_block_evicted(state.chunk, state.column, state.pages)
        return state.pages

    def reset(self) -> None:
        """Drop all state (new run)."""
        if self.listener is not None:
            for state in list(self._blocks.values()):
                self.listener.on_block_evicted(state.chunk, state.column, state.pages)
        self._blocks.clear()
        self._by_chunk.clear()
        self._loading.clear()
        self._reserved_chunks.clear()
        self._used_pages = 0
        self.loads_completed = 0
        self.evictions = 0
