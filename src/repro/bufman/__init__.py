"""Buffer management substrate.

Two layers are provided:

* a *classic* page-granularity buffer pool with pluggable replacement
  (:mod:`repro.bufman.buffer_pool`, :mod:`repro.bufman.replacement`) — the
  kind of component every DBMS already has and on top of which an ABM can be
  layered (Section 7.1 of the paper);
* the chunk-slot and column-block pools used by the Active Buffer Manager
  (:mod:`repro.bufman.slots`), which track per-chunk interest, pins and
  page-level occupancy for NSM and DSM respectively.
"""

from repro.bufman.replacement import (
    ReplacementPolicy,
    LRUReplacement,
    MRUReplacement,
    FIFOReplacement,
    ClockReplacement,
    make_replacement,
)
from repro.bufman.buffer_pool import BufferPool, Frame
from repro.bufman.slots import ChunkSlotPool, ChunkSlot, DSMBlockPool, BlockState

__all__ = [
    "ReplacementPolicy",
    "LRUReplacement",
    "MRUReplacement",
    "FIFOReplacement",
    "ClockReplacement",
    "make_replacement",
    "BufferPool",
    "Frame",
    "ChunkSlotPool",
    "ChunkSlot",
    "DSMBlockPool",
    "BlockState",
]
