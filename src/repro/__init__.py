"""repro — a reproduction of "Cooperative Scans: Dynamic Bandwidth Sharing in
a DBMS" (Zukowski, Héman, Nes, Boncz; VLDB 2007).

The package implements the Cooperative Scans framework — the CScan operator
and the Active Buffer Manager (ABM) with its relevance scheduling policy —
together with every substrate the paper's evaluation relies on: NSM/PAX and
DSM storage layouts, a disk and CPU model, a discrete-event simulator of
concurrent scans, an in-memory query engine with out-of-order-aware
operators, workload generators and the metrics/report machinery that
regenerates the paper's tables and figures.

Quick start::

    from repro import quickstart_nsm_run
    comparison = quickstart_nsm_run()
    print(comparison.system_stats()["relevance"].avg_stream_time)

See ``examples/quickstart.py`` for a richer tour and ``DESIGN.md`` for the
mapping between paper sections and modules.
"""

from __future__ import annotations

from repro.common import (
    SystemConfig,
    DiskConfig,
    CpuConfig,
    BufferConfig,
    ServiceConfig,
    ClusterConfig,
    PAPER_NSM_SYSTEM,
    PAPER_DSM_SYSTEM,
)
from repro.core import (
    ScanRequest,
    CScanHandle,
    ActiveBufferManager,
    DSMActiveBufferManager,
    make_policy,
    make_dsm_policy,
    POLICY_NAMES,
)
from repro.sim import (
    run_simulation,
    run_standalone,
    make_nsm_abm,
    make_dsm_abm,
    nsm_abm_factory,
    dsm_abm_factory,
    RunResult,
)
from repro.metrics import PolicyComparison, compare_runs

__version__ = "1.9.0"

__all__ = [
    "SystemConfig",
    "DiskConfig",
    "CpuConfig",
    "BufferConfig",
    "ServiceConfig",
    "ClusterConfig",
    "PAPER_NSM_SYSTEM",
    "PAPER_DSM_SYSTEM",
    "ScanRequest",
    "CScanHandle",
    "ActiveBufferManager",
    "DSMActiveBufferManager",
    "make_policy",
    "make_dsm_policy",
    "POLICY_NAMES",
    "run_simulation",
    "run_standalone",
    "make_nsm_abm",
    "make_dsm_abm",
    "nsm_abm_factory",
    "dsm_abm_factory",
    "RunResult",
    "PolicyComparison",
    "compare_runs",
    "quickstart_nsm_run",
    "__version__",
]


def quickstart_nsm_run(
    num_streams: int = 4,
    queries_per_stream: int = 2,
    scale_factor: float = 1.0,
    seed: int = 0,
) -> PolicyComparison:
    """Run a small NSM policy comparison and return a PolicyComparison.

    This is a convenience wrapper used by the README quick-start; it builds a
    ``lineitem``-like table, a small FAST/SLOW workload, runs all four
    scheduling policies and returns the aggregated comparison.
    """
    from repro.sim.sweeps import compare_nsm_policies, standalone_times
    from repro.workload import (
        build_streams,
        lineitem_nsm_layout,
        nsm_query_families,
        standard_templates,
    )

    config = PAPER_NSM_SYSTEM
    layout = lineitem_nsm_layout(scale_factor, buffer=config.buffer)
    fast, slow = nsm_query_families(config)
    templates = standard_templates(fast, slow, percentages=(10, 50, 100))
    streams = build_streams(
        templates, layout, num_streams, queries_per_stream, seed=seed
    )
    runs = compare_nsm_policies(streams, config, layout)
    specs = [spec for stream in streams for spec in stream]
    baseline = standalone_times(
        specs, config, nsm_abm_factory(layout, config, "normal", prefetch=False)
    )
    return compare_runs(runs, baseline)
