"""Query streams.

The paper's concurrency experiments use "multiple query streams, each
sequentially executing a random set of queries", with a 3 second delay
between stream starts.  :func:`build_streams` produces such a workload from a
set of query templates; :func:`build_uniform_streams` produces the simpler
workload of Figure 7 (every stream runs the same template once).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.core.cscan import ScanRequest
from repro.workload.queries import AnyLayout, QueryTemplate, make_scan_request


def build_streams(
    templates: Sequence[QueryTemplate],
    layout: AnyLayout,
    num_streams: int,
    queries_per_stream: int,
    seed: int = 0,
) -> List[List[ScanRequest]]:
    """Build ``num_streams`` streams of ``queries_per_stream`` random queries.

    Each stream draws its queries independently (with replacement) from the
    template set, and every query scans a freshly-drawn random range, so two
    queries with the same label still read different parts of the table.
    Query ids are unique across the whole workload.
    """
    if not templates:
        raise ConfigurationError("at least one query template is required")
    if num_streams < 1 or queries_per_stream < 1:
        raise ConfigurationError("need at least one stream and one query per stream")
    rng = make_rng(seed)
    streams: List[List[ScanRequest]] = []
    query_id = 0
    for _ in range(num_streams):
        stream: List[ScanRequest] = []
        for _ in range(queries_per_stream):
            template = templates[int(rng.integers(0, len(templates)))]
            stream.append(make_scan_request(template, query_id, layout, rng))
            query_id += 1
        streams.append(stream)
    return streams


def build_uniform_streams(
    template: QueryTemplate,
    layout: AnyLayout,
    num_queries: int,
    seed: int = 0,
) -> List[List[ScanRequest]]:
    """Build ``num_queries`` single-query streams of the same template.

    Used by the Figure 7 experiment, where 1..32 concurrent queries all read
    the same fraction of the table from random locations.
    """
    if num_queries < 1:
        raise ConfigurationError("need at least one query")
    rng = make_rng(seed)
    return [
        [make_scan_request(template, query_id, layout, rng)]
        for query_id in range(num_queries)
    ]
