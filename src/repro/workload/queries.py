"""Query families and templates (the paper's F-xx / S-xx notation).

A :class:`QueryFamily` captures *how expensive* a query's per-chunk
processing is (FAST vs SLOW) and, for DSM, which columns it touches.
A :class:`QueryTemplate` combines a family with a range size (percentage of
the table); ``make_scan_request`` instantiates a template into a concrete
:class:`repro.core.ScanRequest` by picking a random contiguous range of
chunks, exactly like the paper's "reading X % of the full relation from a
random location".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.common.config import DEFAULT_QUERY_CLASS, SystemConfig
from repro.common.errors import ConfigurationError
from repro.core.cscan import ScanRequest
from repro.storage.dsm import DSMTableLayout
from repro.storage.nsm import NSMTableLayout

AnyLayout = Union[NSMTableLayout, DSMTableLayout]

#: Columns read by the FAST query (TPC-H Q6-style aggregation).
Q6_COLUMNS: Tuple[str, ...] = (
    "l_shipdate",
    "l_discount",
    "l_quantity",
    "l_extendedprice",
)

#: Columns read by the SLOW query (TPC-H Q1-style aggregation with extra math).
Q1_COLUMNS: Tuple[str, ...] = (
    "l_returnflag",
    "l_linestatus",
    "l_quantity",
    "l_extendedprice",
    "l_discount",
    "l_tax",
    "l_shipdate",
)


@dataclass(frozen=True)
class QueryFamily:
    """A class of queries with a common per-chunk processing cost.

    ``query_class`` tags every query instantiated from the family with a
    workload class (e.g. ``"interactive"`` / ``"batch"``) for the service
    front door's per-class admission; the default keeps all queries in the
    single catch-all class.
    """

    name: str
    cpu_per_chunk: float
    columns: Tuple[str, ...] = ()
    query_class: str = DEFAULT_QUERY_CLASS

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("query family needs a name")
        if self.cpu_per_chunk < 0:
            raise ConfigurationError("cpu_per_chunk must be non-negative")
        if not self.query_class:
            raise ConfigurationError("query family needs a non-empty query class")

    def with_query_class(self, query_class: str) -> "QueryFamily":
        """Return a copy of this family tagged with a workload class."""
        return replace(self, query_class=query_class)


@dataclass(frozen=True)
class QueryTemplate:
    """A query family combined with a scanned-range size."""

    family: QueryFamily
    percent: float

    def __post_init__(self) -> None:
        if not 0 < self.percent <= 100:
            raise ConfigurationError(
                f"scan percentage must be in (0, 100], got {self.percent}"
            )

    @property
    def label(self) -> str:
        """The paper's QUERY-PERCENTAGE notation, e.g. ``"F-10"``."""
        percent = int(round(self.percent))
        return f"{self.family.name}-{percent:02d}"


def nsm_query_families(
    config: SystemConfig,
    fast_cpu_fraction: float = 0.4,
    slow_cpu_fraction: float = 1.1,
) -> Tuple[QueryFamily, QueryFamily]:
    """The FAST and SLOW families for row storage.

    Costs are calibrated relative to the time it takes to load one chunk from
    disk: FAST is I/O-bound (CPU below one chunk-load), SLOW is CPU-bound.
    With the paper's 16 MB chunks on a 200 MB/s array this gives standalone
    full-scan times close to the paper's 20 s (F-100) and 35 s (S-100).
    """
    io_per_chunk = config.chunk_load_time()
    fast = QueryFamily("F", cpu_per_chunk=fast_cpu_fraction * io_per_chunk)
    slow = QueryFamily("S", cpu_per_chunk=slow_cpu_fraction * io_per_chunk)
    return fast, slow


def dsm_query_families(
    layout: DSMTableLayout,
    config: SystemConfig,
    fast_cpu_fraction: float = 0.35,
    slow_cpu_fraction: float = 1.0,
) -> Tuple[QueryFamily, QueryFamily]:
    """The FAST and SLOW families for column storage.

    DSM reads far fewer bytes per chunk, so per-chunk CPU costs are calibrated
    against the I/O time of each query's *own column set* — reproducing the
    paper's use of a "faster slow query" in the DSM experiment (Section 6.3).
    """
    page_time = config.buffer.page_bytes / config.disk.effective_bandwidth

    def column_io(columns: Tuple[str, ...]) -> float:
        pages = sum(layout.average_pages_per_chunk(column) for column in columns)
        return pages * page_time + config.disk.avg_seek_s * len(columns)

    fast = QueryFamily(
        "F", cpu_per_chunk=fast_cpu_fraction * column_io(Q6_COLUMNS), columns=Q6_COLUMNS
    )
    slow = QueryFamily(
        "S", cpu_per_chunk=slow_cpu_fraction * column_io(Q1_COLUMNS), columns=Q1_COLUMNS
    )
    return fast, slow


def standard_templates(
    fast: QueryFamily,
    slow: QueryFamily,
    percentages: Sequence[float] = (1, 10, 50, 100),
) -> Tuple[QueryTemplate, ...]:
    """The 8 query templates of Tables 2 and 3: {F, S} x {1, 10, 50, 100} %."""
    templates = []
    for family in (fast, slow):
        for percent in percentages:
            templates.append(QueryTemplate(family=family, percent=percent))
    return tuple(templates)


def classed_templates(
    templates: Sequence[QueryTemplate], query_class: str
) -> Tuple[QueryTemplate, ...]:
    """Tag every template with a workload class (``interactive``/``batch``).

    Convenience for building class-separated open-system workloads: the
    returned templates instantiate into scan requests carrying
    ``query_class``, which the service front door routes into that class's
    admission queue.
    """
    return tuple(
        replace(template, family=template.family.with_query_class(query_class))
        for template in templates
    )


def make_scan_request(
    template: QueryTemplate,
    query_id: int,
    layout: AnyLayout,
    rng: np.random.Generator,
    columns: Optional[Sequence[str]] = None,
) -> ScanRequest:
    """Instantiate a template into a concrete scan over a random range.

    The scanned range covers ``percent`` of the table's chunks, starting at a
    random chunk (clamped so the range stays inside the table, as in the
    paper's range queries).
    """
    num_chunks = layout.num_chunks
    span = max(1, int(round(template.percent / 100.0 * num_chunks)))
    span = min(span, num_chunks)
    if span == num_chunks:
        start = 0
    else:
        start = int(rng.integers(0, num_chunks - span + 1))
    chunk_ids = tuple(range(start, start + span))
    effective_columns = tuple(columns) if columns is not None else template.family.columns
    return ScanRequest(
        query_id=query_id,
        name=template.label,
        chunks=chunk_ids,
        columns=effective_columns,
        cpu_per_chunk=template.family.cpu_per_chunk,
        query_class=template.family.query_class,
    )


def request_from_chunks(
    name: str,
    query_id: int,
    chunks: Sequence[int],
    cpu_per_chunk: float,
    columns: Sequence[str] = (),
    query_class: str = DEFAULT_QUERY_CLASS,
) -> ScanRequest:
    """Build a scan request from an explicit chunk list (zone-map plans, tests)."""
    return ScanRequest(
        query_id=query_id,
        name=name,
        chunks=tuple(sorted(set(chunks))),
        columns=tuple(columns),
        cpu_per_chunk=cpu_per_chunk,
        query_class=query_class,
    )
