"""The query mixes of Figure 5.

Figure 5 explores two dimensions: query *speed* composition (only fast
queries, only slow, balanced and skewed mixes) and scanned *range* sizes
(short, mixed, long).  A point label like ``"FFS-M"`` means "twice as many
fast as slow queries, mixed range sizes".
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.workload.queries import QueryFamily, QueryTemplate

#: Speed mixes: each entry lists family names with multiplicity.
SPEED_MIXES: Dict[str, Tuple[str, ...]] = {
    "SF": ("S", "F"),
    "S": ("S",),
    "F": ("F",),
    "SSF": ("S", "S", "F"),
    "FFS": ("F", "F", "S"),
}

#: Range-size mixes (percent of the table), from Section 5.2.1:
#: S(hort), M(ixed) and L(ong).
SIZE_MIXES: Dict[str, Tuple[float, ...]] = {
    "S": (1, 2, 5, 10, 20),
    "M": (1, 2, 10, 50, 100),
    "L": (10, 30, 50, 100),
}


def mix_templates(
    speed_key: str,
    size_key: str,
    fast: QueryFamily,
    slow: QueryFamily,
) -> List[QueryTemplate]:
    """Templates of one Figure 5 point (e.g. ``("FFS", "M")``)."""
    try:
        speeds = SPEED_MIXES[speed_key]
    except KeyError as exc:
        raise ConfigurationError(f"unknown speed mix {speed_key!r}") from exc
    try:
        sizes = SIZE_MIXES[size_key]
    except KeyError as exc:
        raise ConfigurationError(f"unknown size mix {size_key!r}") from exc
    families = {"F": fast, "S": slow}
    templates = []
    for speed in speeds:
        for size in sizes:
            templates.append(QueryTemplate(family=families[speed], percent=size))
    return templates


def all_mixes() -> List[Tuple[str, str]]:
    """All 15 (speed, size) combinations plotted in Figure 5."""
    return [(speed, size) for speed in SPEED_MIXES for size in SIZE_MIXES]


def mix_label(speed_key: str, size_key: str) -> str:
    """The paper's point label, e.g. ``"FFS-M"``."""
    return f"{speed_key}-{size_key}"
