"""The synthetic 10-column table and column-overlap workloads of Table 4.

Section 6.3.1: "we run various queries against a 200M-tuple relation,
consisting of 10 attributes (called A to J), each 8 bytes wide. ... We use 16
streams of 4 queries that scan 3 adjacent columns from the table.  In
different runs, corresponding queries read the same 40 % subset of the
relation, but may use different columns."  The query *sets* compared are

* non-overlapping: ``ABC`` alone, then ``ABC`` + ``DEF``;
* partially overlapping: ``ABC``, ``ABC,BCD``, ``ABC,BCD,CDE`` and
  ``ABC,BCD,CDE,DEF``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.core.cscan import ScanRequest
from repro.storage.compression import NONE
from repro.storage.dsm import DSMTableLayout
from repro.storage.schema import ColumnSpec, DataType, TableSchema

#: Column names of the synthetic relation.
SYNTHETIC_COLUMNS: Tuple[str, ...] = tuple("ABCDEFGHIJ")


def ten_column_schema() -> TableSchema:
    """The 10-attribute, 8-bytes-per-attribute synthetic schema of Table 4."""
    columns = tuple(
        ColumnSpec(name, DataType.INT64, NONE) for name in SYNTHETIC_COLUMNS
    )
    return TableSchema(name="synthetic10", columns=columns)


def ten_column_layout(
    num_tuples: int,
    tuples_per_chunk: int,
    page_bytes: int,
) -> DSMTableLayout:
    """DSM layout of the synthetic relation."""
    return DSMTableLayout(
        schema=ten_column_schema(),
        num_tuples=num_tuples,
        tuples_per_chunk=tuples_per_chunk,
        page_bytes=page_bytes,
    )


def overlap_query_sets() -> Dict[str, List[Tuple[str, ...]]]:
    """The column sets of Table 4, keyed by the paper's row labels."""
    return {
        "ABC": [("A", "B", "C")],
        "ABC,DEF": [("A", "B", "C"), ("D", "E", "F")],
        "ABC,BCD": [("A", "B", "C"), ("B", "C", "D")],
        "ABC,BCD,CDE": [("A", "B", "C"), ("B", "C", "D"), ("C", "D", "E")],
        "ABC,BCD,CDE,DEF": [
            ("A", "B", "C"),
            ("B", "C", "D"),
            ("C", "D", "E"),
            ("D", "E", "F"),
        ],
    }


def overlap_streams(
    column_sets: Sequence[Tuple[str, ...]],
    layout: DSMTableLayout,
    num_streams: int,
    queries_per_stream: int,
    scan_fraction: float = 0.4,
    cpu_per_chunk: float = 0.0,
    seed: int = 0,
) -> List[List[ScanRequest]]:
    """Build the Table 4 workload: every query scans ``scan_fraction`` of the
    table (random location) over 3 adjacent columns drawn from ``column_sets``
    in round-robin order across queries."""
    if not column_sets:
        raise ConfigurationError("need at least one column set")
    if not 0 < scan_fraction <= 1:
        raise ConfigurationError("scan_fraction must be in (0, 1]")
    rng = make_rng(seed)
    num_chunks = layout.num_chunks
    span = max(1, int(round(scan_fraction * num_chunks)))
    span = min(span, num_chunks)
    streams: List[List[ScanRequest]] = []
    query_id = 0
    for _ in range(num_streams):
        stream: List[ScanRequest] = []
        for _ in range(queries_per_stream):
            columns = column_sets[query_id % len(column_sets)]
            if span == num_chunks:
                start = 0
            else:
                start = int(rng.integers(0, num_chunks - span + 1))
            stream.append(
                ScanRequest(
                    query_id=query_id,
                    name="".join(columns),
                    chunks=tuple(range(start, start + span)),
                    columns=tuple(columns),
                    cpu_per_chunk=cpu_per_chunk,
                )
            )
            query_id += 1
        streams.append(stream)
    return streams


def generate_ten_column_data(num_tuples: int, seed: int = 0) -> Dict[str, np.ndarray]:
    """Synthetic integer data for the 10-column relation (engine examples)."""
    if num_tuples <= 0:
        raise ConfigurationError("num_tuples must be positive")
    rng = make_rng(seed)
    return {
        name: rng.integers(0, 1_000_000, size=num_tuples).astype(np.int64)
        for name in SYNTHETIC_COLUMNS
    }
