"""Workload generation: tables, query families, streams and mixes.

The paper's experiments run mixes of two query families — FAST (TPC-H Q6,
a cheap aggregation) and SLOW (TPC-H Q1 with extra arithmetic) — over ranges
of 1 %, 10 %, 50 % and 100 % of the TPC-H ``lineitem`` table, organised in
query streams that execute 4 random queries each.  This package builds those
workloads:

* :mod:`repro.workload.tpch` -- ``lineitem``-like schemas, layouts and
  synthetic column data (for the in-memory engine and zone maps);
* :mod:`repro.workload.queries` -- FAST/SLOW query families and templates
  (``F-10`` = FAST over 10 % of the table) turned into
  :class:`repro.core.ScanRequest` objects;
* :mod:`repro.workload.streams` -- random query streams;
* :mod:`repro.workload.mixes` -- the speed/size mixes of Figure 5;
* :mod:`repro.workload.synthetic` -- the 10-column table and column-overlap
  query sets of Table 4.
"""

from repro.workload.tpch import (
    lineitem_nsm_schema,
    lineitem_dsm_schema,
    lineitem_nsm_layout,
    lineitem_dsm_layout,
    generate_lineitem,
    LINEITEM_TUPLES_PER_SF,
)
from repro.workload.queries import (
    QueryFamily,
    QueryTemplate,
    classed_templates,
    nsm_query_families,
    dsm_query_families,
    make_scan_request,
    standard_templates,
)
from repro.workload.streams import build_streams, build_uniform_streams
from repro.workload.mixes import SPEED_MIXES, SIZE_MIXES, mix_templates, all_mixes
from repro.workload.synthetic import (
    ten_column_schema,
    ten_column_layout,
    overlap_query_sets,
    overlap_streams,
)

__all__ = [
    "lineitem_nsm_schema",
    "lineitem_dsm_schema",
    "lineitem_nsm_layout",
    "lineitem_dsm_layout",
    "generate_lineitem",
    "LINEITEM_TUPLES_PER_SF",
    "QueryFamily",
    "QueryTemplate",
    "classed_templates",
    "nsm_query_families",
    "dsm_query_families",
    "make_scan_request",
    "standard_templates",
    "build_streams",
    "build_uniform_streams",
    "SPEED_MIXES",
    "SIZE_MIXES",
    "mix_templates",
    "all_mixes",
    "ten_column_schema",
    "ten_column_layout",
    "overlap_query_sets",
    "overlap_streams",
]
