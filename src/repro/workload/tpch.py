"""TPC-H-like ``lineitem`` schemas, layouts and synthetic data.

The paper's row-store experiments use TPC-H scale factor 10 (the ``lineitem``
table is slightly over 4 GB in PAX format, ~275 16 MB chunks) and the DSM
experiments use scale factor 40.  We reproduce the *shape* of that table:
~6 million tuples per scale factor, a realistic column set with the
compressed widths of Figure 9 for DSM, and a synthetic data generator whose
value distributions support the Q1/Q6-style queries and the zone-map
correlation between order keys and dates.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.common.config import BufferConfig
from repro.common.rng import make_rng
from repro.storage.compression import NONE, PDICT, PFOR, PFOR_DELTA
from repro.storage.dsm import DSMTableLayout
from repro.storage.nsm import NSMTableLayout
from repro.storage.schema import ColumnSpec, DataType, TableSchema

#: TPC-H defines 6 million ``lineitem`` tuples per scale factor.
LINEITEM_TUPLES_PER_SF = 6_000_000


def lineitem_nsm_schema() -> TableSchema:
    """The ``lineitem`` columns with uncompressed (PAX) widths.

    The widths sum to ~72 bytes per tuple, which reproduces the paper's
    "slightly over 4 GB" footprint at scale factor 10.
    """
    columns = (
        ColumnSpec("l_orderkey", DataType.OID),
        ColumnSpec("l_partkey", DataType.OID),
        ColumnSpec("l_suppkey", DataType.OID),
        ColumnSpec("l_linenumber", DataType.INT32),
        ColumnSpec("l_quantity", DataType.DECIMAL),
        ColumnSpec("l_extendedprice", DataType.DECIMAL),
        ColumnSpec("l_discount", DataType.DECIMAL),
        ColumnSpec("l_tax", DataType.DECIMAL),
        ColumnSpec("l_returnflag", DataType.CHAR1),
        ColumnSpec("l_linestatus", DataType.CHAR1),
        ColumnSpec("l_shipdate", DataType.DATE),
        ColumnSpec("l_commitdate", DataType.DATE),
        ColumnSpec("l_receiptdate", DataType.DATE),
    )
    return TableSchema(name="lineitem", columns=columns)


def lineitem_dsm_schema() -> TableSchema:
    """The ``lineitem`` columns with the compressed widths of Figure 9.

    Key/date columns compress extremely well (PFOR / PFOR-DELTA), the flag
    columns use dictionary compression, and the decimals stay uncompressed —
    giving the widely varying per-column page footprints that make DSM
    scheduling two-dimensional.
    """
    columns = (
        ColumnSpec("l_orderkey", DataType.OID, PFOR_DELTA),
        ColumnSpec("l_partkey", DataType.OID, PFOR),
        ColumnSpec("l_suppkey", DataType.OID, PFOR),
        ColumnSpec("l_linenumber", DataType.INT32, PFOR, compressed_bits=4),
        ColumnSpec("l_quantity", DataType.DECIMAL, PFOR, compressed_bits=8),
        ColumnSpec("l_extendedprice", DataType.DECIMAL, NONE),
        ColumnSpec("l_discount", DataType.DECIMAL, PDICT, compressed_bits=4),
        ColumnSpec("l_tax", DataType.DECIMAL, PDICT, compressed_bits=4),
        ColumnSpec("l_returnflag", DataType.CHAR1, PDICT),
        ColumnSpec("l_linestatus", DataType.CHAR1, PDICT),
        ColumnSpec("l_shipdate", DataType.DATE, PFOR, compressed_bits=12),
        ColumnSpec("l_commitdate", DataType.DATE, PFOR, compressed_bits=12),
        ColumnSpec("l_receiptdate", DataType.DATE, PFOR, compressed_bits=12),
    )
    return TableSchema(name="lineitem", columns=columns)


def lineitem_nsm_layout(
    scale_factor: float,
    buffer: Optional[BufferConfig] = None,
    num_tuples: Optional[int] = None,
) -> NSMTableLayout:
    """NSM/PAX layout of ``lineitem`` for a given TPC-H scale factor."""
    config = buffer or BufferConfig()
    tuples = num_tuples or int(scale_factor * LINEITEM_TUPLES_PER_SF)
    return NSMTableLayout.from_buffer_config(lineitem_nsm_schema(), tuples, config)


def lineitem_dsm_layout(
    scale_factor: float,
    buffer: Optional[BufferConfig] = None,
    num_tuples: Optional[int] = None,
) -> DSMTableLayout:
    """DSM layout of ``lineitem`` for a given TPC-H scale factor.

    The logical chunk size is chosen so that a *full-width* chunk (all
    columns) is about one NSM chunk worth of compressed data, which keeps the
    chunk count comparable between the storage models.
    """
    config = buffer or BufferConfig()
    tuples = num_tuples or int(scale_factor * LINEITEM_TUPLES_PER_SF)
    return DSMTableLayout.with_target_chunk_bytes(
        lineitem_dsm_schema(),
        tuples,
        target_chunk_bytes=config.chunk_bytes,
        page_bytes=config.page_bytes,
    )


def generate_lineitem(num_tuples: int, seed: int = 0) -> Dict[str, np.ndarray]:
    """Generate synthetic ``lineitem`` column data.

    The generator reproduces the properties the experiments rely on:

    * ``l_orderkey`` is (almost) sorted, as produced by a clustered load;
    * ``l_shipdate`` is strongly correlated with ``l_orderkey`` (dates grow
      with order position), which is what makes zone-map range scans select
      *contiguous* chunk ranges;
    * ``l_quantity``, ``l_discount``, ``l_extendedprice``, ``l_returnflag``
      follow TPC-H-like distributions so Q1/Q6-style predicates select
      realistic fractions of the data.

    Dates are encoded as integer day numbers (0 = 1992-01-01, ~2525 days of
    order activity as in TPC-H).
    """
    if num_tuples <= 0:
        raise ValueError("num_tuples must be positive")
    rng = make_rng(seed)
    # Orders arrive in key order; each order has 1-7 line items.
    orderkey = np.sort(rng.integers(1, max(2, num_tuples // 4), size=num_tuples))
    # Ship dates trend upward with position (correlated column), with noise.
    base_days = np.linspace(0.0, 2525.0 - 121.0, num_tuples)
    shipdate = (base_days + rng.integers(1, 122, size=num_tuples)).astype(np.int64)
    commitdate = shipdate + rng.integers(-30, 61, size=num_tuples)
    receiptdate = shipdate + rng.integers(1, 31, size=num_tuples)
    quantity = rng.integers(1, 51, size=num_tuples).astype(np.float64)
    extendedprice = np.round(rng.uniform(900.0, 105_000.0, size=num_tuples), 2)
    discount = np.round(rng.integers(0, 11, size=num_tuples) / 100.0, 2)
    tax = np.round(rng.integers(0, 9, size=num_tuples) / 100.0, 2)
    returnflag = rng.choice(np.array([0, 1, 2], dtype=np.int8), size=num_tuples,
                            p=[0.25, 0.25, 0.5])
    linestatus = (shipdate > 1721).astype(np.int8)
    return {
        "l_orderkey": orderkey.astype(np.int64),
        "l_partkey": rng.integers(1, 200_000, size=num_tuples).astype(np.int64),
        "l_suppkey": rng.integers(1, 10_000, size=num_tuples).astype(np.int64),
        "l_linenumber": rng.integers(1, 8, size=num_tuples).astype(np.int32),
        "l_quantity": quantity,
        "l_extendedprice": extendedprice,
        "l_discount": discount,
        "l_tax": tax,
        "l_returnflag": returnflag,
        "l_linestatus": linestatus,
        "l_shipdate": shipdate,
        "l_commitdate": commitdate.astype(np.int64),
        "l_receiptdate": receiptdate.astype(np.int64),
    }
