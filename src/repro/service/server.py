"""The open-system service loop.

:class:`OpenSystemSource` adapts a timestamped arrival sequence plus an
:class:`repro.service.admission.AdmissionController` to the simulator's
:class:`repro.sim.source.QuerySource` interface: queries register with the
ABM at their *admitted* time (not at a stream position), wait in the
admission queue while the multiprogramming level is saturated, and release
the head of the queue when they complete.

:func:`run_service` wires the pieces together for one policy and returns
the raw :class:`RunResult` alongside the :class:`SLOReport`;
:func:`compare_service_policies` repeats the identical arrival sequence
under several scheduling policies, which is the open-system analogue of
:func:`repro.sim.sweeps.compare_policies`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.config import ServiceConfig, SystemConfig
from repro.service.admission import AdmissionController
from repro.service.arrivals import Arrival, offered_rate, validate_arrivals
from repro.service.slo import SLOReport, build_slo_report
from repro.sim.results import RunResult
from repro.sim.runner import AnyABM, run_simulation
from repro.sim.source import NO_STREAM, AdmittedQuery, QuerySource

_EPS = 1e-9


class OpenSystemSource(QuerySource):
    """Feeds timestamped arrivals through admission control into the runner."""

    def __init__(
        self,
        arrivals: Sequence[Arrival],
        admission: AdmissionController,
    ) -> None:
        validate_arrivals(arrivals, "service workload")
        self._arrivals = list(arrivals)
        self._next = 0
        self.admission = admission

    # ------------------------------------------------------------- interface
    def next_event_time(self) -> Optional[float]:
        if self._next >= len(self._arrivals):
            return None
        return self._arrivals[self._next].time

    def poll(self, now: float) -> List[AdmittedQuery]:
        admitted: List[AdmittedQuery] = []
        while (
            self._next < len(self._arrivals)
            and self._arrivals[self._next].time <= now + _EPS
        ):
            arrival = self._arrivals[self._next]
            self._next += 1
            entry = self.admission.offer(arrival.spec, arrival.time)
            if entry is not None:
                admitted.append(
                    AdmittedQuery(
                        spec=entry.spec,
                        stream=NO_STREAM,
                        submit_time=entry.submit_time,
                    )
                )
        return admitted

    def on_complete(self, query_id: int, now: float) -> List[AdmittedQuery]:
        entry = self.admission.release()
        if entry is None:
            return []
        return [
            AdmittedQuery(
                spec=entry.spec,
                stream=NO_STREAM,
                submit_time=entry.submit_time,
            )
        ]

    def drained(self) -> bool:
        return self._next >= len(self._arrivals) and not self.admission.has_queued()

    def describe(self) -> Dict[str, object]:
        return {
            "workload": "open-system",
            "num_arrivals": len(self._arrivals),
            **self.admission.describe(),
        }


@dataclass
class ServiceResult:
    """Outcome of one open-system service run under one policy."""

    run: RunResult
    slo: SLOReport
    service: ServiceConfig


def run_service(
    arrivals: Sequence[Arrival],
    config: SystemConfig,
    abm: AnyABM,
    service: ServiceConfig,
    record_trace: bool = False,
) -> ServiceResult:
    """Run one arrival sequence through admission control against one ABM."""
    admission = AdmissionController(service)
    source = OpenSystemSource(arrivals, admission)
    run = run_simulation(source, config, abm, record_trace=record_trace)
    slo = build_slo_report(
        run,
        offered=admission.offered,
        shed=admission.shed_count,
        max_queue_len=admission.max_queue_len,
        offered_rate_qps=offered_rate(arrivals),
        admitted=admission.admitted,
    )
    return ServiceResult(run=run, slo=slo, service=service)


def compare_service_policies(
    arrivals: Sequence[Arrival],
    config: SystemConfig,
    abm_factory_for_policy: Callable[[str], Callable[[], AnyABM]],
    service: ServiceConfig,
    policies: Sequence[str] = ("normal", "attach", "elevator", "relevance"),
) -> Dict[str, ServiceResult]:
    """Serve the identical arrival sequence under each scheduling policy."""
    results: Dict[str, ServiceResult] = {}
    for policy in policies:
        abm = abm_factory_for_policy(policy)()
        results[policy] = run_service(arrivals, config, abm, service)
    return results
