"""The open-system service loop.

:class:`OpenSystemSource` adapts the shared front-door pipeline
(:class:`repro.service.frontdoor.FrontDoor`: arrivals -> classification ->
per-class admission -> completion/release) to the simulator's
:class:`repro.sim.source.QuerySource` interface: queries register with the
ABM at their *admitted* time (not at a stream position), wait in their
class's admission queue while the multiprogramming level is saturated, and
release capacity when they complete.  The sharded cluster front door
(:mod:`repro.cluster.coordinator`) drives the very same pipeline — the
only difference is that it scatters each admitted query across shards.

:func:`run_service` wires the pieces together for one policy and returns
the raw :class:`RunResult` alongside the :class:`SLOReport` (including the
per-class slices and the MPL trajectory when the adaptive controller is
active); :func:`compare_service_policies` repeats the identical arrival
sequence under several scheduling policies, which is the open-system
analogue of :func:`repro.sim.sweeps.compare_policies`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.config import ServiceConfig, SystemConfig
from repro.metrics.timeline import validate_timeline
from repro.obs.alerts import (
    Alert,
    AlertPolicy,
    QueryCompletion,
    evaluate_alerts,
    render_health_digest,
)
from repro.obs.postmortem import build_blame_report
from repro.obs.recorder import (
    FlightRecorder,
    ObservabilityLike,
    build_flight_recorder,
)
from repro.service.admission import AdmissionController, layout_aware_job_size
from repro.service.arrivals import Arrival, offered_rate
from repro.service.frontdoor import FrontDoor, MPLController
from repro.service.slo import SLOReport, build_slo_report
from repro.sim.results import RunResult
from repro.sim.runner import AnyABM, run_simulation
from repro.sim.source import NO_STREAM, AdmittedQuery, QuerySource


class OpenSystemSource(QuerySource):
    """Feeds the shared front-door pipeline into one simulator."""

    def __init__(
        self,
        arrivals: Sequence[Arrival],
        admission: AdmissionController,
        mpl_controller: Optional[MPLController] = None,
        loads_probe: Optional[Callable[[int], int]] = None,
        obs: Optional[FlightRecorder] = None,
    ) -> None:
        self.frontdoor = FrontDoor(
            arrivals,
            admission,
            mpl_controller=mpl_controller,
            loads_probe=loads_probe,
            obs=obs,
        )

    @property
    def admission(self) -> AdmissionController:
        """The front door's admission controller (counters, queues)."""
        return self.frontdoor.admission

    # ------------------------------------------------------------- interface
    def next_event_time(self) -> Optional[float]:
        return self.frontdoor.next_arrival_time()

    def poll(self, now: float) -> List[AdmittedQuery]:
        return [self._admitted(entry) for entry in self.frontdoor.pump(now)]

    def on_complete(self, query_id: int, now: float) -> List[AdmittedQuery]:
        return [
            self._admitted(entry)
            for entry in self.frontdoor.on_complete(query_id, now)
        ]

    def drained(self) -> bool:
        return self.frontdoor.drained()

    def describe(self) -> Dict[str, object]:
        return {"workload": "open-system", **self.frontdoor.describe()}

    @staticmethod
    def _admitted(entry) -> AdmittedQuery:
        return AdmittedQuery(
            spec=entry.spec,
            stream=NO_STREAM,
            submit_time=entry.submit_time,
        )


@dataclass
class ServiceResult:
    """Outcome of one open-system service run under one policy."""

    run: RunResult
    slo: SLOReport
    service: ServiceConfig
    #: ``(time, mpl)`` trajectory of the enforced MPL limit — a single
    #: entry at time 0 for the static controller, one more entry per
    #: adjustment the adaptive controller made.
    mpl_timeline: Tuple[Tuple[float, int], ...] = field(default_factory=tuple)
    #: The flight recorder that observed the run (``None`` when
    #: observability was not requested); holds the trace events, the
    #: metrics timelines and the recorder-overhead accounting.
    obs: Optional[FlightRecorder] = None
    #: Alert episodes that fired during the run (empty when no
    #: :class:`repro.obs.alerts.AlertPolicy` was evaluated, or when the run
    #: stayed healthy).
    alerts: Tuple[Alert, ...] = field(default_factory=tuple)

    @property
    def final_mpl(self) -> int:
        """The MPL in force when the run ended."""
        return self.mpl_timeline[-1][1] if self.mpl_timeline else 0

    def health_digest(self, title: str = "Service health digest") -> str:
        """Render the run's firing alerts (or a clean bill of health)."""
        return render_health_digest(self.alerts, self.run.total_time, title=title)


def run_service(
    arrivals: Sequence[Arrival],
    config: SystemConfig,
    abm: AnyABM,
    service: ServiceConfig,
    record_trace: bool = False,
    mpl_controller: Optional[MPLController] = None,
    obs: ObservabilityLike = None,
    alerts: Optional[AlertPolicy] = None,
) -> ServiceResult:
    """Run one arrival sequence through the front door against one ABM.

    The admission queues rank shortest-job-first entries with a job size
    that is layout-aware when the ABM exposes its table layout (DSM scans
    weight chunks by the pages of their requested columns); the MPL is
    governed by ``service.adaptive`` (or an explicitly passed controller),
    falling back to the static ``max_concurrent`` limit.

    ``obs`` takes an :class:`repro.common.config.ObservabilityConfig` (or a
    pre-built :class:`FlightRecorder` to share across runs) and threads one
    flight recorder through the front door, the simulator, the ABM and the
    disk volumes; the recorder comes back on ``ServiceResult.obs``.  The
    default (``None``) records nothing and leaves the run bit-for-bit
    identical to an unobserved one.

    ``alerts`` optionally evaluates an :class:`repro.obs.alerts.AlertPolicy`
    against the finished run — burn-rate rules over the per-query
    completions and threshold rules over the ``"disk"`` busy timeline —
    returning the firing episodes on :attr:`ServiceResult.alerts`.
    """
    recorder = build_flight_recorder(obs)
    admission = AdmissionController(
        service, job_size=layout_aware_job_size(getattr(abm, "layout", None))
    )
    source = OpenSystemSource(
        arrivals,
        admission,
        mpl_controller=mpl_controller,
        loads_probe=lambda query_id: abm.loads_triggered.get(query_id, 0),
        obs=recorder,
    )
    run = run_simulation(source, config, abm, record_trace=record_trace, obs=recorder)
    mpl_timeline = tuple(source.frontdoor.mpl_timeline)
    validate_timeline(mpl_timeline, where="service MPL timeline")
    slo = build_slo_report(
        run,
        offered=admission.offered,
        shed=admission.shed_count,
        max_queue_len=admission.max_queue_len,
        offered_rate_qps=offered_rate(arrivals),
        admitted=admission.admitted,
        classes=source.frontdoor.class_reports(),
    )
    blame = build_blame_report(
        (query.query_class, query.breakdown) for query in run.queries
    )
    if blame.overall.count:
        slo = replace(slo, blame=blame)
    fired: Tuple[Alert, ...] = ()
    if alerts is not None and not alerts.is_empty:
        completions = [
            QueryCompletion(
                finish_time=query.finish_time,
                query_class=query.query_class,
                breakdown=query.breakdown,
            )
            for query in run.queries
            if query.breakdown is not None
        ]
        fired = evaluate_alerts(
            alerts,
            completions,
            {"disk": run.disk_busy_timeline},
            run.total_time,
            obs=recorder,
            where="service alerts",
        )
    return ServiceResult(
        run=run,
        slo=slo,
        service=service,
        mpl_timeline=mpl_timeline,
        obs=recorder,
        alerts=fired,
    )


def compare_service_policies(
    arrivals: Sequence[Arrival],
    config: SystemConfig,
    abm_factory_for_policy: Callable[[str], Callable[[], AnyABM]],
    service: ServiceConfig,
    policies: Sequence[str] = ("normal", "attach", "elevator", "relevance"),
) -> Dict[str, ServiceResult]:
    """Serve the identical arrival sequence under each scheduling policy."""
    results: Dict[str, ServiceResult] = {}
    for policy in policies:
        abm = abm_factory_for_policy(policy)()
        results[policy] = run_service(arrivals, config, abm, service)
    return results
