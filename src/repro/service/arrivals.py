"""Open-system arrival generators.

The paper's experiments are *closed*: a fixed number of streams each run
their queries back to back, so the offered load adapts itself to the system's
speed.  A query *service* instead faces an open arrival process whose rate
does not care how busy the system is.  This module turns the existing
:class:`repro.workload.QueryTemplate` machinery into timestamped arrival
sequences:

* :func:`poisson_arrivals` — memoryless arrivals at a constant rate λ, the
  standard open-system model;
* :func:`onoff_arrivals` — bursty traffic alternating between ON windows
  (Poisson arrivals at a burst rate) and silent OFF windows, which stresses
  the admission queue far more than a smooth process of equal average rate;
* :func:`replay_arrivals` — a *trace replay* source: timestamped query logs
  (CSV or JSONL, see :func:`write_arrival_trace` for the format) are read
  back into the same :class:`Arrival` sequence, so real traces drive the
  same admission control and SLO reports as the synthetic generators.

The generators are deterministic given a seed (via
:func:`repro.common.rng.make_rng`): the same seed reproduces the exact same
arrival times *and* the same query instances (template choice and scanned
range).  Traces round-trip exactly: ``replay_arrivals(write_arrival_trace(
arrivals, path))`` reproduces the original sequence bit for bit (floats are
serialised with full precision).
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import DEFAULT_QUERY_CLASS
from repro.common.errors import ConfigurationError, SchedulingError
from repro.common.rng import make_rng
from repro.core.cscan import ScanRequest
from repro.workload.queries import AnyLayout, QueryTemplate, make_scan_request


@dataclass(frozen=True)
class Arrival:
    """One timestamped query arrival at the service boundary."""

    time: float
    spec: ScanRequest


#: Slack allowed in the sortedness check of :func:`validate_arrivals`
#: (matches the event cores' time-comparison epsilon).
_TIME_EPS = 1e-9


def validate_arrivals(
    arrivals: Sequence[Arrival], where: str = "service workload"
) -> None:
    """Check an arrival sequence is servable: non-empty, sorted by time,
    no duplicated query ids.

    Shared by every front door (the single-simulator
    :class:`repro.service.server.OpenSystemSource` and the cluster
    coordinator) so they reject malformed workloads identically.  Raises
    :class:`repro.common.errors.SimulationError` on violation.
    """
    from repro.common.errors import SimulationError

    if not arrivals:
        raise SimulationError(f"{where} contains no arrivals")
    seen_ids = set()
    previous = float("-inf")
    for arrival in arrivals:
        if arrival.time < previous - _TIME_EPS:
            raise SimulationError("arrivals must be sorted by time")
        previous = arrival.time
        if arrival.spec.query_id in seen_ids:
            raise SimulationError(
                f"duplicate query id {arrival.spec.query_id} in workload"
            )
        seen_ids.add(arrival.spec.query_id)


def _validate(
    templates: Sequence[QueryTemplate], rate_qps: float, num_queries: int
) -> None:
    if not templates:
        raise ConfigurationError("at least one query template is required")
    if rate_qps <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {rate_qps}")
    if num_queries < 1:
        raise ConfigurationError(f"need at least one query, got {num_queries}")


def poisson_arrivals(
    templates: Sequence[QueryTemplate],
    layout: AnyLayout,
    rate_qps: float,
    num_queries: int,
    seed: int = 0,
    start_time: float = 0.0,
    first_query_id: int = 0,
) -> List[Arrival]:
    """``num_queries`` Poisson arrivals at rate ``rate_qps`` (queries/s).

    Inter-arrival gaps are exponential with mean ``1 / rate_qps``; each
    arrival draws a template uniformly and instantiates it over a fresh
    random range, exactly like :func:`repro.workload.build_streams` does for
    closed streams.  Query ids are consecutive from ``first_query_id``.
    """
    _validate(templates, rate_qps, num_queries)
    rng = make_rng(seed)
    arrivals: List[Arrival] = []
    now = start_time
    for index in range(num_queries):
        now += float(rng.exponential(1.0 / rate_qps))
        template = templates[int(rng.integers(0, len(templates)))]
        spec = make_scan_request(template, first_query_id + index, layout, rng)
        arrivals.append(Arrival(time=now, spec=spec))
    return arrivals


def onoff_arrivals(
    templates: Sequence[QueryTemplate],
    layout: AnyLayout,
    burst_rate_qps: float,
    num_queries: int,
    on_s: float,
    off_s: float,
    seed: int = 0,
    start_time: float = 0.0,
    first_query_id: int = 0,
) -> List[Arrival]:
    """Bursty ON/OFF arrivals: Poisson bursts separated by silent gaps.

    The process alternates between ON windows of ``on_s`` seconds, during
    which arrivals are Poisson at ``burst_rate_qps``, and OFF windows of
    ``off_s`` seconds with no arrivals.  The long-run average rate is
    ``burst_rate_qps * on_s / (on_s + off_s)``.

    Implemented by running a plain Poisson process on the *active* (ON-duty)
    time axis and mapping it onto the wall clock, so determinism and the
    exact burst rate inside windows come for free.
    """
    _validate(templates, burst_rate_qps, num_queries)
    if on_s <= 0 or off_s < 0:
        raise ConfigurationError(
            f"need on_s > 0 and off_s >= 0, got on_s={on_s}, off_s={off_s}"
        )
    rng = make_rng(seed)
    arrivals: List[Arrival] = []
    active = 0.0
    for index in range(num_queries):
        active += float(rng.exponential(1.0 / burst_rate_qps))
        windows = int(active // on_s)
        wall = start_time + windows * (on_s + off_s) + (active - windows * on_s)
        template = templates[int(rng.integers(0, len(templates)))]
        spec = make_scan_request(template, first_query_id + index, layout, rng)
        arrivals.append(Arrival(time=wall, spec=spec))
    return arrivals


# --------------------------------------------------------------- trace replay
#: CSV header of an arrival trace (one row per arrival).  ``query_class``
#: is optional on read (traces written before workload classes existed
#: replay into the default class).
_TRACE_FIELDS = (
    "time", "query_id", "name", "chunks", "columns", "cpu_per_chunk",
    "query_class",
)


def _chunk_runs(chunks: Sequence[int]) -> List[Tuple[int, int]]:
    """Compress a sorted chunk list into inclusive ``(start, end)`` runs."""
    runs: List[Tuple[int, int]] = []
    for chunk in chunks:
        if runs and chunk == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], chunk)
        else:
            runs.append((chunk, chunk))
    return runs


def _encode_chunks(chunks: Sequence[int]) -> str:
    """Chunk list as compact ``"0-31;40;52-60"`` range notation."""
    return ";".join(
        str(start) if start == end else f"{start}-{end}"
        for start, end in _chunk_runs(chunks)
    )


def _decode_chunks(text: str, where: str) -> Tuple[int, ...]:
    """Parse ``"0-31;40"`` range notation back into a chunk tuple."""
    chunks: List[int] = []
    for token in text.split(";"):
        token = token.strip()
        if not token:
            continue
        start, dash, end = token.partition("-")
        try:
            if dash:
                first, last = int(start), int(end)
                if first > last:
                    raise ConfigurationError(
                        f"{where}: reversed chunk range {token!r} "
                        "(start must not exceed end)"
                    )
                chunks.extend(range(first, last + 1))
            else:
                chunks.append(int(token))
        except ValueError:
            raise ConfigurationError(
                f"{where}: malformed chunk token {token!r} "
                "(expected an integer or 'start-end' range)"
            )
    return tuple(chunks)


def _trace_format(path: str) -> str:
    """``"csv"`` or ``"jsonl"``, decided by the file extension."""
    extension = os.path.splitext(path)[1].lower()
    if extension == ".csv":
        return "csv"
    if extension in (".jsonl", ".ndjson", ".json"):
        return "jsonl"
    raise ConfigurationError(
        f"unknown trace format {extension!r} for {path!r} "
        "(expected .csv, .jsonl, .ndjson or .json)"
    )


def _record_to_arrival(record: Dict[str, object], where: str) -> Arrival:
    """Build one :class:`Arrival` from a parsed trace record."""
    missing = [key for key in ("time", "query_id", "chunks") if key not in record]
    if missing:
        raise ConfigurationError(f"{where}: missing field(s) {missing}")
    try:
        time = float(record["time"])  # type: ignore[arg-type]
        query_id = int(record["query_id"])  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{where}: 'time' must be a number and 'query_id' an integer"
        )
    raw_chunks = record["chunks"]
    if isinstance(raw_chunks, str):
        chunks = _decode_chunks(raw_chunks, where)
    else:
        try:
            chunks = tuple(int(chunk) for chunk in raw_chunks)  # type: ignore[union-attr]
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"{where}: 'chunks' must be a list of integers or range notation"
            )
    raw_columns = record.get("columns", ())
    if isinstance(raw_columns, str):
        columns = tuple(
            token.strip() for token in raw_columns.split(";") if token.strip()
        )
    else:
        columns = tuple(str(column) for column in raw_columns)  # type: ignore[union-attr]
    try:
        cpu_per_chunk = float(record.get("cpu_per_chunk", 0.0) or 0.0)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{where}: 'cpu_per_chunk' must be a number")
    query_class = str(record.get("query_class") or DEFAULT_QUERY_CLASS)
    try:
        spec = ScanRequest(
            query_id=query_id,
            name=str(record.get("name") or f"trace-{query_id}"),
            chunks=tuple(sorted(set(chunks))),
            columns=columns,
            cpu_per_chunk=cpu_per_chunk,
            query_class=query_class,
        )
    except SchedulingError as error:
        # ScanRequest's own validation (empty/negative chunk sets, ...)
        # must surface with the trace location like every other parse error.
        raise ConfigurationError(f"{where}: invalid query record ({error})")
    return Arrival(time=time, spec=spec)


def write_arrival_trace(arrivals: Sequence[Arrival], path: str) -> str:
    """Serialise an arrival sequence as a timestamped query log.

    The format follows the file extension: ``.csv`` writes one header row
    plus one row per arrival (chunks in compact ``"0-31;40"`` range
    notation, columns ``;``-joined), ``.jsonl`` / ``.ndjson`` / ``.json``
    write one JSON object per line.  Floats are serialised with ``repr``
    precision, so :func:`replay_arrivals` round-trips bit for bit.
    Returns ``path`` for convenient chaining.
    """
    fmt = _trace_format(path)
    for arrival in arrivals:
        spec = arrival.spec
        # Reject what the trace notation cannot represent faithfully: ';'
        # delimits column names, and an empty name would replay as the
        # "trace-<id>" default — both would round-trip to a different query.
        if any(";" in column for column in spec.columns):
            raise ConfigurationError(
                f"query {spec.query_id}: column names containing ';' cannot "
                "be serialised to an arrival trace"
            )
        if not spec.name:
            raise ConfigurationError(
                f"query {spec.query_id}: queries need a non-empty name to "
                "round-trip through an arrival trace"
            )
    with open(path, "w", newline="") as handle:
        if fmt == "csv":
            writer = csv.writer(handle)
            writer.writerow(_TRACE_FIELDS)
            for arrival in arrivals:
                spec = arrival.spec
                writer.writerow(
                    [
                        repr(arrival.time),
                        spec.query_id,
                        spec.name,
                        _encode_chunks(spec.chunks),
                        ";".join(spec.columns),
                        repr(spec.cpu_per_chunk),
                        spec.query_class,
                    ]
                )
        else:
            for arrival in arrivals:
                spec = arrival.spec
                handle.write(
                    json.dumps(
                        {
                            "time": arrival.time,
                            "query_id": spec.query_id,
                            "name": spec.name,
                            "chunks": _encode_chunks(spec.chunks),
                            "columns": list(spec.columns),
                            "cpu_per_chunk": spec.cpu_per_chunk,
                            "query_class": spec.query_class,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
    return path


def replay_arrivals(path: str) -> List[Arrival]:
    """Read a timestamped query log back into an arrival sequence.

    Accepts the two formats :func:`write_arrival_trace` produces (and, for
    logs written by other tools, explicit chunk lists in JSONL records).
    Records are sorted by timestamp — real-world logs are often only
    approximately ordered — with ties kept in file order; query ids must be
    unique, which the admission source re-checks on use.
    """
    fmt = _trace_format(path)
    arrivals: List[Arrival] = []
    with open(path, newline="") as handle:
        if fmt == "csv":
            reader = csv.DictReader(handle)
            if reader.fieldnames is None:
                raise ConfigurationError(f"{path}: empty trace (no header row)")
            for line, row in enumerate(reader, start=2):
                arrivals.append(_record_to_arrival(row, f"{path}:{line}"))
        else:
            for line, text in enumerate(handle, start=1):
                text = text.strip()
                if not text:
                    continue
                try:
                    record = json.loads(text)
                except json.JSONDecodeError as error:
                    raise ConfigurationError(
                        f"{path}:{line}: malformed JSON ({error})"
                    )
                if not isinstance(record, dict):
                    raise ConfigurationError(
                        f"{path}:{line}: expected one JSON object per line"
                    )
                arrivals.append(_record_to_arrival(record, f"{path}:{line}"))
    if not arrivals:
        raise ConfigurationError(f"{path}: trace contains no arrivals")
    return sorted(arrivals, key=lambda arrival: arrival.time)


def offered_rate(arrivals: Sequence[Arrival]) -> float:
    """Empirical offered load (queries/s) of an arrival sequence."""
    if len(arrivals) < 2:
        return 0.0
    span = arrivals[-1].time - arrivals[0].time
    if span <= 0:
        return float("inf")
    return (len(arrivals) - 1) / span
