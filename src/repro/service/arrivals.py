"""Open-system arrival generators.

The paper's experiments are *closed*: a fixed number of streams each run
their queries back to back, so the offered load adapts itself to the system's
speed.  A query *service* instead faces an open arrival process whose rate
does not care how busy the system is.  This module turns the existing
:class:`repro.workload.QueryTemplate` machinery into timestamped arrival
sequences:

* :func:`poisson_arrivals` — memoryless arrivals at a constant rate λ, the
  standard open-system model;
* :func:`onoff_arrivals` — bursty traffic alternating between ON windows
  (Poisson arrivals at a burst rate) and silent OFF windows, which stresses
  the admission queue far more than a smooth process of equal average rate.

Both are deterministic given a seed (via :func:`repro.common.rng.make_rng`):
the same seed reproduces the exact same arrival times *and* the same query
instances (template choice and scanned range).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.core.cscan import ScanRequest
from repro.workload.queries import AnyLayout, QueryTemplate, make_scan_request


@dataclass(frozen=True)
class Arrival:
    """One timestamped query arrival at the service boundary."""

    time: float
    spec: ScanRequest


def _validate(
    templates: Sequence[QueryTemplate], rate_qps: float, num_queries: int
) -> None:
    if not templates:
        raise ConfigurationError("at least one query template is required")
    if rate_qps <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {rate_qps}")
    if num_queries < 1:
        raise ConfigurationError(f"need at least one query, got {num_queries}")


def poisson_arrivals(
    templates: Sequence[QueryTemplate],
    layout: AnyLayout,
    rate_qps: float,
    num_queries: int,
    seed: int = 0,
    start_time: float = 0.0,
    first_query_id: int = 0,
) -> List[Arrival]:
    """``num_queries`` Poisson arrivals at rate ``rate_qps`` (queries/s).

    Inter-arrival gaps are exponential with mean ``1 / rate_qps``; each
    arrival draws a template uniformly and instantiates it over a fresh
    random range, exactly like :func:`repro.workload.build_streams` does for
    closed streams.  Query ids are consecutive from ``first_query_id``.
    """
    _validate(templates, rate_qps, num_queries)
    rng = make_rng(seed)
    arrivals: List[Arrival] = []
    now = start_time
    for index in range(num_queries):
        now += float(rng.exponential(1.0 / rate_qps))
        template = templates[int(rng.integers(0, len(templates)))]
        spec = make_scan_request(template, first_query_id + index, layout, rng)
        arrivals.append(Arrival(time=now, spec=spec))
    return arrivals


def onoff_arrivals(
    templates: Sequence[QueryTemplate],
    layout: AnyLayout,
    burst_rate_qps: float,
    num_queries: int,
    on_s: float,
    off_s: float,
    seed: int = 0,
    start_time: float = 0.0,
    first_query_id: int = 0,
) -> List[Arrival]:
    """Bursty ON/OFF arrivals: Poisson bursts separated by silent gaps.

    The process alternates between ON windows of ``on_s`` seconds, during
    which arrivals are Poisson at ``burst_rate_qps``, and OFF windows of
    ``off_s`` seconds with no arrivals.  The long-run average rate is
    ``burst_rate_qps * on_s / (on_s + off_s)``.

    Implemented by running a plain Poisson process on the *active* (ON-duty)
    time axis and mapping it onto the wall clock, so determinism and the
    exact burst rate inside windows come for free.
    """
    _validate(templates, burst_rate_qps, num_queries)
    if on_s <= 0 or off_s < 0:
        raise ConfigurationError(
            f"need on_s > 0 and off_s >= 0, got on_s={on_s}, off_s={off_s}"
        )
    rng = make_rng(seed)
    arrivals: List[Arrival] = []
    active = 0.0
    for index in range(num_queries):
        active += float(rng.exponential(1.0 / burst_rate_qps))
        windows = int(active // on_s)
        wall = start_time + windows * (on_s + off_s) + (active - windows * on_s)
        template = templates[int(rng.integers(0, len(templates)))]
        spec = make_scan_request(template, first_query_id + index, layout, rng)
        arrivals.append(Arrival(time=wall, spec=spec))
    return arrivals


def offered_rate(arrivals: Sequence[Arrival]) -> float:
    """Empirical offered load (queries/s) of an arrival sequence."""
    if len(arrivals) < 2:
        return 0.0
    span = arrivals[-1].time - arrivals[0].time
    if span <= 0:
        return float("inf")
    return (len(arrivals) - 1) / span
