"""Latency-SLO metrics for the open-system query service.

A service run is judged on quantities the closed-system tables never need:

* **end-to-end latency** per query (submission to completion, i.e. queue
  wait plus execution) and its tail percentiles p50/p95/p99, which is what
  a latency SLO is written against;
* **queue wait** on its own, separating admission delay from execution;
* **throughput** actually delivered (completed queries per second) versus
  the offered load; and
* **shed rate**, the fraction of arrivals the admission controller rejected.

:func:`build_slo_report` derives all of these from a :class:`RunResult`
plus the admission controller's counters; :func:`render_slo_table` prints
one row per policy in the style of the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.report import format_table
from repro.metrics.stats import LatencySummary
from repro.net.resources import CoordinatorSLO
from repro.obs.postmortem import BlameReport
from repro.sim.results import RunResult


@dataclass(frozen=True)
class ClassSLO:
    """Per-workload-class slice of a service run's SLO metrics.

    Built by the front door (:meth:`repro.service.frontdoor.FrontDoor.
    class_reports`) from the class's completed queries and its admission
    queue counters, so interactive vs batch latency — and who got shed
    under overload — is visible per class instead of being averaged away.
    """

    query_class: str
    weight: float
    offered: int
    admitted: int
    completed: int
    shed: int
    max_queue_len: int
    latency: LatencySummary
    queue_wait: LatencySummary
    execution: LatencySummary

    @property
    def shed_rate(self) -> float:
        """Fraction of this class's arrivals rejected by admission control."""
        if self.offered <= 0:
            return 0.0
        return self.shed / self.offered

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary (for JSON reports)."""
        return {
            "weight": self.weight,
            "offered": float(self.offered),
            "admitted": float(self.admitted),
            "completed": float(self.completed),
            "shed": float(self.shed),
            "shed_rate": self.shed_rate,
            "max_queue_len": float(self.max_queue_len),
            "latency_p50": self.latency.p50,
            "latency_p95": self.latency.p95,
            "latency_p99": self.latency.p99,
            "latency_mean": self.latency.mean,
            "queue_wait_p95": self.queue_wait.p95,
            "execution_p95": self.execution.p95,
        }


@dataclass(frozen=True)
class AvailabilitySLO:
    """Replication/failure accounting attached to a cluster SLO report.

    Built by the cluster coordinator when the configuration is *resilient*
    (replicas, a failure schedule, or hedging); carries the per-shard
    up/degraded timelines plus the counters that explain where failure-era
    latency went — hedges fired/won, orphan re-scatters, and the latency
    split between failure-affected and unaffected queries.
    """

    #: Replication factor the cluster ran with.
    replicas: int
    #: Per-shard ``(time, state)`` health timelines; states are ``"up"``,
    #: ``"degraded"`` and ``"down"``, starting ``(0.0, "up")``.
    shard_timelines: Tuple[Tuple[Tuple[float, str], ...], ...]
    #: Seconds each shard spent killed over the run.
    downtime_s: Tuple[float, ...]
    #: Seconds each shard spent degraded over the run.
    degraded_s: Tuple[float, ...]
    kills: int
    degrades: int
    repairs: int
    #: Hedged duplicates scattered / hedges whose duplicate won / racing
    #: copies cancelled after a first completion.
    hedges_fired: int
    hedges_won: int
    hedges_cancelled: int
    #: Sub-query groups re-scattered to another replica after a kill.
    rescatters: int
    #: Sub-query groups that found no live replica and had to wait for a
    #: repair (0 on any run that completed with R > 1 coverage).
    orphaned: int
    #: Queries whose latency was touched by a failure, hedge or re-scatter.
    affected_queries: int
    affected_latency: LatencySummary
    unaffected_latency: LatencySummary

    @property
    def availability(self) -> float:
        """Mean fraction of shard-seconds the fleet spent fully up."""
        if not self.shard_timelines:
            return 1.0
        spans = []
        for shard in range(len(self.downtime_s)):
            last = self.shard_timelines[shard][-1][0] if self.shard_timelines[shard] else 0.0
            spans.append(last)
        span = max(spans + [0.0])
        if span <= 0.0:
            return 1.0
        lost = sum(self.downtime_s) + sum(self.degraded_s)
        return max(0.0, 1.0 - lost / (span * len(self.downtime_s)))

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view (merged into ``SLOReport.as_dict``)."""
        return {
            "replicas": self.replicas,
            "kills": self.kills,
            "degrades": self.degrades,
            "repairs": self.repairs,
            "hedges_fired": self.hedges_fired,
            "hedges_won": self.hedges_won,
            "hedges_cancelled": self.hedges_cancelled,
            "rescatters": self.rescatters,
            "orphaned": self.orphaned,
            "affected_queries": self.affected_queries,
            "affected_latency_p95": self.affected_latency.p95,
            "affected_latency_p99": self.affected_latency.p99,
            "unaffected_latency_p95": self.unaffected_latency.p95,
            "unaffected_latency_p99": self.unaffected_latency.p99,
            **{
                f"shard{shard}_downtime_s": value
                for shard, value in enumerate(self.downtime_s)
            },
            **{
                f"shard{shard}_degraded_s": value
                for shard, value in enumerate(self.degraded_s)
            },
        }


@dataclass(frozen=True)
class SLOReport:
    """Service-level summary of one open-system run under one policy."""

    policy: str
    offered: int
    admitted: int
    completed: int
    shed: int
    duration: float
    offered_rate_qps: float
    max_queue_len: int
    latency: LatencySummary
    queue_wait: LatencySummary
    execution: LatencySummary
    #: Mean busy fraction over all disk volumes during the run.
    disk_utilisation: float = 0.0
    #: Busy fraction of each individual disk volume (one entry per volume).
    volume_utilisation: Tuple[float, ...] = ()
    #: Per-workload-class slices of the same run (empty for reports built
    #: without a front door, e.g. per-shard sub-query reports).
    classes: Tuple[ClassSLO, ...] = ()
    #: Coordinator CPU/NIC accounting — only present on cluster reports
    #: whose configuration models the coordinator as a real resource
    #: (``None`` otherwise, including every single-node report, so frozen
    #: equality with :func:`repro.service.run_service` reports still holds
    #: on the zero-cost path).
    coordinator: Optional[CoordinatorSLO] = None
    #: Replication/failure accounting — only present on cluster reports
    #: whose configuration is resilient (replicas > 1, a failure schedule,
    #: or hedging); ``None`` preserves frozen equality on the legacy path.
    availability: Optional[AvailabilitySLO] = None
    #: Per-class latency blame tables aggregated from the always-on
    #: :class:`repro.obs.postmortem.LatencyBreakdown` stamps ("interactive
    #: p95 = 61% disk transfer, 22% admission wait").  Deliberately *not*
    #: part of :meth:`as_dict`, so SLO dictionaries stay bit-for-bit
    #: identical to pre-postmortem runs.
    blame: Optional[BlameReport] = None

    @property
    def num_volumes(self) -> int:
        """Number of disk volumes the run was served from."""
        return max(1, len(self.volume_utilisation))

    @property
    def shed_rate(self) -> float:
        """Fraction of offered queries rejected by admission control."""
        if self.offered <= 0:
            return 0.0
        return self.shed / self.offered

    @property
    def throughput_qps(self) -> float:
        """Completed queries per second of simulated time."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    def meets(self, p95_latency_slo: float) -> bool:
        """Did the run keep p95 end-to-end latency within the SLO without
        shedding any queries?"""
        return self.shed == 0 and self.latency.p95 <= p95_latency_slo

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary (for reports and EXPERIMENTS.md generation)."""
        return {
            "offered": float(self.offered),
            "admitted": float(self.admitted),
            "completed": float(self.completed),
            "shed": float(self.shed),
            "shed_rate": self.shed_rate,
            "duration": self.duration,
            "offered_rate_qps": self.offered_rate_qps,
            "throughput_qps": self.throughput_qps,
            "max_queue_len": float(self.max_queue_len),
            "latency_p50": self.latency.p50,
            "latency_p95": self.latency.p95,
            "latency_p99": self.latency.p99,
            "latency_mean": self.latency.mean,
            "queue_wait_p95": self.queue_wait.p95,
            "queue_wait_mean": self.queue_wait.mean,
            "execution_p95": self.execution.p95,
            "disk_utilisation": self.disk_utilisation,
            "num_volumes": float(self.num_volumes),
            **{
                f"volume_{index}_utilisation": value
                for index, value in enumerate(self.volume_utilisation)
            },
            **{
                f"class_{report.query_class}_{key}": value
                for report in self.classes
                for key, value in report.as_dict().items()
            },
            **(
                {
                    f"coordinator_{key}": value
                    for key, value in self.coordinator.as_dict().items()
                }
                if self.coordinator is not None
                else {}
            ),
            **(
                {
                    f"availability_{key}": value
                    for key, value in self.availability.as_dict().items()
                }
                if self.availability is not None
                else {}
            ),
        }

    def class_report(self, query_class: str) -> ClassSLO:
        """The per-class slice for ``query_class`` (raises if absent)."""
        for report in self.classes:
            if report.query_class == query_class:
                return report
        raise KeyError(
            f"no class {query_class!r} in report "
            f"(classes: {[r.query_class for r in self.classes]})"
        )


def build_slo_report(
    result: RunResult,
    offered: int,
    shed: int,
    max_queue_len: int = 0,
    offered_rate_qps: float = 0.0,
    admitted: Optional[int] = None,
    classes: Tuple[ClassSLO, ...] = (),
) -> SLOReport:
    """Summarise one open-system run into its SLO metrics.

    ``admitted`` defaults to the number of completed queries, which is exact
    for runs driven to completion; pass the admission controller's counter
    when summarising partial runs.  ``classes`` carries the front door's
    per-class slices (:meth:`repro.service.frontdoor.FrontDoor.class_reports`).
    """
    queries = result.queries
    return SLOReport(
        policy=result.policy,
        offered=offered,
        admitted=len(queries) if admitted is None else admitted,
        completed=len(queries),
        shed=shed,
        duration=result.total_time,
        offered_rate_qps=offered_rate_qps,
        max_queue_len=max_queue_len,
        latency=LatencySummary.from_values(
            [query.end_to_end_latency for query in queries]
        ),
        queue_wait=LatencySummary.from_values(
            [query.queue_wait for query in queries]
        ),
        execution=LatencySummary.from_values(
            [query.latency for query in queries]
        ),
        disk_utilisation=result.disk_utilisation,
        volume_utilisation=tuple(result.volume_utilisation),
        classes=classes,
    )


def merge_shard_slo_reports(
    shard_reports: Sequence[SLOReport],
    end_to_end: Sequence[float],
    queue_waits: Sequence[float],
    executions: Sequence[float],
    offered: int,
    admitted: int,
    completed: int,
    shed: int,
    max_queue_len: int = 0,
    offered_rate_qps: float = 0.0,
    classes: Tuple[ClassSLO, ...] = (),
    coordinator: Optional[CoordinatorSLO] = None,
    duration: Optional[float] = None,
    availability: Optional[AvailabilitySLO] = None,
) -> SLOReport:
    """Gather per-shard reports into one cluster-level :class:`SLOReport`.

    The latency samples (``end_to_end`` / ``queue_waits`` / ``executions``)
    are *whole-query* quantities measured by the cluster coordinator —
    sub-query latencies cannot simply be concatenated, a query is only as
    fast as its slowest sub-query.  The shard reports contribute the
    utilisation side: every shard volume becomes one entry of the merged
    ``volume_utilisation`` (the way :func:`render_volume_utilisation`
    aggregates volumes), re-normalised to the cluster makespan so shards
    that finished early count as idle for the remainder.  The front-queue
    counters (``offered`` … ``max_queue_len``) come from the cluster's
    single admission controller, and ``classes`` carries the front door's
    per-class slices — whole-query quantities too, because a class's p95 is
    defined over its queries, not its sub-queries.

    With a single shard every merged quantity reduces to the shard's own
    (the scale factor is exactly 1.0 and is skipped), preserving the
    1-shard golden-trace equivalence with :func:`run_service` reports.

    ``coordinator`` attaches the coordinator's own CPU/NIC accounting when
    the cluster models it as a real resource; ``duration`` then overrides
    the makespan (the last gather-merge can finish after the slowest shard
    went idle).  Both default to the legacy free-coordinator behaviour.
    """
    if not shard_reports:
        raise ValueError("cannot merge zero shard reports")
    shard_span = max(report.duration for report in shard_reports)
    duration = shard_span if duration is None else max(duration, shard_span)
    busy_volume_seconds = 0.0
    total_volumes = 0
    volume_utilisation: List[float] = []
    for report in shard_reports:
        total_volumes += report.num_volumes
        busy_volume_seconds += (
            report.disk_utilisation * report.num_volumes * report.duration
        )
        per_volume = list(report.volume_utilisation) or [report.disk_utilisation]
        scale = report.duration / duration if duration > 0 else 0.0
        if scale == 1.0:
            volume_utilisation.extend(per_volume)
        else:
            volume_utilisation.extend(value * scale for value in per_volume)
    if len(shard_reports) == 1:
        disk_utilisation = shard_reports[0].disk_utilisation
    elif duration > 0 and total_volumes > 0:
        disk_utilisation = busy_volume_seconds / (total_volumes * duration)
    else:
        disk_utilisation = 0.0
    return SLOReport(
        policy=shard_reports[0].policy,
        offered=offered,
        admitted=admitted,
        completed=completed,
        shed=shed,
        duration=duration,
        offered_rate_qps=offered_rate_qps,
        max_queue_len=max_queue_len,
        latency=LatencySummary.from_values(end_to_end),
        queue_wait=LatencySummary.from_values(queue_waits),
        execution=LatencySummary.from_values(executions),
        disk_utilisation=disk_utilisation,
        volume_utilisation=tuple(volume_utilisation),
        classes=classes,
        coordinator=coordinator,
        availability=availability,
    )


def render_coordinator_table(
    reports: Sequence[SLOReport],
    title: Optional[str] = "Coordinator utilisation",
) -> str:
    """One row per policy: coordinator CPU/NIC utilisation and queue delays.

    Renders the :attr:`SLOReport.coordinator` sections; reports built
    without a modeled coordinator show ``-`` across the row.
    """
    headers = [
        "policy", "cpu%", "nic%", "peak%", "cpu ops", "msgs",
        "cpuQ max", "nicQ max", "warnings",
    ]
    rows: List[List[object]] = []
    for report in reports:
        section = report.coordinator
        if section is None:
            rows.append([report.policy] + ["-"] * (len(headers) - 1))
            continue
        rows.append(
            [
                report.policy,
                round(100.0 * section.cpu_utilisation, 1),
                round(100.0 * section.nic_utilisation, 1),
                round(100.0 * section.bottleneck_utilisation, 1),
                section.cpu_ops,
                section.nic_messages,
                round(section.cpu_queue_delay_max_s, 3),
                round(section.nic_queue_delay_max_s, 3),
                len(section.warnings) or "-",
            ]
        )
    return format_table(headers, rows, title=title)


def render_availability_table(
    reports: Sequence[SLOReport],
    title: Optional[str] = "Availability & failure handling",
) -> str:
    """One row per policy: failure counters, hedging and the latency split.

    Renders the :attr:`SLOReport.availability` sections; reports built
    without a resilient cluster show ``-`` across the row.
    """
    headers = [
        "policy", "R", "avail%", "kills", "repairs", "hedged", "won",
        "rescat", "orphan", "affected", "aff p99", "unaff p99",
    ]
    rows: List[List[object]] = []
    for report in reports:
        section = report.availability
        if section is None:
            rows.append([report.policy] + ["-"] * (len(headers) - 1))
            continue
        rows.append(
            [
                report.policy,
                section.replicas,
                round(100.0 * section.availability, 1),
                section.kills,
                section.repairs,
                section.hedges_fired,
                section.hedges_won,
                section.rescatters,
                section.orphaned,
                section.affected_queries,
                round(section.affected_latency.p99, 2),
                round(section.unaffected_latency.p99, 2),
            ]
        )
    return format_table(headers, rows, title=title)


def render_slo_table(
    reports: Sequence[SLOReport],
    title: Optional[str] = "Service-level statistics",
) -> str:
    """One row per policy: throughput, tail latencies, queue wait, shed rate."""
    headers = [
        "policy", "offered", "done", "shed%", "tput q/s",
        "lat p50", "lat p95", "lat p99", "wait p95", "maxQ", "disk%",
    ]
    rows: List[List[object]] = []
    for report in reports:
        rows.append(
            [
                report.policy,
                report.offered,
                report.completed,
                round(100.0 * report.shed_rate, 1),
                round(report.throughput_qps, 3),
                round(report.latency.p50, 2),
                round(report.latency.p95, 2),
                round(report.latency.p99, 2),
                round(report.queue_wait.p95, 2),
                report.max_queue_len,
                round(100.0 * report.disk_utilisation, 1),
            ]
        )
    return format_table(headers, rows, title=title)


def render_class_slo_table(
    report: SLOReport,
    title: Optional[str] = "Per-class service-level statistics",
) -> str:
    """One row per workload class: counts, shed rate and tail latencies.

    Renders the :attr:`SLOReport.classes` slices — the table that shows
    whether the interactive class kept its latency while batch volume grew,
    and which class paid the shedding under overload.
    """
    headers = [
        "class", "weight", "offered", "done", "shed", "shed%",
        "lat p50", "lat p95", "lat p99", "wait p95", "maxQ",
    ]
    rows: List[List[object]] = []
    for cls in report.classes:
        rows.append(
            [
                cls.query_class,
                round(cls.weight, 2),
                cls.offered,
                cls.completed,
                cls.shed,
                round(100.0 * cls.shed_rate, 1),
                round(cls.latency.p50, 2),
                round(cls.latency.p95, 2),
                round(cls.latency.p99, 2),
                round(cls.queue_wait.p95, 2),
                cls.max_queue_len,
            ]
        )
    return format_table(headers, rows, title=title)


def render_blame_table(
    report: SLOReport,
    title: Optional[str] = "Latency blame (critical-path attribution)",
    top_n: int = 3,
) -> str:
    """One row per workload class: where the latency actually went.

    Renders the :attr:`SLOReport.blame` section built from the always-on
    per-query breakdowns — mean blame over every completed query and tail
    blame over the queries at or above the class's p95 (the row that reads
    "interactive p95 = 61% disk transfer, 22% admission wait").  Reports
    without breakdowns render a single placeholder row.
    """

    def _phases(shares: Sequence[Tuple[str, float]]) -> str:
        if not shares:
            return "-"
        return ", ".join(
            f"{share:.0%} {name}" for name, share in shares
        )

    headers = [
        "class", "queries", "p95 s", "tail blame", "overall blame",
    ]
    rows: List[List[object]] = []
    blame = report.blame
    if blame is None:
        rows.append([report.policy, "-", "-", "-", "-"])
        return format_table(headers, rows, title=title)
    for section in (blame.overall,) + blame.classes:
        rows.append(
            [
                section.query_class,
                section.count,
                round(section.tail_threshold_s, 3),
                _phases(section.top_phases(top_n, tail=True)),
                _phases(section.top_phases(top_n, tail=False)),
            ]
        )
    return format_table(headers, rows, title=title)


def render_volume_utilisation(
    reports: Sequence[SLOReport],
    title: Optional[str] = "Per-volume disk utilisation",
) -> str:
    """One row per policy, one column per disk volume (busy percentages)."""
    num_volumes = max((report.num_volumes for report in reports), default=1)
    headers = ["policy"] + [f"vol{index}%" for index in range(num_volumes)]
    rows: List[List[object]] = []
    for report in reports:
        utilisation = list(report.volume_utilisation) or [report.disk_utilisation]
        row: List[object] = [report.policy]
        for index in range(num_volumes):
            if index < len(utilisation):
                row.append(round(100.0 * utilisation[index], 1))
            else:
                row.append("-")
        rows.append(row)
    return format_table(headers, rows, title=title)
