"""Admission control for the open-system query service.

Cooperative Scans thrive on *bounded* concurrency: the relevance policy
shares I/O between however many scans are active, but admitting every
arrival at high load would thrash the buffer pool and the CPU.  The
:class:`AdmissionController` therefore caps the number of concurrently
executing queries at a configurable multiprogramming level (MPL) and keeps
the excess in a bounded queue:

* while fewer than ``max_concurrent`` queries are executing, an arrival is
  admitted immediately;
* otherwise it waits in the admission queue — FIFO, or shortest-job-first
  under the ``"priority"`` discipline — until a running query completes;
* when the queue is full (``queue_capacity``), the arrival is *shed*
  (rejected) and recorded, so overload turns into an explicit shed rate
  instead of unbounded latency.

Everything is deterministic: ties in the priority discipline break on
submission order.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.config import ADMISSION_DISCIPLINES, ServiceConfig
from repro.common.errors import ConfigurationError
from repro.core.cscan import ScanRequest


@dataclass(frozen=True)
class QueuedQuery:
    """A query waiting in (or rejected from) the admission queue."""

    spec: ScanRequest
    submit_time: float


def _job_size(spec: ScanRequest) -> float:
    """Work estimate used by the shortest-job-first discipline.

    Chunk count covers the I/O side; adding the CPU budget separates
    fast from slow queries over the same range.
    """
    return spec.num_chunks * (1.0 + spec.cpu_per_chunk)


class AdmissionController:
    """Bounded-MPL admission queue with FIFO / shortest-job-first order."""

    def __init__(self, config: ServiceConfig) -> None:
        # ``ServiceConfig`` validates the discipline too, but a controller can
        # be handed a config built around that validation (tests, subclassed
        # configs); re-checking here guarantees ``_push``/``_pop`` agree on a
        # single queue rather than silently mixing orders.
        if config.discipline not in ADMISSION_DISCIPLINES:
            raise ConfigurationError(
                f"unknown admission discipline {config.discipline!r}; "
                f"expected one of {ADMISSION_DISCIPLINES}"
            )
        self.config = config
        #: Single switch consulted by both ``_push`` and ``_pop``, fixed at
        #: construction: either every entry goes through the heap or every
        #: entry goes through the FIFO, never a mixture.
        self._use_heap = config.discipline == "priority"
        self.active = 0
        self.offered = 0
        self.admitted = 0
        self.max_queue_len = 0
        self.shed: List[QueuedQuery] = []
        self._fifo: Deque[QueuedQuery] = deque()
        self._heap: List[Tuple[float, int, QueuedQuery]] = []
        self._seq = 0

    # -------------------------------------------------------------- queries
    @property
    def queue_len(self) -> int:
        """Number of queries currently waiting for admission."""
        return len(self._fifo) + len(self._heap)

    @property
    def shed_count(self) -> int:
        """Number of arrivals rejected because the queue was full."""
        return len(self.shed)

    def has_queued(self) -> bool:
        """``True`` while at least one query is waiting in the queue."""
        return self.queue_len > 0

    # ------------------------------------------------------------ lifecycle
    def offer(self, spec: ScanRequest, submit_time: float) -> Optional[QueuedQuery]:
        """Present one arrival to the controller.

        Returns the entry if it is admitted immediately; returns ``None``
        when the arrival was queued or shed (inspect :attr:`shed` /
        :attr:`queue_len` to tell the two apart).
        """
        self.offered += 1
        entry = QueuedQuery(spec=spec, submit_time=submit_time)
        if self.active < self.config.max_concurrent:
            self.active += 1
            self.admitted += 1
            return entry
        capacity = self.config.queue_capacity
        if capacity is None or self.queue_len < capacity:
            self._push(entry)
            self.max_queue_len = max(self.max_queue_len, self.queue_len)
            return None
        self.shed.append(entry)
        return None

    def release(self) -> Optional[QueuedQuery]:
        """Signal the completion of one admitted query.

        Frees its MPL slot and, if the queue is non-empty, immediately
        admits the next queued query (returned to the caller).
        """
        if self.active <= 0:
            raise ValueError("release() without a matching admission")
        self.active -= 1
        entry = self._pop()
        if entry is not None:
            self.active += 1
            self.admitted += 1
        return entry

    def describe(self) -> Dict[str, object]:
        """Flat description of the controller state (for reports)."""
        return {
            **self.config.describe(),
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed_count,
            "queued": self.queue_len,
            "max_queue_len": self.max_queue_len,
        }

    # -------------------------------------------------------------- plumbing
    def _push(self, entry: QueuedQuery) -> None:
        if self._use_heap:
            heapq.heappush(self._heap, (_job_size(entry.spec), self._seq, entry))
            self._seq += 1
        else:
            self._fifo.append(entry)

    def _pop(self) -> Optional[QueuedQuery]:
        if self._use_heap:
            if self._heap:
                return heapq.heappop(self._heap)[2]
            return None
        if self._fifo:
            return self._fifo.popleft()
        return None
