"""Admission control for the open-system query service.

Cooperative Scans thrive on *bounded* concurrency: the relevance policy
shares I/O between however many scans are active, but admitting every
arrival at high load would thrash the buffer pool and the CPU.  The
:class:`AdmissionController` therefore caps the number of concurrently
executing queries at a multiprogramming level (MPL) and keeps the excess in
bounded queues — one queue per *workload class* (interactive, batch, ...):

* while fewer than :attr:`AdmissionController.limit` queries are executing,
  an arrival is admitted immediately;
* otherwise it waits in its class's admission queue — FIFO, or
  shortest-job-first under the ``"sjf"`` discipline (``"priority"`` is a
  deprecated alias of ``"sjf"``; "priority" now refers to the per-class
  priority weights of the relevance policies) — until capacity frees up;
* when its class's queue is full (``queue_capacity``), the arrival is *shed*
  (rejected) and recorded per class, so overload turns into an explicit,
  attributable shed rate instead of unbounded latency;
* when a slot frees, the next admission comes from the non-empty class queue
  with the smallest ``active / weight`` ratio (ties break in configured
  class order), so classes share the MPL in proportion to their configured
  weights while staying work-conserving.

The MPL bound itself (:attr:`AdmissionController.limit`) starts at
``ServiceConfig.max_concurrent`` and may be retuned at run time by an
adaptive controller (see :mod:`repro.service.frontdoor`); with the static
controller it never changes, and a single-class configuration behaves
bit-for-bit like the historical single-queue controller.

Everything is deterministic: ties in the shortest-job-first discipline break
on submission order, ties in the weighted class pick break on class order.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.common.config import (
    DEFAULT_QUERY_CLASS,
    ServiceConfig,
    WorkloadClassConfig,
    canonical_discipline,
)
from repro.common.errors import ConfigurationError
from repro.core.cscan import ScanRequest

#: Work estimator used by the shortest-job-first discipline.
JobSizeEstimator = Callable[[ScanRequest], float]


@dataclass(frozen=True)
class QueuedQuery:
    """A query waiting in (or rejected from) an admission queue."""

    spec: ScanRequest
    submit_time: float
    query_class: str = DEFAULT_QUERY_CLASS


def default_job_size(spec: ScanRequest) -> float:
    """Work estimate used by the shortest-job-first discipline.

    Chunk count covers the I/O side; adding the CPU budget separates
    fast from slow queries over the same range.  Layout-oblivious: a DSM
    scan's chunks are all weighted alike regardless of how many column
    pages it actually reads — use :func:`layout_aware_job_size` when the
    table layout is known.
    """
    return spec.num_chunks * (1.0 + spec.cpu_per_chunk)


def layout_aware_job_size(layout) -> JobSizeEstimator:
    """Build a job-size estimator that weights chunks by pages actually read.

    For DSM tables the I/O cost of a chunk depends on the *requested
    columns*: a narrow two-column scan reads far fewer pages per chunk than
    a wide seven-column scan over the same range, so ranking queued scans by
    raw chunk count mis-orders the shortest-job-first queue.  This estimator
    weights each chunk by the average pages per chunk of the scan's column
    set — the same per-column statistic :class:`~repro.core.policies.dsm_attach.
    DSMAttachPolicy` uses for overlap scoring, and the statistic a catalog
    keeps per table (``layout`` may be a :class:`repro.storage.catalog.
    CatalogEntry`, which is unwrapped to its layout).

    Layouts without per-column statistics (NSM) fall back to
    :func:`default_job_size` — every chunk is one full chunk of I/O there.
    """
    layout = getattr(layout, "layout", layout)  # unwrap a CatalogEntry
    average_pages = getattr(layout, "average_pages_per_chunk", None)
    if average_pages is None:
        return default_job_size
    full_chunk_pages = layout.table_pages() / max(1, layout.num_chunks)

    def job_size(spec: ScanRequest) -> float:
        if spec.columns:
            pages = sum(average_pages(column) for column in spec.columns)
        else:
            pages = full_chunk_pages
        return spec.num_chunks * pages * (1.0 + spec.cpu_per_chunk)

    return job_size


class _ClassQueue:
    """One workload class's admission queue plus its counters."""

    __slots__ = (
        "config", "name", "weight", "capacity", "use_heap",
        "active", "offered", "admitted", "max_queue_len", "shed_count",
        "_fifo", "_heap", "_seq", "_job_size",
    )

    def __init__(self, config: WorkloadClassConfig, job_size: JobSizeEstimator) -> None:
        if config.discipline not in ("fifo", "sjf"):
            raise ConfigurationError(
                f"unknown admission discipline {config.discipline!r} for "
                f"class {config.name!r}; expected 'fifo' or 'sjf'"
            )
        self.config = config
        self.name = config.name
        self.weight = config.weight
        self.capacity = config.queue_capacity
        #: Single switch consulted by both ``push`` and ``pop``, fixed at
        #: construction: either every entry goes through the heap or every
        #: entry goes through the FIFO, never a mixture.
        self.use_heap = config.discipline == "sjf"
        self.active = 0
        self.offered = 0
        self.admitted = 0
        self.max_queue_len = 0
        #: Count only — the controller keeps the single (ordered) list of
        #: shed entries, so there is one source of truth for them.
        self.shed_count = 0
        self._fifo: Deque[QueuedQuery] = deque()
        self._heap: List[Tuple[float, int, QueuedQuery]] = []
        self._seq = 0
        self._job_size = job_size

    def __len__(self) -> int:
        return len(self._fifo) + len(self._heap)

    def push(self, entry: QueuedQuery) -> None:
        if self.use_heap:
            heapq.heappush(
                self._heap, (self._job_size(entry.spec), self._seq, entry)
            )
            self._seq += 1
        else:
            self._fifo.append(entry)

    def pop(self) -> Optional[QueuedQuery]:
        if self.use_heap:
            if self._heap:
                return heapq.heappop(self._heap)[2]
            return None
        if self._fifo:
            return self._fifo.popleft()
        return None


class AdmissionController:
    """Weighted multi-queue admission scheduler with a bounded (tunable) MPL."""

    def __init__(
        self,
        config: ServiceConfig,
        job_size: Optional[JobSizeEstimator] = None,
    ) -> None:
        self.config = config
        self._job_size = job_size or default_job_size
        # ``ServiceConfig`` validates the disciplines too, but a controller
        # can be handed a config built around that validation (tests,
        # subclassed configs); resolving the classes here re-validates every
        # discipline, guaranteeing each queue's ``push``/``pop`` agree on a
        # single order rather than silently mixing them.
        self.classes: Tuple[WorkloadClassConfig, ...] = config.resolved_classes()
        self._queues: Dict[str, _ClassQueue] = {
            cls.name: _ClassQueue(cls, self._job_size) for cls in self.classes
        }
        self._order: Tuple[str, ...] = tuple(cls.name for cls in self.classes)
        #: Current multiprogramming level.  Static services never change it;
        #: the adaptive controller in :mod:`repro.service.frontdoor` retunes
        #: it at run time.  Lowering it below ``active`` does not cancel
        #: running queries — admissions simply stop until completions bring
        #: ``active`` back under the limit.
        self.limit = config.max_concurrent
        self.active = 0
        #: Peak *total* backlog over all class queues (a run-level quantity
        #: the per-class maxima cannot reconstruct); ``offered`` /
        #: ``admitted`` / ``queue_len`` are derived from the per-class
        #: counters instead of being mirrored.
        self.max_queue_len = 0
        self.shed: List[QueuedQuery] = []
        #: Optional flight recorder (set via :meth:`attach_observability`).
        #: ``None`` — the default — records nothing and costs one attribute
        #: test per queue transition.
        self._obs = None
        self._obs_pid = "frontdoor"
        self._obs_depth_gauges: Dict[str, str] = {}

    # -------------------------------------------------------- observability
    def attach_observability(self, flight, process: str = "frontdoor") -> None:
        """Emit per-class queue-transition events into ``flight``.

        Event labels always carry the canonical discipline name (``"sjf"``,
        never the deprecated ``"priority"`` alias).
        """
        self._obs = flight
        self._obs_pid = process
        self._obs_depth_gauges = {
            name: f"{process}.queue.{name}.depth" for name in self._order
        }

    def _obs_queue_event(self, name: str, queue: "_ClassQueue",
                         entry: QueuedQuery, now: float, **extra: object) -> None:
        self._obs.instant(
            name, "admission", now, self._obs_pid, "admission",
            query=entry.spec.query_id,
            query_class=queue.name,
            discipline=canonical_discipline(queue.config.discipline),
            depth=len(queue),
            **extra,
        )
        self._obs.set_gauge(self._obs_depth_gauges[queue.name], now, len(queue))

    # -------------------------------------------------------------- queries
    @property
    def queue_len(self) -> int:
        """Number of queries currently waiting for admission (all classes)."""
        return sum(len(queue) for queue in self._queues.values())

    @property
    def offered(self) -> int:
        """Arrivals presented to the controller, over all classes."""
        return sum(queue.offered for queue in self._queues.values())

    @property
    def admitted(self) -> int:
        """Arrivals admitted into execution, over all classes."""
        return sum(queue.admitted for queue in self._queues.values())

    @property
    def shed_count(self) -> int:
        """Number of arrivals rejected because their class queue was full."""
        return len(self.shed)

    def has_queued(self) -> bool:
        """``True`` while at least one query is waiting in any queue."""
        return any(len(queue) > 0 for queue in self._queues.values())

    def class_order(self) -> Tuple[str, ...]:
        """Configured workload classes, in admission-preference tie order."""
        return self._order

    def class_of(self, spec: ScanRequest) -> str:
        """The class queue an arrival is routed to.

        The spec's own ``query_class`` when it is configured; otherwise the
        :data:`DEFAULT_QUERY_CLASS` queue when one exists, else the first
        configured class (so unclassified traffic is never dropped on the
        floor).
        """
        return self._resolve_class(spec.query_class)

    def _resolve_class(self, query_class: Optional[str]) -> str:
        """Map a (possibly unknown) class name onto a configured queue.

        Shared by :meth:`offer` (via :meth:`class_of`) and :meth:`release`
        so an admission and its completion always resolve to the *same*
        queue, keeping the per-class active counts balanced.
        """
        if query_class in self._queues:
            return query_class
        if DEFAULT_QUERY_CLASS in self._queues:
            return DEFAULT_QUERY_CLASS
        return self._order[0]

    def class_counters(self) -> Dict[str, Dict[str, float]]:
        """Per-class admission counters (for per-class SLO tables)."""
        return {
            name: {
                "weight": self._queues[name].weight,
                "offered": self._queues[name].offered,
                "admitted": self._queues[name].admitted,
                "shed": self._queues[name].shed_count,
                "queued": len(self._queues[name]),
                "max_queue_len": self._queues[name].max_queue_len,
            }
            for name in self._order
        }

    def shed_by_class(self) -> Dict[str, int]:
        """Arrivals shed under overload, keyed by workload class."""
        return {name: self._queues[name].shed_count for name in self._order}

    # ------------------------------------------------------------ lifecycle
    def offer(self, spec: ScanRequest, submit_time: float) -> Optional[QueuedQuery]:
        """Present one arrival to the controller.

        Returns the entry if it is admitted immediately; returns ``None``
        when the arrival was queued or shed (inspect :attr:`shed` /
        :attr:`queue_len` to tell the two apart).
        """
        name = self.class_of(spec)
        queue = self._queues[name]
        queue.offered += 1
        entry = QueuedQuery(spec=spec, submit_time=submit_time, query_class=name)
        if self.active < self.limit:
            self.active += 1
            queue.active += 1
            queue.admitted += 1
            if self._obs is not None:
                self._obs_queue_event(
                    "queue.admit", queue, entry, submit_time, wait=0.0
                )
            return entry
        if queue.capacity is None or len(queue) < queue.capacity:
            queue.push(entry)
            queue.max_queue_len = max(queue.max_queue_len, len(queue))
            self.max_queue_len = max(self.max_queue_len, self.queue_len)
            if self._obs is not None:
                self._obs_queue_event("queue.enqueue", queue, entry, submit_time)
            return None
        queue.shed_count += 1
        self.shed.append(entry)
        if self._obs is not None:
            self._obs_queue_event("queue.shed", queue, entry, submit_time)
        return None

    def release(
        self, query_class: Optional[str] = None, now: Optional[float] = None
    ) -> List[QueuedQuery]:
        """Signal the completion of one admitted query of ``query_class``.

        Frees its MPL slot and admits as many queued queries as now fit
        (exactly one with a static limit; possibly several right after an
        adaptive limit increase), returned in admission order.  On a
        multi-class controller the completed query's class is required —
        guessing would debit another class's MPL share.  ``now`` only
        timestamps the flight-recorder events of the resulting admissions;
        it never affects the decision.
        """
        if self.active <= 0:
            raise ValueError("release() without a matching admission")
        if query_class is None and len(self._order) > 1:
            raise ValueError(
                "release() needs the completed query's class on a "
                f"multi-class controller (classes: {list(self._order)})"
            )
        queue = self._queues[self._resolve_class(query_class)]
        if queue.active <= 0:
            raise ValueError(
                f"release({query_class!r}) without a matching admission "
                f"in class {queue.name!r}"
            )
        queue.active -= 1
        self.active -= 1
        return self.drain(now=now)

    def drain(self, now: Optional[float] = None) -> List[QueuedQuery]:
        """Admit queued queries while MPL capacity is free.

        Each freed slot goes to the non-empty class queue with the smallest
        ``active / weight`` ratio (first-configured class wins ties), which
        converges to weight-proportional MPL shares under contention while
        never idling a slot any class could use.  No-op while the limit is
        saturated — with a static limit the queues only ever drain through
        :meth:`release`, exactly like the historical single-queue controller.
        ``now`` only timestamps flight-recorder events.
        """
        released: List[QueuedQuery] = []
        while self.active < self.limit:
            queue = self._pick_queue()
            if queue is None:
                break
            entry = queue.pop()
            assert entry is not None  # _pick_queue only returns non-empty queues
            queue.active += 1
            queue.admitted += 1
            self.active += 1
            released.append(entry)
            if self._obs is not None:
                at = entry.submit_time if now is None else now
                self._obs_queue_event(
                    "queue.admit", queue, entry, at,
                    wait=max(0.0, at - entry.submit_time),
                )
        return released

    def _pick_queue(self) -> Optional[_ClassQueue]:
        """The non-empty class queue owed the next slot (weighted deficit)."""
        best: Optional[_ClassQueue] = None
        best_deficit = 0.0
        for name in self._order:
            queue = self._queues[name]
            if not len(queue):
                continue
            deficit = queue.active / queue.weight
            if best is None or deficit < best_deficit:
                best = queue
                best_deficit = deficit
        return best

    def describe(self) -> Dict[str, object]:
        """Flat description of the controller state (for reports)."""
        described: Dict[str, object] = {
            **self.config.describe(),
            "mpl_limit": self.limit,
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed_count,
            "queued": self.queue_len,
            "max_queue_len": self.max_queue_len,
        }
        if len(self._order) > 1:
            for name in self._order:
                queue = self._queues[name]
                described[f"class_{name}_offered"] = queue.offered
                described[f"class_{name}_shed"] = queue.shed_count
        return described
