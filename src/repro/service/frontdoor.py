"""The unified service front door.

Before this module existed the admission path was implemented twice — once
in :mod:`repro.service.server` for the single-simulator service and once in
:mod:`repro.cluster.coordinator` for the sharded cluster.  Both front doors
now share one :class:`FrontDoor` pipeline::

    arrivals -> classification -> per-class admission -> source adapter
             -> completion / release

* **arrivals** — the validated, timestamped external arrival sequence;
* **classification** — each arrival is routed to a workload class queue
  (``ScanRequest.query_class`` against ``ServiceConfig.classes``; the
  class concept collapses to one catch-all queue when no classes are
  configured);
* **per-class admission** — the weighted multi-queue
  :class:`~repro.service.admission.AdmissionController` bounds the MPL;
* **source adapter** — :class:`repro.service.server.OpenSystemSource` wraps
  the pipeline as a single-simulator
  :class:`~repro.sim.source.QuerySource`, while
  :class:`repro.cluster.coordinator.ClusterCoordinator` scatters each
  admitted query across shard simulators;
* **completion / release** — every whole-query completion reports back
  here: the latency sample feeds the MPL controller, the per-class SLO
  sample is recorded, and the freed slot admits the next queued queries.

The multiprogramming level itself is owned by a swappable
:class:`MPLController`: :class:`StaticMPLController` pins it to
``ServiceConfig.max_concurrent`` (the historical behaviour, bit-for-bit),
:class:`AdaptiveMPLController` retunes it with AIMD from the observed p95
end-to-end latency and the ABM's buffer-hit rate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.common.config import AdaptiveMPLConfig
from repro.common.errors import SimulationError
from repro.metrics.stats import LatencySummary, percentile
from repro.service.admission import AdmissionController, QueuedQuery
from repro.service.arrivals import Arrival, validate_arrivals
from repro.service.slo import ClassSLO

_EPS = 1e-9


@dataclass
class ActiveQuery:
    """Front-door state of one admitted, not yet completed query."""

    query_class: str
    submit_time: float
    admit_time: float
    num_chunks: int
    name: str = ""


@dataclass(frozen=True)
class CompletionSample:
    """One whole-query completion as the front door observed it."""

    query_id: int
    query_class: str
    submit_time: float
    admit_time: float
    finish_time: float

    @property
    def queue_wait(self) -> float:
        """Time spent waiting in the admission queue."""
        return max(0.0, self.admit_time - self.submit_time)

    @property
    def execution_latency(self) -> float:
        """Admission-to-completion latency."""
        return self.finish_time - self.admit_time

    @property
    def end_to_end_latency(self) -> float:
        """Submission-to-completion latency (queue wait plus execution)."""
        return self.finish_time - self.submit_time


# ------------------------------------------------------------ MPL controllers
class MPLController:
    """Strategy object owning the service's multiprogramming level."""

    def limit(self) -> int:
        """The MPL the admission controller should currently enforce."""
        raise NotImplementedError

    def on_completion(self, latency: float, hit_rate: float, now: float) -> None:
        """Observe one whole-query completion (its end-to-end latency and
        the ABM's cumulative buffer-hit rate at that moment)."""

    def describe(self) -> Dict[str, object]:
        """Flat description of the controller (for reports)."""
        return {"mpl_controller": type(self).__name__, "mpl": self.limit()}


class StaticMPLController(MPLController):
    """The historical fixed MPL: ``ServiceConfig.max_concurrent``, forever."""

    def __init__(self, mpl: int) -> None:
        if mpl < 1:
            raise ValueError(f"MPL must be >= 1, got {mpl}")
        self._mpl = mpl

    def limit(self) -> int:
        return self._mpl

    def describe(self) -> Dict[str, object]:
        return {"mpl_controller": "static", "mpl": self._mpl}


class AdaptiveMPLController(MPLController):
    """AIMD control of the MPL from observed tail latency and buffer hits.

    Keeps a sliding window of end-to-end latencies and reacts with the
    classic AIMD asymmetry — congestion is punished immediately, headroom
    is probed cautiously:

    * **over target** (the window's p95 exceeds ``target_p95_s``, checked
      on every completion once the window holds at least ``adjust_every``
      samples) — multiplicative decrease: fewer concurrent scans give the
      relevance policy a smaller working set to share bandwidth between,
      restoring latency.  The window is cleared so the next verdict only
      comes after ``adjust_every`` fresh samples judged under the *new*
      MPL — queries that accumulated their queue wait under the old limit
      would otherwise cascade the cut straight to ``min_mpl``;
    * **within target** (checked every ``adjust_every``-th completion) —
      additive increase (one step), but only while the ABM's buffer-hit
      rate has not collapsed below ``hit_rate_floor`` — a shrinking hit
      rate at rising MPL means the concurrent set already outgrew the
      buffer pool, so more concurrency would only thrash.

    Fully deterministic: the trajectory is a pure function of the completion
    sequence, so adaptive runs reproduce bit for bit.
    """

    def __init__(self, config: AdaptiveMPLConfig, initial_mpl: int) -> None:
        self.config = config
        self._mpl = min(max(initial_mpl, config.min_mpl), config.max_mpl)
        self._window: Deque[float] = deque(maxlen=config.window)
        self._since_increase = 0
        #: ``(time, new_mpl)`` for every change the controller made.
        self.adjustments: List[Tuple[float, int]] = []

    def limit(self) -> int:
        return self._mpl

    def on_completion(self, latency: float, hit_rate: float, now: float) -> None:
        self._window.append(latency)
        self._since_increase += 1
        if len(self._window) < min(self.config.adjust_every, self.config.window):
            return
        observed_p95 = percentile(list(self._window), 95.0)
        if observed_p95 > self.config.target_p95_s:
            proposed = max(
                self.config.min_mpl, int(self._mpl * self.config.decrease_factor)
            )
            self._window.clear()
            self._since_increase = 0
            self._apply(proposed, now)
            return
        if self._since_increase < self.config.adjust_every:
            return
        self._since_increase = 0
        if hit_rate >= self.config.hit_rate_floor:
            self._apply(
                min(self.config.max_mpl, self._mpl + self.config.increase_step),
                now,
            )

    def _apply(self, proposed: int, now: float) -> None:
        if proposed != self._mpl:
            self._mpl = proposed
            self.adjustments.append((now, proposed))

    def describe(self) -> Dict[str, object]:
        return {
            "mpl_controller": "adaptive",
            "mpl": self._mpl,
            "mpl_adjustments": len(self.adjustments),
            **self.config.describe(),
        }


def controller_for(
    admission: AdmissionController,
    mpl_controller: Optional[MPLController] = None,
) -> MPLController:
    """The MPL controller a service config asks for.

    An explicit controller instance wins; otherwise ``ServiceConfig.adaptive``
    selects the AIMD controller (seeded at ``max_concurrent``) and its absence
    the static one — so :func:`repro.service.run_service` and
    :func:`repro.cluster.run_cluster_service` pick controllers identically.
    """
    if mpl_controller is not None:
        return mpl_controller
    if admission.config.adaptive is not None:
        return AdaptiveMPLController(
            admission.config.adaptive, admission.config.max_concurrent
        )
    return StaticMPLController(admission.config.max_concurrent)


# ------------------------------------------------------------- the pipeline
class FrontDoor:
    """Shared arrivals -> classes -> admission -> release pipeline.

    Owns everything between the external arrival sequence and the moment a
    query starts executing (or completes): arrival consumption,
    classification into workload classes, the weighted admission queues, the
    MPL controller, and the per-query completion bookkeeping that the SLO
    reports and the controller feed on.  The single-simulator service
    adapts it through :class:`repro.service.server.OpenSystemSource`; the
    cluster coordinator scatters what it admits.
    """

    def __init__(
        self,
        arrivals: Sequence[Arrival],
        admission: AdmissionController,
        mpl_controller: Optional[MPLController] = None,
        loads_probe: Optional[Callable[[int], int]] = None,
        where: str = "service workload",
        obs=None,
    ) -> None:
        validate_arrivals(arrivals, where)
        self._arrivals = list(arrivals)
        self._next = 0
        self.admission = admission
        self.mpl = controller_for(admission, mpl_controller)
        self.admission.limit = self.mpl.limit()
        #: Optional :class:`repro.obs.FlightRecorder`; ``None`` records
        #: nothing (the zero-overhead default).
        self._obs = obs
        self._obs_pid = "frontdoor"
        # Gauge names are precomputed so the per-completion hot path does
        # no string formatting.
        self._obs_mpl_limit = f"{self._obs_pid}.mpl.limit"
        self._obs_mpl_active = f"{self._obs_pid}.mpl.active"
        self._obs_hit_rate = f"{self._obs_pid}.hit_rate"
        self._obs_latency = {
            cls.name: f"{self._obs_pid}.latency.{cls.name}"
            for cls in admission.classes
        }
        if obs is not None:
            admission.attach_observability(obs, self._obs_pid)
            obs.set_gauge(self._obs_mpl_limit, 0.0, self.admission.limit)
        #: Per-query probe: chunk loads the ABM(s) attributed to a completed
        #: query, summed at its completion so the hit-rate numerator and
        #: denominator cover the same (completed) queries — in-flight scans
        #: never skew the signal.  ``None`` reads as a constant 0.0 hit rate
        #: (the controller then steers on p95 alone as long as
        #: ``hit_rate_floor`` is 0).
        self._loads_probe = loads_probe
        self._active: Dict[int, ActiveQuery] = {}
        self._chunks_completed = 0
        self._loads_completed = 0
        #: Whole-query completions, in completion order.
        self.completions: List[CompletionSample] = []
        #: ``(time, mpl)`` trajectory of the enforced limit, starting at 0.
        self.mpl_timeline: List[Tuple[float, int]] = [(0.0, self.admission.limit)]

    # ------------------------------------------------------------- arrivals
    def next_arrival_time(self) -> Optional[float]:
        """Time of the next unconsumed external arrival."""
        if self._next >= len(self._arrivals):
            return None
        return self._arrivals[self._next].time

    def pump(self, now: float) -> List[QueuedQuery]:
        """Run the pipeline up to ``now``; returns the queries to start.

        Consumes every external arrival due by ``now`` through
        classification and admission.  Queued queries only ever start from
        :meth:`on_complete` — the MPL limit is re-synced there, and its
        release drains the queues up to the (possibly raised) limit, so by
        pump time either the queues are empty or the limit is saturated.
        Idempotent within one instant, so several shard sources can share
        one front door: the first pump of the instant does the work.
        """
        admitted: List[QueuedQuery] = []
        while (
            self._next < len(self._arrivals)
            and self._arrivals[self._next].time <= now + _EPS
        ):
            arrival = self._arrivals[self._next]
            self._next += 1
            if self._obs is not None:
                self._obs.instant(
                    "frontdoor.arrival", "frontdoor", arrival.time,
                    self._obs_pid, "arrivals",
                    query=arrival.spec.query_id,
                    query_name=arrival.spec.name,
                    query_class=self.admission.class_of(arrival.spec),
                    chunks=arrival.spec.num_chunks,
                )
            entry = self.admission.offer(arrival.spec, arrival.time)
            if entry is not None:
                admitted.append(self._admit(entry, now))
        return admitted

    def _admit(self, entry: QueuedQuery, now: float) -> QueuedQuery:
        self._active[entry.spec.query_id] = ActiveQuery(
            query_class=entry.query_class,
            submit_time=entry.submit_time,
            admit_time=now,
            num_chunks=entry.spec.num_chunks,
            name=entry.spec.name,
        )
        if self._obs is not None:
            self._obs.async_begin(
                entry.spec.name, "query", now, entry.spec.query_id,
                self._obs_pid, "queries",
                query_class=entry.query_class,
                queue_wait=max(0.0, now - entry.submit_time),
            )
            self._obs.set_gauge(
                self._obs_mpl_active, now, self.admission.active
            )
        return entry

    # ----------------------------------------------------------- completion
    def on_complete(self, query_id: int, now: float) -> List[QueuedQuery]:
        """Record one whole-query completion; returns the queries it admits.

        The completion's latency sample drives the MPL controller *before*
        the slot is released, so a limit decrease takes effect immediately
        and a limit increase lets this release admit several queued queries
        at once.
        """
        record = self._active.pop(query_id, None)
        if record is None:
            raise SimulationError(
                f"front-door completion for unknown query {query_id}"
            )
        sample = CompletionSample(
            query_id=query_id,
            query_class=record.query_class,
            submit_time=record.submit_time,
            admit_time=record.admit_time,
            finish_time=now,
        )
        self.completions.append(sample)
        self._chunks_completed += record.num_chunks
        if self._loads_probe is not None:
            self._loads_completed += self._loads_probe(query_id)
        self.mpl.on_completion(sample.end_to_end_latency, self.hit_rate(), now)
        new_limit = self.mpl.limit()
        if new_limit != self.admission.limit:
            if self._obs is not None:
                self._obs.instant(
                    "frontdoor.mpl_change", "frontdoor", now,
                    self._obs_pid, "admission",
                    old=self.admission.limit, new=new_limit,
                )
            self.admission.limit = new_limit
            self.mpl_timeline.append((now, new_limit))
        if self._obs is not None:
            self._obs.async_end(
                record.name, "query", now, query_id,
                self._obs_pid, "queries",
                end_to_end_latency=sample.end_to_end_latency,
            )
            self._obs.set_gauge(self._obs_mpl_limit, now, self.admission.limit)
            self._obs.set_gauge(self._obs_hit_rate, now, self.hit_rate())
            self._obs.observe(
                self._obs_latency[record.query_class],
                now, sample.end_to_end_latency,
            )
        released = self.admission.release(record.query_class, now=now)
        admitted = [self._admit(entry, now) for entry in released]
        if self._obs is not None:
            self._obs.set_gauge(
                self._obs_mpl_active, now, self.admission.active
            )
        return admitted

    def drained(self) -> bool:
        """``True`` once no future query can be admitted (arrivals exhausted
        and every class queue empty)."""
        return self._next >= len(self._arrivals) and not self.admission.has_queued()

    # ------------------------------------------------------------ reporting
    def hit_rate(self) -> float:
        """Fraction of consumed chunks served without triggering a load.

        The sharing dividend of the cooperative policies: under perfect
        overlap N queries consume N chunks per load.  Measured over the
        *completed* queries only (their chunks vs the loads attributed to
        them), so a run's early in-flight scans cannot clamp the signal.
        Reads 0.0 until the first completion or when no loads probe is
        attached.
        """
        if self._loads_probe is None or self._chunks_completed <= 0:
            return 0.0
        return max(0.0, 1.0 - self._loads_completed / self._chunks_completed)

    def class_order(self) -> Tuple[str, ...]:
        """Workload classes in report order (configured order)."""
        return self.admission.class_order()

    def class_reports(self) -> Tuple[ClassSLO, ...]:
        """Per-class SLO summaries of everything this front door served.

        One :class:`~repro.service.slo.ClassSLO` per configured class, with
        latency quantiles over the class's completed queries (sorted by
        query id, so the single-node service and a 1-shard cluster build
        identical summaries) and the class's admission counters.
        """
        samples: Dict[str, List[CompletionSample]] = {
            name: [] for name in self.class_order()
        }
        for sample in sorted(self.completions, key=lambda s: s.query_id):
            samples.setdefault(sample.query_class, []).append(sample)
        counters = self.admission.class_counters()
        reports: List[ClassSLO] = []
        for name in self.class_order():
            class_counter = counters[name]
            class_samples = samples[name]
            reports.append(
                ClassSLO(
                    query_class=name,
                    weight=float(class_counter["weight"]),
                    offered=int(class_counter["offered"]),
                    admitted=int(class_counter["admitted"]),
                    completed=len(class_samples),
                    shed=int(class_counter["shed"]),
                    max_queue_len=int(class_counter["max_queue_len"]),
                    latency=LatencySummary.from_values(
                        [s.end_to_end_latency for s in class_samples]
                    ),
                    queue_wait=LatencySummary.from_values(
                        [s.queue_wait for s in class_samples]
                    ),
                    execution=LatencySummary.from_values(
                        [s.execution_latency for s in class_samples]
                    ),
                )
            )
        return tuple(reports)

    def describe(self) -> Dict[str, object]:
        """Flat description of the front door (for reports)."""
        return {
            "num_arrivals": len(self._arrivals),
            **self.admission.describe(),
            **self.mpl.describe(),
        }
