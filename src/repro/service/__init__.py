"""Open-system query service layer on top of the scan simulator.

The paper evaluates Cooperative Scans as a *closed* system (fixed streams of
back-to-back queries).  This package models the same ABM and policies as a
*service* under sustained traffic:

* :mod:`repro.service.arrivals` -- Poisson and bursty ON/OFF arrival
  generators producing timestamped query arrivals from query templates,
  plus trace replay (CSV/JSONL query logs in, the same SLO reports out);
* :mod:`repro.service.admission` -- the weighted multi-queue admission
  scheduler: one bounded queue per workload class (FIFO or
  shortest-job-first), sharing the multiprogramming level (MPL) by class
  weight and shedding overload per class;
* :mod:`repro.service.frontdoor` -- the shared front-door pipeline
  (arrivals -> classification -> per-class admission -> completion/release)
  used identically by the single-simulator service and the sharded
  cluster, plus the swappable MPL controllers (static and adaptive AIMD);
* :mod:`repro.service.server` -- the :class:`OpenSystemSource` query source
  driving the simulator, plus :func:`run_service` /
  :func:`compare_service_policies` entry points;
* :mod:`repro.service.slo` -- per-query queue-wait and end-to-end latency,
  p50/p95/p99 percentiles, throughput and shed rate, rendered per policy
  and per workload class.

Everything is deterministic given a seed: the same arrivals, admissions,
MPL trajectory and SLO report reproduce exactly.
"""

from repro.service.arrivals import (
    Arrival,
    poisson_arrivals,
    onoff_arrivals,
    offered_rate,
    replay_arrivals,
    validate_arrivals,
    write_arrival_trace,
)
from repro.service.admission import (
    AdmissionController,
    QueuedQuery,
    default_job_size,
    layout_aware_job_size,
)
from repro.service.frontdoor import (
    AdaptiveMPLController,
    CompletionSample,
    FrontDoor,
    MPLController,
    StaticMPLController,
)
from repro.service.server import (
    OpenSystemSource,
    ServiceResult,
    run_service,
    compare_service_policies,
)
from repro.service.slo import (
    AvailabilitySLO,
    ClassSLO,
    SLOReport,
    build_slo_report,
    merge_shard_slo_reports,
    render_availability_table,
    render_class_slo_table,
    render_coordinator_table,
    render_slo_table,
    render_volume_utilisation,
)

__all__ = [
    "Arrival",
    "poisson_arrivals",
    "onoff_arrivals",
    "offered_rate",
    "replay_arrivals",
    "validate_arrivals",
    "write_arrival_trace",
    "AdmissionController",
    "QueuedQuery",
    "default_job_size",
    "layout_aware_job_size",
    "FrontDoor",
    "CompletionSample",
    "MPLController",
    "StaticMPLController",
    "AdaptiveMPLController",
    "OpenSystemSource",
    "ServiceResult",
    "run_service",
    "compare_service_policies",
    "AvailabilitySLO",
    "ClassSLO",
    "SLOReport",
    "build_slo_report",
    "merge_shard_slo_reports",
    "render_availability_table",
    "render_class_slo_table",
    "render_coordinator_table",
    "render_slo_table",
    "render_volume_utilisation",
]
