"""Open-system query service layer on top of the scan simulator.

The paper evaluates Cooperative Scans as a *closed* system (fixed streams of
back-to-back queries).  This package models the same ABM and policies as a
*service* under sustained traffic:

* :mod:`repro.service.arrivals` -- Poisson and bursty ON/OFF arrival
  generators producing timestamped query arrivals from query templates,
  plus trace replay (CSV/JSONL query logs in, the same SLO reports out);
* :mod:`repro.service.admission` -- a bounded admission queue that caps the
  multiprogramming level (MPL) and sheds overload (FIFO or
  shortest-job-first);
* :mod:`repro.service.server` -- the :class:`OpenSystemSource` query source
  driving the simulator, plus :func:`run_service` /
  :func:`compare_service_policies` entry points;
* :mod:`repro.service.slo` -- per-query queue-wait and end-to-end latency,
  p50/p95/p99 percentiles, throughput and shed rate, rendered per policy.

Everything is deterministic given a seed: the same arrivals, admissions and
SLO report reproduce exactly.
"""

from repro.service.arrivals import (
    Arrival,
    poisson_arrivals,
    onoff_arrivals,
    offered_rate,
    replay_arrivals,
    validate_arrivals,
    write_arrival_trace,
)
from repro.service.admission import AdmissionController, QueuedQuery
from repro.service.server import (
    OpenSystemSource,
    ServiceResult,
    run_service,
    compare_service_policies,
)
from repro.service.slo import (
    SLOReport,
    build_slo_report,
    merge_shard_slo_reports,
    render_slo_table,
    render_volume_utilisation,
)

__all__ = [
    "Arrival",
    "poisson_arrivals",
    "onoff_arrivals",
    "offered_rate",
    "replay_arrivals",
    "validate_arrivals",
    "write_arrival_trace",
    "AdmissionController",
    "QueuedQuery",
    "OpenSystemSource",
    "ServiceResult",
    "run_service",
    "compare_service_policies",
    "SLOReport",
    "build_slo_report",
    "merge_shard_slo_reports",
    "render_slo_table",
    "render_volume_utilisation",
]
