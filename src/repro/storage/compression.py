"""Simulated light-weight compression schemes.

The paper's DSM experiments rely on the column widths produced by the
light-weight compression schemes of MonetDB/X100 (Zukowski et al., ICDE
2006): PFOR, PFOR-DELTA and PDICT.  We do not need to actually encode bits;
what matters for I/O scheduling is *how many pages a column chunk occupies*.
Each scheme therefore maps an uncompressed value width to a typical
compressed width (a compression ratio), which the DSM layout uses to compute
per-column page footprints — reproducing the situation of Figure 9 where
e.g. an ``orderkey`` stored as ``PFOR-DELTA(oid)`` occupies 3 bits per value
while a comment string occupies 256 bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import StorageError


@dataclass(frozen=True)
class CompressionScheme:
    """A named compression scheme with a default compression ratio.

    ``default_ratio`` is the factor by which the logical width shrinks
    (e.g. 0.25 means a 32-bit value is stored in 8 bits on average).
    """

    name: str
    default_ratio: float

    def __post_init__(self) -> None:
        if not 0.0 < self.default_ratio <= 1.0:
            raise StorageError(
                f"compression ratio must be in (0, 1], got {self.default_ratio}"
            )

    def compressed_bits(self, logical_bits: int) -> int:
        """Physical width for a value of the given logical width (>= 1 bit)."""
        if logical_bits <= 0:
            raise StorageError("logical_bits must be positive")
        return max(1, round(logical_bits * self.default_ratio))


#: No compression: physical width equals logical width.
NONE = CompressionScheme("none", 1.0)

#: Patched Frame-Of-Reference: small integers relative to a per-block base.
#: Typical ratio for 64-bit oids in TPC-H is ~1/3 (the paper quotes 21 bits).
PFOR = CompressionScheme("PFOR", 21.0 / 64.0)

#: PFOR on deltas of a (nearly) sorted column; very high ratios (3/64).
PFOR_DELTA = CompressionScheme("PFOR-DELTA", 3.0 / 64.0)

#: Dictionary compression for low-cardinality columns (e.g. returnflag:
#: 2 bits for an 8-bit char).
PDICT = CompressionScheme("PDICT", 2.0 / 8.0)

_SCHEMES = {scheme.name.lower(): scheme for scheme in (NONE, PFOR, PFOR_DELTA, PDICT)}


def scheme_by_name(name: str) -> CompressionScheme:
    """Look up a built-in compression scheme by (case-insensitive) name."""
    try:
        return _SCHEMES[name.lower()]
    except KeyError as exc:
        raise StorageError(f"unknown compression scheme {name!r}") from exc


def physical_bits_per_value(logical_bits: int, scheme: CompressionScheme) -> int:
    """Physical width of one value under ``scheme`` (helper for ColumnSpec)."""
    return scheme.compressed_bits(logical_bits)
