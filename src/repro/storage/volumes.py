"""Chunk-to-volume placement for the multi-volume disk subsystem.

The paper's benchmark machine runs on a 4-way RAID; the original single-disk
model collapsed that into "one fast sequential device" by scaling bandwidth.
A :class:`VolumeLayout` instead maps every logical chunk onto one of several
*independent* volumes, each with its own disk head, so the simulator can keep
one load in flight per volume:

* ``"striped"`` placement puts chunk ``i`` on volume ``i % num_volumes``
  (round-robin, the classic RAID-0 layout at chunk granularity) — a table
  scan keeps every volume busy;
* ``"range"`` placement gives each volume one contiguous chunk range (the
  partitioned layout of a sharded table) — a narrow range scan hits few
  volumes, but concurrent scans over different ranges parallelise perfectly.

For seek accounting the interesting quantity is the *volume-local* position
of a chunk: two chunks that are consecutive on the same volume (``i`` and
``i + num_volumes`` under striping, ``i`` and ``i + 1`` inside a range) are
physically adjacent there and only pay the track-to-track seek.
:meth:`VolumeLayout.local_index` performs that translation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.config import VOLUME_PLACEMENTS, DiskConfig
from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class VolumeLayout:
    """Deterministic mapping of logical chunks onto disk volumes.

    Attributes
    ----------
    num_chunks:
        Number of logical chunks of the table being placed.
    num_volumes:
        Number of independent volumes.
    placement:
        ``"striped"`` or ``"range"`` (see module docstring).
    """

    num_chunks: int
    num_volumes: int = 1
    placement: str = "striped"

    def __post_init__(self) -> None:
        if self.num_chunks < 1:
            raise ConfigurationError("volume layout needs at least one chunk")
        if self.num_volumes < 1:
            raise ConfigurationError("volume layout needs at least one volume")
        if self.placement not in VOLUME_PLACEMENTS:
            raise ConfigurationError(
                f"unknown volume placement {self.placement!r}; "
                f"expected one of {VOLUME_PLACEMENTS}"
            )

    @classmethod
    def from_disk_config(cls, disk: DiskConfig, num_chunks: int) -> "VolumeLayout":
        """Build the layout described by a :class:`DiskConfig`."""
        return cls(
            num_chunks=num_chunks,
            num_volumes=disk.volumes,
            placement=disk.placement,
        )

    # ------------------------------------------------------------ geometry
    @property
    def _range_size(self) -> int:
        """Chunks per volume under range partitioning (last range may be short)."""
        return -(-self.num_chunks // self.num_volumes)  # ceil division

    def _check(self, chunk: int) -> None:
        if not 0 <= chunk < self.num_chunks:
            raise ConfigurationError(
                f"chunk {chunk} outside table of {self.num_chunks} chunks"
            )

    def volume_of(self, chunk: int) -> int:
        """Volume holding the given logical chunk."""
        self._check(chunk)
        if self.placement == "range":
            return min(chunk // self._range_size, self.num_volumes - 1)
        return chunk % self.num_volumes

    def local_index(self, chunk: int) -> int:
        """Physical position of the chunk *on its own volume*.

        Chunks with consecutive local indices on the same volume are
        physically adjacent there, so the disk model charges them only the
        sequential (track-to-track) seek.
        """
        self._check(chunk)
        if self.placement == "range":
            return chunk - self.volume_of(chunk) * self._range_size
        return chunk // self.num_volumes

    def chunks_on(self, volume: int) -> List[int]:
        """All logical chunks placed on one volume, in local order."""
        if not 0 <= volume < self.num_volumes:
            raise ConfigurationError(
                f"volume {volume} outside layout of {self.num_volumes} volumes"
            )
        return [
            chunk for chunk in range(self.num_chunks)
            if self.volume_of(chunk) == volume
        ]

    def describe(self) -> Dict[str, object]:
        """Flat description of the placement (for reports)."""
        return {
            "num_chunks": self.num_chunks,
            "num_volumes": self.num_volumes,
            "placement": self.placement,
        }
