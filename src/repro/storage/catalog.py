"""A minimal named-table catalog.

The catalog maps table names to their physical layout (NSM or DSM) plus any
zone maps built over their columns.  Both the simulator and the in-memory
query engine resolve table references through a catalog, mirroring how a
production ABM would keep per-table statistics and metadata (Section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Union

from repro.common.errors import StorageError
from repro.storage.dsm import DSMTableLayout
from repro.storage.nsm import NSMTableLayout
from repro.storage.zonemap import ZoneMap

TableLayout = Union[NSMTableLayout, DSMTableLayout]


@dataclass
class CatalogEntry:
    """One table registered in the catalog."""

    name: str
    layout: TableLayout
    zonemaps: Dict[str, ZoneMap] = field(default_factory=dict)

    @property
    def num_chunks(self) -> int:
        """Number of chunks of the table."""
        return self.layout.num_chunks

    @property
    def is_dsm(self) -> bool:
        """Whether the table is stored column-wise."""
        return isinstance(self.layout, DSMTableLayout)


class Catalog:
    """Registry of tables known to the system."""

    def __init__(self) -> None:
        self._tables: Dict[str, CatalogEntry] = {}

    def register(self, layout: TableLayout, name: Optional[str] = None) -> CatalogEntry:
        """Register a table layout under ``name`` (default: its schema name)."""
        table_name = name or layout.schema.name
        if table_name in self._tables:
            raise StorageError(f"table {table_name!r} is already registered")
        entry = CatalogEntry(name=table_name, layout=layout)
        self._tables[table_name] = entry
        return entry

    def add_zonemap(self, table: str, zonemap: ZoneMap) -> None:
        """Attach a zone map to a registered table."""
        entry = self.get(table)
        if zonemap.num_chunks != entry.num_chunks:
            raise StorageError(
                f"zone map for {zonemap.column!r} covers {zonemap.num_chunks} chunks "
                f"but table {table!r} has {entry.num_chunks}"
            )
        entry.zonemaps[zonemap.column] = zonemap

    def get(self, name: str) -> CatalogEntry:
        """Look up a table by name, raising :class:`StorageError` if missing."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise StorageError(f"unknown table {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[CatalogEntry]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def drop(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            raise StorageError(f"unknown table {name!r}")
        del self._tables[name]

    def table_names(self) -> list[str]:
        """Names of all registered tables."""
        return list(self._tables)
