"""NSM / PAX (row-store) physical layout.

In the row-store experiments of the paper a chunk is a fixed-size physical
unit (16 MB) consisting of a fixed number of pages, and chunks map one-to-one
onto contiguous tuple ranges.  This module computes that mapping for a table
given its schema and tuple count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.common.config import BufferConfig
from repro.common.errors import StorageError
from repro.common.units import ceil_div
from repro.storage.schema import TableSchema


@dataclass(frozen=True)
class NSMTableLayout:
    """Physical layout of a table stored row-wise (NSM or PAX).

    Attributes
    ----------
    schema:
        The logical table schema.
    num_tuples:
        Number of tuples in the table.
    chunk_bytes:
        Size of one chunk (the I/O unit), 16 MB in the paper.
    page_bytes:
        Size of one buffer page; a chunk is an integral number of pages.
    """

    schema: TableSchema
    num_tuples: int
    chunk_bytes: int
    page_bytes: int

    def __post_init__(self) -> None:
        if self.num_tuples <= 0:
            raise StorageError("num_tuples must be positive")
        if self.chunk_bytes <= 0 or self.page_bytes <= 0:
            raise StorageError("chunk_bytes and page_bytes must be positive")
        if self.chunk_bytes % self.page_bytes != 0:
            raise StorageError("chunk_bytes must be a multiple of page_bytes")
        if self.tuples_per_chunk <= 0:
            raise StorageError(
                "chunk size too small: no tuple fits in one chunk "
                f"(tuple is {self.schema.tuple_logical_bytes} bytes)"
            )

    @classmethod
    def from_buffer_config(
        cls, schema: TableSchema, num_tuples: int, buffer: BufferConfig
    ) -> "NSMTableLayout":
        """Build a layout using the chunk/page sizes of a buffer configuration."""
        return cls(
            schema=schema,
            num_tuples=num_tuples,
            chunk_bytes=buffer.chunk_bytes,
            page_bytes=buffer.page_bytes,
        )

    # ------------------------------------------------------------------ sizes
    @property
    def tuple_bytes(self) -> float:
        """Width of one stored tuple in bytes (uncompressed row format)."""
        return self.schema.tuple_logical_bytes

    @property
    def tuples_per_chunk(self) -> int:
        """Number of tuples stored in one full chunk."""
        return int(self.chunk_bytes // self.tuple_bytes)

    @property
    def pages_per_chunk(self) -> int:
        """Number of pages forming one chunk."""
        return self.chunk_bytes // self.page_bytes

    @property
    def num_chunks(self) -> int:
        """Total number of chunks of the table (last one may be partial)."""
        return ceil_div(self.num_tuples, self.tuples_per_chunk)

    @property
    def total_bytes(self) -> int:
        """Total table size in bytes (full chunks except possibly the last)."""
        full = (self.num_chunks - 1) * self.chunk_bytes
        return full + self.chunk_size_bytes(self.num_chunks - 1)

    # --------------------------------------------------------------- per chunk
    def _check_chunk(self, chunk: int) -> None:
        if not 0 <= chunk < self.num_chunks:
            raise StorageError(
                f"chunk {chunk} out of range for table {self.schema.name!r} "
                f"with {self.num_chunks} chunks"
            )

    def chunk_tuple_range(self, chunk: int) -> Tuple[int, int]:
        """Half-open tuple range ``[first, last)`` stored in a chunk."""
        self._check_chunk(chunk)
        first = chunk * self.tuples_per_chunk
        last = min(self.num_tuples, first + self.tuples_per_chunk)
        return first, last

    def chunk_tuple_count(self, chunk: int) -> int:
        """Number of tuples stored in a chunk (smaller for the last chunk)."""
        first, last = self.chunk_tuple_range(chunk)
        return last - first

    def chunk_size_bytes(self, chunk: int) -> int:
        """Physical size of a chunk in bytes."""
        return int(round(self.chunk_tuple_count(chunk) * self.tuple_bytes))

    def chunk_pages(self, chunk: int) -> int:
        """Number of pages occupied by a chunk."""
        return ceil_div(self.chunk_size_bytes(chunk), self.page_bytes)

    def chunk_of_tuple(self, tuple_index: int) -> int:
        """Chunk holding the given tuple."""
        if not 0 <= tuple_index < self.num_tuples:
            raise StorageError(
                f"tuple {tuple_index} out of range (table has {self.num_tuples})"
            )
        return tuple_index // self.tuples_per_chunk

    def chunks_for_tuple_range(self, first_tuple: int, last_tuple: int) -> List[int]:
        """Chunks overlapping the half-open tuple range ``[first, last)``."""
        if first_tuple >= last_tuple:
            return []
        first_tuple = max(0, first_tuple)
        last_tuple = min(self.num_tuples, last_tuple)
        if first_tuple >= last_tuple:
            return []
        first_chunk = self.chunk_of_tuple(first_tuple)
        last_chunk = self.chunk_of_tuple(last_tuple - 1)
        return list(range(first_chunk, last_chunk + 1))

    def all_chunks(self) -> Iterator[int]:
        """Iterate over all chunk ids in physical order."""
        return iter(range(self.num_chunks))

    def describe(self) -> dict:
        """Summary dictionary used by reports and examples."""
        return {
            "table": self.schema.name,
            "num_tuples": self.num_tuples,
            "tuple_bytes": self.tuple_bytes,
            "chunk_bytes": self.chunk_bytes,
            "tuples_per_chunk": self.tuples_per_chunk,
            "num_chunks": self.num_chunks,
            "total_bytes": self.total_bytes,
        }
