"""Table schemas and column specifications.

A :class:`TableSchema` is a purely logical description: column names, logical
data types and (optionally) a compression scheme per column.  Physical
layouts (:mod:`repro.storage.nsm`, :mod:`repro.storage.dsm`) are built from a
schema plus a tuple count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import StorageError
from repro.storage.compression import CompressionScheme, NONE, physical_bits_per_value


class DataType(Enum):
    """Logical column data types with their uncompressed widths in bits."""

    INT32 = 32
    INT64 = 64
    OID = 64
    DECIMAL = 64
    DATE = 32
    CHAR1 = 8
    STR16 = 128
    STR32 = 256
    STR64 = 512
    STR256 = 2048

    @property
    def bits(self) -> int:
        """Uncompressed width of one value in bits."""
        return self.value

    @property
    def bytes(self) -> float:
        """Uncompressed width of one value in bytes."""
        return self.value / 8.0


@dataclass(frozen=True)
class ColumnSpec:
    """A single column of a table schema.

    Attributes
    ----------
    name:
        Column name, unique within the table.
    dtype:
        Logical data type.
    compression:
        Light-weight compression scheme applied on disk.  Determines the
        *physical* width used by the DSM layout; NSM/PAX stores tuples
        uncompressed in our model (as in the paper's PAX experiments).
    compressed_bits:
        Optional explicit physical width in bits; overrides the scheme's
        default (the paper's Figure 9 quotes e.g. ``PFOR(oid):21bit``).
    """

    name: str
    dtype: DataType
    compression: CompressionScheme = NONE
    compressed_bits: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise StorageError("column name must be non-empty")
        if self.compressed_bits is not None and self.compressed_bits <= 0:
            raise StorageError("compressed_bits must be positive when given")

    @property
    def physical_bits(self) -> int:
        """Physical (on-disk) width of one value in bits."""
        if self.compressed_bits is not None:
            return self.compressed_bits
        return physical_bits_per_value(self.dtype.bits, self.compression)

    @property
    def physical_bytes(self) -> float:
        """Physical (on-disk) width of one value in bytes (may be fractional)."""
        return self.physical_bits / 8.0

    @property
    def logical_bytes(self) -> float:
        """Uncompressed width of one value in bytes."""
        return self.dtype.bytes


@dataclass(frozen=True)
class TableSchema:
    """An ordered collection of :class:`ColumnSpec` with a table name."""

    name: str
    columns: Tuple[ColumnSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise StorageError("table name must be non-empty")
        if not self.columns:
            raise StorageError(f"table {self.name!r} must have at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise StorageError(f"duplicate column names in table {self.name!r}: {names}")

    @classmethod
    def build(cls, name: str, columns: Sequence[ColumnSpec]) -> "TableSchema":
        """Build a schema from any sequence of column specs."""
        return cls(name=name, columns=tuple(columns))

    @property
    def column_names(self) -> List[str]:
        """Names of all columns, in declaration order."""
        return [c.name for c in self.columns]

    def column(self, name: str) -> ColumnSpec:
        """Look up a column by name.

        Raises :class:`StorageError` if the column does not exist.
        """
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise StorageError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        """Whether a column with the given name exists."""
        return any(c.name == name for c in self.columns)

    def column_index(self, name: str) -> int:
        """Position of a column within the schema."""
        for index, spec in enumerate(self.columns):
            if spec.name == name:
                return index
        raise StorageError(f"table {self.name!r} has no column {name!r}")

    def subset(self, names: Iterable[str]) -> List[ColumnSpec]:
        """Return the column specs for the given names (validating each)."""
        return [self.column(name) for name in names]

    @property
    def tuple_logical_bytes(self) -> float:
        """Uncompressed width of one tuple (sum of logical column widths)."""
        return sum(c.logical_bytes for c in self.columns)

    @property
    def tuple_physical_bytes(self) -> float:
        """Compressed width of one tuple (sum of physical column widths)."""
        return sum(c.physical_bytes for c in self.columns)

    def physical_bytes_for(self, names: Iterable[str]) -> float:
        """Compressed width of the given column subset for one tuple."""
        return sum(self.column(name).physical_bytes for name in names)

    def describe(self) -> Dict[str, float]:
        """Summary dictionary used by reports and examples."""
        return {
            "columns": len(self.columns),
            "tuple_logical_bytes": self.tuple_logical_bytes,
            "tuple_physical_bytes": self.tuple_physical_bytes,
        }
