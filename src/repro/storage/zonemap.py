"""Zone maps (per-chunk min/max metadata).

Section 2 of the paper lists per-block min/max metadata ("small materialized
aggregates", Netezza "zonemaps") as one of the techniques that turn selective
queries into clustered-index-like scans — sometimes producing scan plans that
need a *set of non-contiguous chunk ranges*.  The attach policy struggles
with such plans, which is one of the motivations for relevance.

A :class:`ZoneMap` stores, for one column, the minimum and maximum value of
every chunk, and answers "which chunks can contain values in ``[lo, hi]``?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.common.errors import StorageError


@dataclass(frozen=True)
class ZoneMap:
    """Min/max metadata of one column, one entry per chunk."""

    column: str
    minima: Tuple[float, ...]
    maxima: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.minima) != len(self.maxima):
            raise StorageError("zone map minima/maxima must have equal length")
        if not self.minima:
            raise StorageError("zone map must cover at least one chunk")
        for index, (lo, hi) in enumerate(zip(self.minima, self.maxima)):
            if lo > hi:
                raise StorageError(
                    f"zone map entry {index} has min {lo} > max {hi}"
                )

    @property
    def num_chunks(self) -> int:
        """Number of chunks covered by this zone map."""
        return len(self.minima)

    def chunks_for_range(self, low: float, high: float) -> List[int]:
        """Chunks whose [min, max] interval intersects ``[low, high]``.

        Returns chunk ids in increasing order; possibly non-contiguous when
        the column is only *correlated* with the physical order.
        """
        if low > high:
            return []
        return [
            chunk
            for chunk in range(self.num_chunks)
            if not (self.maxima[chunk] < low or self.minima[chunk] > high)
        ]

    def selectivity(self, low: float, high: float) -> float:
        """Fraction of chunks that must be read for a range predicate."""
        if self.num_chunks == 0:
            return 0.0
        return len(self.chunks_for_range(low, high)) / self.num_chunks

    def ranges_for_range(self, low: float, high: float) -> List[Tuple[int, int]]:
        """Contiguous chunk ranges (inclusive) matching a predicate.

        A scan plan produced from a zone map is a list of such ranges; the
        Cooperative Scans framework accepts multi-range requests directly.
        """
        chunks = self.chunks_for_range(low, high)
        return group_contiguous(chunks)


def group_contiguous(chunks: Sequence[int]) -> List[Tuple[int, int]]:
    """Group a sorted sequence of chunk ids into inclusive contiguous ranges.

    >>> group_contiguous([0, 1, 2, 5, 6, 9])
    [(0, 2), (5, 6), (9, 9)]
    """
    ranges: List[Tuple[int, int]] = []
    start = None
    previous = None
    for chunk in chunks:
        if start is None:
            start = previous = chunk
            continue
        if chunk == previous + 1:
            previous = chunk
            continue
        ranges.append((start, previous))
        start = previous = chunk
    if start is not None:
        ranges.append((start, previous))
    return ranges


def build_zonemap(
    column: str, values: np.ndarray, tuples_per_chunk: int
) -> ZoneMap:
    """Build a zone map from raw column values.

    Parameters
    ----------
    column:
        Column name the map describes.
    values:
        The column data, in physical (storage) order.
    tuples_per_chunk:
        Number of tuples per chunk of the table's layout.
    """
    if values.ndim != 1:
        raise StorageError("zone map values must be a 1-D array")
    if len(values) == 0:
        raise StorageError("cannot build a zone map over an empty column")
    if tuples_per_chunk <= 0:
        raise StorageError("tuples_per_chunk must be positive")
    minima: List[float] = []
    maxima: List[float] = []
    for start in range(0, len(values), tuples_per_chunk):
        block = values[start : start + tuples_per_chunk]
        minima.append(float(np.min(block)))
        maxima.append(float(np.max(block)))
    return ZoneMap(column=column, minima=tuple(minima), maxima=tuple(maxima))
