"""Storage layer: table schemas, NSM/PAX and DSM physical layouts.

The scheduling experiments of the paper only depend on the *shape* of the
data on disk: how many chunks a table has, how many pages each (chunk,
column) block occupies, and which chunks a query needs.  This package
provides that shape:

* :mod:`repro.storage.schema` -- column types and table schemas,
* :mod:`repro.storage.compression` -- simulated light-weight compression
  (PFOR, PDICT, PFOR-DELTA) that determines physical value widths,
* :mod:`repro.storage.nsm` -- the row-store (NSM/PAX) layout in which a chunk
  is a fixed number of contiguous pages,
* :mod:`repro.storage.dsm` -- the column-store (DSM) layout in which chunks
  are logical tuple ranges with per-column physical page footprints,
* :mod:`repro.storage.zonemap` -- per-chunk min/max metadata used to turn
  range predicates into (possibly non-contiguous) chunk sets,
* :mod:`repro.storage.volumes` -- chunk-to-volume placement (striped or
  range-partitioned) for the multi-volume disk subsystem,
* :mod:`repro.storage.catalog` -- a simple named-table catalog.
"""

from repro.storage.schema import ColumnSpec, TableSchema, DataType
from repro.storage.compression import (
    CompressionScheme,
    NONE,
    PFOR,
    PFOR_DELTA,
    PDICT,
    physical_bits_per_value,
)
from repro.storage.nsm import NSMTableLayout
from repro.storage.dsm import DSMTableLayout, ColumnChunkBlock
from repro.storage.volumes import VolumeLayout
from repro.storage.zonemap import ZoneMap, build_zonemap
from repro.storage.catalog import Catalog

__all__ = [
    "ColumnSpec",
    "TableSchema",
    "DataType",
    "CompressionScheme",
    "NONE",
    "PFOR",
    "PFOR_DELTA",
    "PDICT",
    "physical_bits_per_value",
    "NSMTableLayout",
    "DSMTableLayout",
    "ColumnChunkBlock",
    "VolumeLayout",
    "ZoneMap",
    "build_zonemap",
    "Catalog",
]
