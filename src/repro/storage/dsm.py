"""DSM (column-store) physical layout.

Section 6.1 of the paper explains why DSM chunks are *logical* entities:
columns differ in physical width (data types, compression), so a fixed number
of tuples maps to a different number of pages per column, and chunk
boundaries generally do not coincide with page boundaries.  This module
computes, for every (chunk, column) pair, the set of physical pages that hold
its data — including the pages shared with neighbouring chunks, which is the
source of the "data waste" problem the DSM relevance functions must handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.common.errors import StorageError
from repro.common.units import ceil_div
from repro.storage.schema import ColumnSpec, TableSchema


@dataclass(frozen=True)
class ColumnChunkBlock:
    """The physical footprint of one logical chunk of one column.

    ``first_page`` / ``last_page`` are inclusive page indices *within that
    column's page sequence*.  ``shares_first_page`` / ``shares_last_page``
    indicate whether the boundary pages also contain data of the neighbouring
    chunks (the DSM logical/physical mismatch of Figure 9).
    """

    column: str
    chunk: int
    first_page: int
    last_page: int
    shares_first_page: bool
    shares_last_page: bool

    @property
    def num_pages(self) -> int:
        """Number of pages (inclusive range) holding this block."""
        return self.last_page - self.first_page + 1

    @property
    def exclusive_pages(self) -> int:
        """Pages used *only* by this chunk (not shared with neighbours)."""
        shared = int(self.shares_first_page) + int(self.shares_last_page)
        # A single shared page may serve as both first and last page.
        return max(0, self.num_pages - min(shared, self.num_pages))


@dataclass(frozen=True)
class DSMTableLayout:
    """Physical layout of a table stored column-wise (DSM).

    Attributes
    ----------
    schema:
        The logical table schema (physical widths come from the column specs,
        i.e. include compression).
    num_tuples:
        Number of tuples in the table.
    tuples_per_chunk:
        Number of tuples forming one *logical* chunk (e.g. 100 000 in the
        paper's example; our benchmarks derive it from a target chunk size).
    page_bytes:
        Size of one physical page, the DSM I/O and buffering unit.
    """

    schema: TableSchema
    num_tuples: int
    tuples_per_chunk: int
    page_bytes: int

    def __post_init__(self) -> None:
        if self.num_tuples <= 0:
            raise StorageError("num_tuples must be positive")
        if self.tuples_per_chunk <= 0:
            raise StorageError("tuples_per_chunk must be positive")
        if self.page_bytes <= 0:
            raise StorageError("page_bytes must be positive")

    @classmethod
    def with_target_chunk_bytes(
        cls,
        schema: TableSchema,
        num_tuples: int,
        target_chunk_bytes: int,
        page_bytes: int,
    ) -> "DSMTableLayout":
        """Pick ``tuples_per_chunk`` so a full-width chunk is about
        ``target_chunk_bytes`` of physical (compressed) data."""
        per_tuple = schema.tuple_physical_bytes
        if per_tuple <= 0:
            raise StorageError("schema has zero physical width")
        tuples = max(1, int(target_chunk_bytes / per_tuple))
        return cls(
            schema=schema,
            num_tuples=num_tuples,
            tuples_per_chunk=tuples,
            page_bytes=page_bytes,
        )

    # ------------------------------------------------------------------ chunks
    @property
    def num_chunks(self) -> int:
        """Number of logical chunks (last one may hold fewer tuples)."""
        return ceil_div(self.num_tuples, self.tuples_per_chunk)

    def _check_chunk(self, chunk: int) -> None:
        if not 0 <= chunk < self.num_chunks:
            raise StorageError(
                f"chunk {chunk} out of range for table {self.schema.name!r} "
                f"with {self.num_chunks} chunks"
            )

    def chunk_tuple_range(self, chunk: int) -> Tuple[int, int]:
        """Half-open tuple range ``[first, last)`` of a logical chunk."""
        self._check_chunk(chunk)
        first = chunk * self.tuples_per_chunk
        last = min(self.num_tuples, first + self.tuples_per_chunk)
        return first, last

    def chunk_tuple_count(self, chunk: int) -> int:
        """Number of tuples in a logical chunk."""
        first, last = self.chunk_tuple_range(chunk)
        return last - first

    def chunk_of_tuple(self, tuple_index: int) -> int:
        """Logical chunk holding the given tuple."""
        if not 0 <= tuple_index < self.num_tuples:
            raise StorageError(
                f"tuple {tuple_index} out of range (table has {self.num_tuples})"
            )
        return tuple_index // self.tuples_per_chunk

    def chunks_for_tuple_range(self, first_tuple: int, last_tuple: int) -> List[int]:
        """Chunks overlapping the half-open tuple range ``[first, last)``."""
        if first_tuple >= last_tuple:
            return []
        first_tuple = max(0, first_tuple)
        last_tuple = min(self.num_tuples, last_tuple)
        if first_tuple >= last_tuple:
            return []
        return list(
            range(self.chunk_of_tuple(first_tuple), self.chunk_of_tuple(last_tuple - 1) + 1)
        )

    # ----------------------------------------------------------------- columns
    def _column(self, name: str) -> ColumnSpec:
        return self.schema.column(name)

    def column_total_pages(self, column: str) -> int:
        """Total number of pages occupied by one column of the table."""
        spec = self._column(column)
        total_bytes = self.num_tuples * spec.physical_bytes
        return max(1, ceil_div(int(round(total_bytes)), self.page_bytes))

    def column_byte_range(self, column: str, chunk: int) -> Tuple[float, float]:
        """Byte offsets (within the column file) covered by a chunk."""
        spec = self._column(column)
        first, last = self.chunk_tuple_range(chunk)
        return first * spec.physical_bytes, last * spec.physical_bytes

    def block(self, column: str, chunk: int) -> ColumnChunkBlock:
        """Physical footprint of ``chunk`` for ``column``."""
        start_byte, end_byte = self.column_byte_range(column, chunk)
        first_page = int(start_byte // self.page_bytes)
        # end_byte is exclusive; the last touched byte is end_byte - epsilon.
        last_page = int(max(start_byte, end_byte - 1e-9) // self.page_bytes)
        last_page = max(first_page, last_page)
        shares_first = chunk > 0 and (start_byte % self.page_bytes) > 1e-9
        end_mod = end_byte % self.page_bytes
        shares_last = chunk < self.num_chunks - 1 and end_mod > 1e-9
        return ColumnChunkBlock(
            column=column,
            chunk=chunk,
            first_page=first_page,
            last_page=last_page,
            shares_first_page=shares_first,
            shares_last_page=shares_last,
        )

    def block_pages(self, column: str, chunk: int) -> int:
        """Number of pages holding ``chunk`` of ``column``."""
        return self.block(column, chunk).num_pages

    def chunk_pages(self, chunk: int, columns: Iterable[str]) -> int:
        """Total pages holding the given columns of one logical chunk."""
        return sum(self.block_pages(column, chunk) for column in columns)

    def chunk_pages_all_columns(self, chunk: int) -> int:
        """Total pages holding *all* columns of one logical chunk."""
        return self.chunk_pages(chunk, self.schema.column_names)

    def table_pages(self, columns: Iterable[str] | None = None) -> int:
        """Total pages of the table restricted to ``columns`` (default: all)."""
        names = list(columns) if columns is not None else self.schema.column_names
        return sum(self.column_total_pages(name) for name in names)

    def average_pages_per_chunk(self, column: str) -> float:
        """Average physical pages of one chunk of ``column`` (used by the
        attach policy's weighted column-overlap measure)."""
        return self.column_total_pages(column) / self.num_chunks

    def describe(self) -> Dict[str, object]:
        """Summary dictionary used by reports and examples."""
        per_column = {
            spec.name: {
                "physical_bits": spec.physical_bits,
                "total_pages": self.column_total_pages(spec.name),
                "pages_per_chunk": round(self.average_pages_per_chunk(spec.name), 3),
            }
            for spec in self.schema.columns
        }
        return {
            "table": self.schema.name,
            "num_tuples": self.num_tuples,
            "tuples_per_chunk": self.tuples_per_chunk,
            "num_chunks": self.num_chunks,
            "page_bytes": self.page_bytes,
            "total_pages": self.table_pages(),
            "columns": per_column,
        }
