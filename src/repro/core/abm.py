"""The Active Buffer Manager (ABM).

The ABM is the component at the heart of the Cooperative Scans framework
(Figure 1 of the paper): it keeps track of every registered CScan operator
and of the chunks currently buffered, and it decides — through a pluggable
scheduling policy — which chunk to load next, on behalf of which query, and
which chunk to evict to make room.

Two variants are provided:

* :class:`ActiveBufferManager` for row storage (NSM/PAX), where a chunk is a
  fixed-size physical unit and the buffer is counted in chunk slots;
* :class:`DSMActiveBufferManager` for column storage, where chunks are
  logical and the buffer is counted in pages of per-column blocks.

The ABM itself is time-agnostic: the driver (the discrete-event simulator in
:mod:`repro.sim`, or the in-memory engine in :mod:`repro.engine`) passes the
current time into every call and executes the returned load operations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bufman.slots import BlockKey, ChunkSlotPool, DSMBlockPool
from repro.common.errors import SchedulingError
from repro.core.cscan import CScanHandle, ScanRequest
from repro.core.interest import (
    DSMInterestTracker,
    InterestTracker,
    VectorDSMInterestTracker,
    VectorInterestTracker,
    vector_interest_available,
)
from repro.core.ops import ColumnLoad, DSMLoadOperation, LoadOperation
from repro.storage.dsm import DSMTableLayout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from typing import Union

    from repro.core.policies.base import DSMSchedulingPolicy, SchedulingPolicy

#: Fallback starvation thresholds for policies without
#: :class:`repro.core.policies.relevance.RelevanceParameters` (the paper's
#: defaults: starved below 2 available chunks, almost starved at 2).
_DEFAULT_STARVATION_THRESHOLD = 2
_DEFAULT_ALMOST_STARVED_THRESHOLD = 2


class _BaseABM:
    """State and bookkeeping shared by the NSM and DSM buffer managers."""

    def __init__(self, incremental: bool = True) -> None:
        self._handles: Dict[int, CScanHandle] = {}
        #: Whether the relevance aggregates are maintained incrementally
        #: (:mod:`repro.core.interest`); ``False`` falls back to the naive
        #: recompute-from-scratch walks.  Both modes make bit-for-bit
        #: identical scheduling decisions.
        self.incremental = incremental
        #: The interest tracker (set by the concrete ABM after binding the
        #: policy, because the starvation thresholds come from the policy).
        self.tracker: "Union[InterestTracker, DSMInterestTracker, None]" = None
        #: Number of I/O requests issued so far (NSM: one per chunk load,
        #: DSM: one per column block).
        self.io_requests: int = 0
        #: Loads attributed to the query that triggered them (for the paper's
        #: per-query-type I/O columns in Tables 2 and 3).
        self.loads_triggered: Dict[int, int] = {}
        #: Total number of chunk consumptions served from already-buffered
        #: data without triggering a load for that query.
        self.buffer_hits: int = 0
        #: Load operations issued but not yet completed.  With a single-volume
        #: disk this is 0 or 1; a multi-volume driver keeps up to one load in
        #: flight per volume, so the ABM must tolerate (and the pools already
        #: account for) several concurrent loads.
        self.pending_loads: int = 0
        #: Optional flight recorder (:meth:`attach_observability`); ``None``
        #: records nothing and costs one attribute test per decision.
        self._obs = None
        self._obs_pid = "service"
        self._obs_starved_gauge = "service.abm.starved_queries"
        self._obs_hit_gauge = "service.abm.hit_rate"
        #: Last observed per-query starvation state (only maintained while a
        #: recorder is attached; used to emit starvation *flips* only).
        self._obs_starved: Dict[int, bool] = {}
        self._obs_starved_count = 0

    # -------------------------------------------------------- observability
    def attach_observability(self, flight, process: str = "service") -> None:
        """Emit load/evict/attach and starvation-flip events into ``flight``."""
        self._obs = flight
        self._obs_pid = process
        self._obs_starved_gauge = f"{process}.abm.starved_queries"
        self._obs_hit_gauge = f"{process}.abm.hit_rate"

    def _obs_starvation_update(self, handle: CScanHandle, now: float) -> None:
        """Emit an event when this handle's starvation state flipped."""
        query_id = handle.query_id
        starved = (not handle.finished) and self.is_starved(handle)
        if self._obs_starved.get(query_id, False) == starved:
            self._obs_starved[query_id] = starved
            return
        self._obs_starved[query_id] = starved
        self._obs_starved_count += 1 if starved else -1
        self._obs.instant(
            "abm.starved" if starved else "abm.unstarved",
            "abm", now, self._obs_pid, "abm", query=query_id,
        )
        self._obs.set_gauge(
            self._obs_starved_gauge, now, self._obs_starved_count
        )

    def _obs_starvation_sweep(self, now: float) -> None:
        """Re-check every registered handle (availability just changed)."""
        for handle in self._handles.values():
            self._obs_starvation_update(handle, now)

    def _obs_forget(self, query_id: int, now: float) -> None:
        if self._obs_starved.pop(query_id, False):
            self._obs_starved_count -= 1
            self._obs.set_gauge(
                self._obs_starved_gauge, now, self._obs_starved_count
            )

    def _obs_hit_rate_gauge(self, now: float) -> None:
        if self.buffer_hits > 0:
            rate = max(0.0, 1.0 - self.io_requests / self.buffer_hits)
            self._obs.set_gauge(self._obs_hit_gauge, now, rate)

    # ------------------------------------------------------------ queries
    def register(self, request: ScanRequest, now: float) -> CScanHandle:
        """Register a new CScan operator and return its handle."""
        if request.query_id in self._handles:
            raise SchedulingError(f"query {request.query_id} already registered")
        handle = CScanHandle(request, now)
        self._handles[request.query_id] = handle
        # Every registered query gets an attribution entry, even if it never
        # triggers a load of its own; next_load can then bump it blindly.
        self.loads_triggered.setdefault(request.query_id, 0)
        if self.tracker is not None:
            self.tracker.on_register(handle)
        self._policy().on_register(handle, now)
        if self._obs is not None:
            self._obs.instant(
                "abm.register", "abm", now, self._obs_pid, "abm",
                query=request.query_id, chunks=request.num_chunks,
            )
            self._obs_starvation_update(handle, now)
        return handle

    def unregister(self, query_id: int, now: float) -> CScanHandle:
        """Remove a (normally finished) query from the ABM."""
        handle = self._handle(query_id)
        del self._handles[query_id]
        if self.tracker is not None:
            self.tracker.on_unregister(handle)
        self._policy().on_unregister(handle, now)
        if self._obs is not None:
            self._obs.instant(
                "abm.unregister", "abm", now, self._obs_pid, "abm",
                query=query_id,
            )
            self._obs_forget(query_id, now)
        return handle

    def _handle(self, query_id: int) -> CScanHandle:
        try:
            return self._handles[query_id]
        except KeyError as exc:
            raise SchedulingError(f"unknown query {query_id}") from exc

    def handle(self, query_id: int) -> CScanHandle:
        """Public accessor for a registered handle."""
        return self._handle(query_id)

    def active_handles(self) -> List[CScanHandle]:
        """All currently registered (unfinished) scans."""
        return list(self._handles.values())

    def num_active(self) -> int:
        """Number of currently registered scans."""
        return len(self._handles)

    def interested_handles(self, chunk: int) -> List[CScanHandle]:
        """Handles that still need the given chunk (registration order)."""
        if self.tracker is not None:
            handles = self._handles
            return [handles[qid] for qid in self.tracker.interested_ids(chunk)]
        return [handle for handle in self._handles.values() if handle.is_interested(chunk)]

    def interested_count(self, chunk: int) -> int:
        """Number of registered scans that still need the given chunk."""
        if self.tracker is not None:
            return self.tracker.interested_count(chunk)
        return sum(1 for handle in self._handles.values() if handle.is_interested(chunk))

    # --------------------------------------------------------- starvation
    def _snapshot_thresholds(self) -> None:
        """Capture the starvation thresholds from the bound policy's
        :class:`RelevanceParameters` (falling back to the paper's defaults),
        so ablations of the threshold affect the whole starvation logic.
        Snapshotting once at construction keeps the naive predicates and the
        incremental tracker in agreement by construction; the parameters
        dataclass is frozen, so they cannot legitimately change later."""
        parameters = getattr(self._policy(), "parameters", None)
        if parameters is not None:
            self._starvation_threshold = parameters.starvation_threshold
            self._almost_starved_threshold = parameters.almost_starved_threshold
        else:
            self._starvation_threshold = _DEFAULT_STARVATION_THRESHOLD
            self._almost_starved_threshold = _DEFAULT_ALMOST_STARVED_THRESHOLD

    @property
    def starvation_threshold(self) -> int:
        """A query is starved below this many available chunks."""
        return self._starvation_threshold

    @property
    def almost_starved_threshold(self) -> int:
        """A query is almost starved at or below this many available chunks."""
        return self._almost_starved_threshold

    def is_starved(self, handle: CScanHandle) -> bool:
        """The paper's ``queryStarved``: fewer available chunks than the
        bound policy's starvation threshold."""
        return self.num_available_chunks(handle) < self.starvation_threshold

    def is_almost_starved(self, handle: CScanHandle) -> bool:
        """On the border of starvation: at or below the almost-starved
        threshold (used by ``keepRelevance``)."""
        return self.num_available_chunks(handle) <= self.almost_starved_threshold

    def starved_handles(self) -> List[CScanHandle]:
        """All registered scans that are currently starved (registration
        order)."""
        if self.tracker is not None:
            handles = self._handles
            return [handles[qid] for qid in self.tracker.starved_ids_ordered()]
        return [handle for handle in self._handles.values() if self.is_starved(handle)]

    def starved_interested_count(self, chunk: int) -> int:
        """Number of interested queries of the chunk that are starved (the
        ``Qmax``-weighted term of ``loadRelevance``)."""
        if self.tracker is not None:
            return self.tracker.starved_interested_count(chunk)
        return sum(1 for handle in self.interested_handles(chunk) if self.is_starved(handle))

    def almost_starved_interested_count(self, chunk: int) -> int:
        """Number of interested queries of the chunk that are almost starved
        (the ``Qmax``-weighted term of ``keepRelevance``)."""
        if self.tracker is not None:
            return self.tracker.almost_starved_interested_count(chunk)
        return sum(
            1 for handle in self.interested_handles(chunk) if self.is_almost_starved(handle)
        )

    def num_available_chunks(self, handle: CScanHandle) -> int:
        """Count of chunks the query could consume right now."""
        raise NotImplementedError

    def _policy(self):
        raise NotImplementedError

    def _vector_tracker_class(self):
        """The vectorised tracker variant for this ABM (or ``None``)."""
        return None

    def enable_vector_interest(self) -> bool:
        """Swap the interest tracker for its numpy-counter variant.

        Called by the simulator when the numpy engine is selected, before
        any query registers.  Returns ``True`` when the vector tracker is
        (now) active; ``False`` when it cannot be used (naive mode, or
        numpy missing) — the caller then simply runs with scalar counters.
        Both trackers make bit-for-bit identical decisions, so this is a
        pure representation change.
        """
        if not self.incremental or not vector_interest_available():
            return False
        cls = self._vector_tracker_class()
        if cls is None:
            return False
        if isinstance(self.tracker, cls):
            return True
        if self._handles:
            raise SchedulingError(
                "enable_vector_interest must run before any query registers"
            )
        self.tracker = cls(
            self.pool,
            self.starvation_threshold,
            self.almost_starved_threshold,
            self.num_chunks,
        )
        self.pool.listener = self.tracker
        return True


class ActiveBufferManager(_BaseABM):
    """Active Buffer Manager for row storage (NSM / PAX).

    Parameters
    ----------
    num_chunks:
        Number of chunks of the (clustered) table the scans run against.
    capacity_chunks:
        Buffer pool size in chunk slots.
    policy:
        A :class:`repro.core.policies.base.SchedulingPolicy` instance.
    chunk_bytes:
        Size of a full chunk; used to compute transfer sizes.
    chunk_sizes:
        Optional per-chunk byte sizes (the last chunk of a table is usually
        smaller); defaults to ``chunk_bytes`` for every chunk.
    incremental:
        Maintain the relevance aggregates incrementally (the default); pass
        ``False`` to fall back to the naive recompute-from-scratch walks
        (same decisions, O(queries x chunks) per decision).
    """

    def __init__(
        self,
        num_chunks: int,
        capacity_chunks: int,
        policy: "SchedulingPolicy",
        chunk_bytes: int,
        chunk_sizes: Optional[Sequence[int]] = None,
        incremental: bool = True,
    ) -> None:
        super().__init__(incremental=incremental)
        if num_chunks < 1:
            raise SchedulingError("table must have at least one chunk")
        self.num_chunks = num_chunks
        self.chunk_bytes = chunk_bytes
        if chunk_sizes is not None and len(chunk_sizes) != num_chunks:
            raise SchedulingError("chunk_sizes must list one size per chunk")
        self._chunk_sizes = list(chunk_sizes) if chunk_sizes is not None else None
        self.pool = ChunkSlotPool(capacity_chunks)
        self.policy = policy
        policy.bind(self)
        self._snapshot_thresholds()
        if incremental:
            self.tracker = InterestTracker(
                self.pool, self.starvation_threshold, self.almost_starved_threshold
            )
            # The pool drives availability updates (loads and evictions), so
            # the tracker stays consistent even when a test or driver mutates
            # the pool directly.
            self.pool.listener = self.tracker

    def _policy(self) -> "SchedulingPolicy":
        return self.policy

    def _vector_tracker_class(self):
        return VectorInterestTracker

    # ----------------------------------------------------------- inspection
    def chunk_size(self, chunk: int) -> int:
        """Size in bytes of one chunk."""
        if self._chunk_sizes is not None:
            return self._chunk_sizes[chunk]
        return self.chunk_bytes

    def available_chunks(self, handle: CScanHandle) -> List[int]:
        """Buffered chunks the query still needs (including the current one)."""
        if self.tracker is not None and self.tracker.knows(handle.query_id):
            return sorted(self.tracker.available_chunks(handle.query_id))
        return [chunk for chunk in handle.needed if chunk in self.pool]

    def num_available_chunks(self, handle: CScanHandle) -> int:
        """Count of buffered chunks the query still needs."""
        if self.tracker is not None and self.tracker.knows(handle.query_id):
            return self.tracker.available_count(handle.query_id)
        return sum(1 for chunk in handle.needed if chunk in self.pool)

    # ------------------------------------------------------------ data path
    def select_chunk(self, query_id: int, now: float) -> Optional[int]:
        """Pick the next buffered chunk for a query to consume (``selectChunk``).

        Returns ``None`` when no suitable chunk is buffered; the caller should
        then block the query until :meth:`complete_load` wakes it.  When a
        chunk is returned it is pinned on behalf of the query.
        """
        handle = self._handle(query_id)
        if handle.finished:
            return None
        chunk = self.policy.select_chunk_to_consume(handle, now)
        if chunk is None:
            handle.mark_blocked(now)
            self.policy.on_query_blocked(handle, now)
            return None
        if chunk not in self.pool:
            raise SchedulingError(
                f"policy {self.policy.name} selected non-buffered chunk {chunk}"
            )
        if not handle.is_interested(chunk):
            raise SchedulingError(
                f"policy {self.policy.name} selected chunk {chunk} "
                f"not needed by query {query_id}"
            )
        self.pool.pin(chunk, now)
        handle.start_chunk(chunk, now)
        self.buffer_hits += 1
        if self._obs is not None:
            self._obs.instant(
                "abm.attach", "abm", now, self._obs_pid, "abm",
                query=query_id, chunk=chunk,
            )
            self._obs_hit_rate_gauge(now)
        return chunk

    def finish_chunk(self, query_id: int, now: float) -> int:
        """Record that a query finished consuming its current chunk."""
        handle = self._handle(query_id)
        chunk = handle.finish_chunk(now)
        self.pool.unpin(chunk, now)
        if self.tracker is not None:
            self.tracker.on_chunk_finished(handle, chunk)
        self.policy.on_chunk_consumed(handle, chunk, now)
        if self._obs is not None:
            self._obs_starvation_update(handle, now)
        return chunk

    def cancel(self, query_id: int, now: float) -> CScanHandle:
        """Abort an unfinished query: release its pin and unregister it.

        Used by the cluster layer for hedged losers and shard fail-stop.
        Any load the query triggered stays in flight (its data lands in the
        pool for the surviving queries); only the consumption pin is undone.
        """
        handle = self._handle(query_id)
        chunk = handle.abandon_chunk()
        if chunk is not None:
            self.pool.unpin(chunk, now)
        return self.unregister(query_id, now)

    def next_load(self, now: float) -> Optional[LoadOperation]:
        """Decide the next disk operation (``ABM main loop`` body).

        Returns ``None`` when the policy has nothing to schedule (all queries
        satisfied for now) or when no room can be made in the buffer pool.
        """
        decision = self.policy.choose_load(now)
        if decision is None:
            return None
        query_id, chunk = decision
        if chunk in self.pool or self.pool.is_loading(chunk):
            raise SchedulingError(
                f"policy {self.policy.name} chose chunk {chunk} which is already "
                "buffered or being loaded"
            )
        evicted: Tuple[int, ...] = ()
        if not self.pool.has_free_slot():
            victims = self.policy.choose_evictions(query_id, chunk, now)
            if not victims:
                return None
            for victim in victims:
                self.pool.evict(victim)
            evicted = tuple(victims)
        self.pool.start_load(chunk)
        self.io_requests += 1
        self.pending_loads += 1
        self.loads_triggered[query_id] += 1
        if self._obs is not None:
            if evicted:
                self._obs.instant(
                    "abm.evict", "abm", now, self._obs_pid, "abm",
                    victims=list(evicted), for_chunk=chunk,
                )
                self._obs_starvation_sweep(now)
            self._obs.instant(
                "abm.load.issue", "abm", now, self._obs_pid, "abm",
                chunk=chunk, query=query_id,
                num_bytes=self.chunk_size(chunk),
            )
        return LoadOperation(
            chunk=chunk,
            triggered_by=query_id,
            num_bytes=self.chunk_size(chunk),
            evicted=evicted,
        )

    def complete_load(self, operation: LoadOperation, now: float) -> List[int]:
        """Mark a load as finished; returns the blocked queries it may wake."""
        if self.pending_loads <= 0:
            raise SchedulingError("complete_load without a matching next_load")
        self.pending_loads -= 1
        self.pool.complete_load(operation.chunk, now)
        self.policy.on_chunk_loaded(operation.chunk, now)
        woken = [
            handle.query_id
            for handle in self.interested_handles(operation.chunk)
            if handle.is_blocked
        ]
        if self._obs is not None:
            self._obs.instant(
                "abm.load.complete", "abm", now, self._obs_pid, "abm",
                chunk=operation.chunk, query=operation.triggered_by,
                woken=len(woken),
            )
            self._obs_starvation_sweep(now)
        return woken


class DSMActiveBufferManager(_BaseABM):
    """Active Buffer Manager for column storage (DSM).

    The buffer is accounted in pages.  A chunk is *ready* for a query when all
    the column blocks the query needs are buffered; loads fetch the missing
    column blocks of one logical chunk (possibly for a superset of the
    triggering query's columns, as decided by the policy).
    """

    def __init__(
        self,
        layout: DSMTableLayout,
        capacity_pages: int,
        policy: "DSMSchedulingPolicy",
        incremental: bool = True,
    ) -> None:
        super().__init__(incremental=incremental)
        self.layout = layout
        self.num_chunks = layout.num_chunks
        self.pool = DSMBlockPool(capacity_pages)
        self.policy = policy
        #: Number of individual column-block transfers (an NSM-comparable
        #: "I/O request" is one chunk-level load operation; this counter keeps
        #: the finer per-column granularity for diagnostics).
        self.column_block_requests: int = 0
        self._block_pages_cache: Dict[BlockKey, int] = {}
        policy.bind(self)
        self._snapshot_thresholds()
        if incremental:
            self.tracker = DSMInterestTracker(
                self.pool, self.starvation_threshold, self.almost_starved_threshold
            )
            self.pool.listener = self.tracker

    def _policy(self) -> "DSMSchedulingPolicy":
        return self.policy

    def _vector_tracker_class(self):
        return VectorDSMInterestTracker

    # ----------------------------------------------------------- inspection
    def block_pages(self, chunk: int, column: str) -> int:
        """Pages of one column block of one chunk (cached)."""
        key = (chunk, column)
        pages = self._block_pages_cache.get(key)
        if pages is None:
            pages = self.layout.block_pages(column, chunk)
            self._block_pages_cache[key] = pages
        return pages

    def chunk_ready(self, handle: CScanHandle, chunk: int) -> bool:
        """Whether every column the query needs is buffered for this chunk."""
        return all(self.pool.has_block(chunk, column) for column in handle.columns)

    def missing_columns(self, chunk: int, columns: Iterable[str]) -> List[str]:
        """Columns of ``columns`` whose block for ``chunk`` is not buffered
        and not currently being loaded."""
        return [
            column
            for column in columns
            if not self.pool.has_block(chunk, column)
            and not self.pool.is_loading((chunk, column))
        ]

    def chunk_load_pages(self, chunk: int, columns: Iterable[str]) -> int:
        """Pages that would have to be read to complete ``chunk`` for ``columns``."""
        return sum(
            self.block_pages(chunk, column)
            for column in self.missing_columns(chunk, columns)
        )

    def available_chunks(self, handle: CScanHandle) -> List[int]:
        """Chunks the query still needs whose required columns are all buffered."""
        if self.tracker is not None and self.tracker.knows(handle.query_id):
            return sorted(self.tracker.available_chunks(handle.query_id))
        return [chunk for chunk in handle.needed if self.chunk_ready(handle, chunk)]

    def num_available_chunks(self, handle: CScanHandle) -> int:
        """Count of ready chunks for the query."""
        if self.tracker is not None and self.tracker.knows(handle.query_id):
            return self.tracker.available_count(handle.query_id)
        return sum(1 for chunk in handle.needed if self.chunk_ready(handle, chunk))

    def cached_pages_for(self, handle: CScanHandle, chunk: int) -> int:
        """Buffered pages of the query's columns for one needed chunk (the
        ``useRelevance`` numerator and the reservation criterion)."""
        if self.tracker is not None:
            pages = self.tracker.cached_pages(handle.query_id, chunk)
            if pages is not None:
                return pages
        return self.pool.chunk_cached_pages(chunk, handle.columns)

    def overlapping_handles(self, chunk: int, columns: Iterable[str]) -> List[CScanHandle]:
        """Handles interested in ``chunk`` that share at least one column with
        ``columns`` (the DSM notion of overlap from Figure 11)."""
        wanted = set(columns)
        return [
            handle
            for handle in self.interested_handles(chunk)
            if wanted.intersection(handle.columns)
        ]

    # ------------------------------------------------------------ data path
    def select_chunk(self, query_id: int, now: float) -> Optional[int]:
        """Pick the next ready chunk for a query to consume, pinning its blocks."""
        handle = self._handle(query_id)
        if handle.finished:
            return None
        chunk = self.policy.select_chunk_to_consume(handle, now)
        if chunk is None:
            handle.mark_blocked(now)
            self.policy.on_query_blocked(handle, now)
            return None
        if not handle.is_interested(chunk):
            raise SchedulingError(
                f"policy {self.policy.name} selected chunk {chunk} "
                f"not needed by query {query_id}"
            )
        if not self.chunk_ready(handle, chunk):
            raise SchedulingError(
                f"policy {self.policy.name} selected chunk {chunk} whose columns "
                f"are not all buffered for query {query_id}"
            )
        for column in handle.columns:
            self.pool.pin((chunk, column), now)
        handle.start_chunk(chunk, now)
        self.buffer_hits += 1
        if self._obs is not None:
            self._obs.instant(
                "abm.attach", "abm", now, self._obs_pid, "abm",
                query=query_id, chunk=chunk,
            )
            self._obs_hit_rate_gauge(now)
        return chunk

    def finish_chunk(self, query_id: int, now: float) -> int:
        """Record that a query finished consuming its current chunk."""
        handle = self._handle(query_id)
        chunk = handle.current_chunk
        if chunk is None:
            raise SchedulingError(f"query {query_id} is not consuming a chunk")
        handle.finish_chunk(now)
        for column in handle.columns:
            self.pool.unpin((chunk, column), now)
        if self.tracker is not None:
            self.tracker.on_chunk_finished(handle, chunk)
        self.policy.on_chunk_consumed(handle, chunk, now)
        if self._obs is not None:
            self._obs_starvation_update(handle, now)
        return chunk

    def cancel(self, query_id: int, now: float) -> CScanHandle:
        """Abort an unfinished query: release its block pins and unregister.

        The DSM twin of :meth:`ActiveBufferManager.cancel` — every column
        block pinned for the chunk being consumed is unpinned before the
        handle is removed.
        """
        handle = self._handle(query_id)
        chunk = handle.abandon_chunk()
        if chunk is not None:
            for column in handle.columns:
                self.pool.unpin((chunk, column), now)
        return self.unregister(query_id, now)

    def next_load(self, now: float) -> Optional[DSMLoadOperation]:
        """Decide the next disk operation for the DSM store."""
        decision = self.policy.choose_load(now)
        if decision is None:
            return None
        query_id, chunk, columns = decision
        missing = self.missing_columns(chunk, columns)
        if not missing:
            raise SchedulingError(
                f"policy {self.policy.name} chose chunk {chunk} with no missing columns"
            )
        pages_needed = sum(self.block_pages(chunk, column) for column in missing)
        evicted: Tuple[BlockKey, ...] = ()
        if pages_needed > self.pool.free_pages():
            victims = self.policy.choose_evictions(
                query_id, chunk, pages_needed - self.pool.free_pages(), now
            )
            if victims is None:
                return None
            freed = 0
            applied: List[BlockKey] = []
            for victim in victims:
                freed += self.pool.evict(victim)
                applied.append(victim)
            evicted = tuple(applied)
            if pages_needed > self.pool.free_pages():
                raise SchedulingError(
                    f"policy {self.policy.name} eviction freed {freed} pages but "
                    f"{pages_needed} are needed"
                )
        blocks: List[ColumnLoad] = []
        for column in missing:
            pages = self.block_pages(chunk, column)
            self.pool.start_load((chunk, column), pages)
            blocks.append(
                ColumnLoad(
                    column=column,
                    pages=pages,
                    num_bytes=pages * self.layout.page_bytes,
                )
            )
        # Column loading order: smallest blocks first (Section 6.2) so that
        # queries depending only on narrow columns can be woken earlier.
        blocks.sort(key=lambda block: (block.pages, block.column))
        # One chunk-level load operation counts as one I/O request (the blocks
        # of a chunk are issued together with scatter-gather I/O), which keeps
        # the counter comparable with the NSM experiments and with Table 3.
        self.io_requests += 1
        self.pending_loads += 1
        self.column_block_requests += len(blocks)
        self.loads_triggered[query_id] += 1
        if self._obs is not None:
            if evicted:
                self._obs.instant(
                    "abm.evict", "abm", now, self._obs_pid, "abm",
                    victims=[list(victim) for victim in evicted],
                    for_chunk=chunk,
                )
                self._obs_starvation_sweep(now)
            self._obs.instant(
                "abm.load.issue", "abm", now, self._obs_pid, "abm",
                chunk=chunk, query=query_id,
                columns=[block.column for block in blocks],
                num_bytes=sum(block.num_bytes for block in blocks),
            )
        return DSMLoadOperation(
            chunk=chunk,
            triggered_by=query_id,
            blocks=tuple(blocks),
            evicted=evicted,
        )

    def complete_load(self, operation: DSMLoadOperation, now: float) -> List[int]:
        """Mark a DSM load as finished; returns blocked queries it may wake."""
        if self.pending_loads <= 0:
            raise SchedulingError("complete_load without a matching next_load")
        self.pending_loads -= 1
        for block in operation.blocks:
            self.pool.complete_load((operation.chunk, block.column), now)
        self.policy.on_chunk_loaded(operation.chunk, now)
        woken = []
        for handle in self.interested_handles(operation.chunk):
            if handle.is_blocked and self.chunk_ready(handle, operation.chunk):
                woken.append(handle.query_id)
        if self._obs is not None:
            self._obs.instant(
                "abm.load.complete", "abm", now, self._obs_pid, "abm",
                chunk=operation.chunk, query=operation.triggered_by,
                woken=len(woken),
            )
            self._obs_starvation_sweep(now)
        return woken
