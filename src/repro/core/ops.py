"""Load-operation descriptions returned by the Active Buffer Manager.

The simulator asks the ABM "what should the disk do next?" and receives one of
these objects (or ``None`` when the disk should stay idle).  The operation
already reflects any evictions performed to make room; the simulator only has
to time the transfer and report completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.bufman.slots import BlockKey


@dataclass(frozen=True)
class LoadOperation:
    """One NSM chunk load."""

    chunk: int
    triggered_by: int
    num_bytes: int
    evicted: Tuple[int, ...] = ()

    @property
    def io_requests(self) -> int:
        """Number of I/O requests this operation counts as (always 1 in NSM)."""
        return 1


@dataclass(frozen=True)
class ColumnLoad:
    """One column block of a DSM load operation."""

    column: str
    pages: int
    num_bytes: int


@dataclass(frozen=True)
class DSMLoadOperation:
    """One DSM load: the missing column blocks of one logical chunk.

    ``blocks`` is ordered by increasing size (the paper's "column loading
    order" heuristic: load small columns first so queries needing only those
    can be woken earlier).
    """

    chunk: int
    triggered_by: int
    blocks: Tuple[ColumnLoad, ...]
    evicted: Tuple[BlockKey, ...] = ()

    @property
    def num_bytes(self) -> int:
        """Total bytes transferred by this operation."""
        return sum(block.num_bytes for block in self.blocks)

    @property
    def total_pages(self) -> int:
        """Total pages transferred by this operation."""
        return sum(block.pages for block in self.blocks)

    @property
    def io_requests(self) -> int:
        """Number of I/O requests (one per column block)."""
        return len(self.blocks)

    @property
    def columns(self) -> Tuple[str, ...]:
        """Columns loaded by this operation."""
        return tuple(block.column for block in self.blocks)
