"""The Cooperative Scans framework (the paper's primary contribution).

The two central components are:

* :class:`repro.core.cscan.ScanRequest` / :class:`repro.core.cscan.CScanHandle`
  — the CScan operator's registration with the buffer manager: which chunks
  (and, for DSM, which columns) the query still needs, plus bookkeeping used
  by the relevance functions (waiting time, starvation);
* :class:`repro.core.abm.ActiveBufferManager` (NSM) and
  :class:`repro.core.abm.DSMActiveBufferManager` (DSM) — the Active Buffer
  Manager that owns the chunk/block pool and delegates load, consume and
  eviction decisions to a pluggable scheduling policy.

Policies live in :mod:`repro.core.policies`; ``normal``, ``attach``,
``elevator`` and ``relevance`` are provided for both storage models and are
instantiated by name through :func:`repro.core.policies.make_policy`.
"""

from repro.core.cscan import ScanRequest, CScanHandle
from repro.core.ops import LoadOperation, DSMLoadOperation, ColumnLoad
from repro.core.abm import ActiveBufferManager, DSMActiveBufferManager
from repro.core.policies import (
    make_policy,
    make_dsm_policy,
    POLICY_NAMES,
)

__all__ = [
    "ScanRequest",
    "CScanHandle",
    "LoadOperation",
    "DSMLoadOperation",
    "ColumnLoad",
    "ActiveBufferManager",
    "DSMActiveBufferManager",
    "make_policy",
    "make_dsm_policy",
    "POLICY_NAMES",
]
