"""The *normal* policy: per-query sequential scans with LRU buffering.

This is the traditional baseline of Section 3: every query reads the chunks
it needs strictly in table order, the buffer manager applies LRU, and the
only sharing that happens is accidental (a chunk another query loaded happens
to still be cached when this query's cursor reaches it).  Outstanding
requests of blocked queries are served first-come-first-served, which yields
the round-robin servicing pattern the paper describes; queries additionally
prefetch one chunk ahead so that CPU work overlaps with I/O (the "factor 2
because of prefetching" buffer demand mentioned in Section 6.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.cscan import CScanHandle
from repro.core.policies.base import SchedulingPolicy


class SequentialCursorPolicy(SchedulingPolicy):
    """Shared machinery for policies that deliver chunks in a fixed per-query
    order (*normal* delivers in table order, *attach* in a rotated order)."""

    name = "sequential"

    def __init__(self, prefetch: bool = True) -> None:
        super().__init__()
        #: Whether queries prefetch one chunk ahead of their cursor (async
        #: I/O); disabling it models a fully synchronous scan, which is the
        #: cold standalone baseline used to normalise latencies.
        self._prefetch = prefetch
        #: Consumption order per query (list of chunk ids).
        self._order: Dict[int, List[int]] = {}
        #: Index of the next chunk (within the order list) each query expects.
        self._position: Dict[int, int] = {}
        #: Last time a load was issued on behalf of each query; makes the
        #: service of outstanding requests round-robin (FCFS per request, not
        #: per query lifetime).
        self._last_service: Dict[int, float] = {}

    # ---------------------------------------------------------------- hooks
    def on_register(self, handle: CScanHandle, now: float) -> None:
        self._order[handle.query_id] = self._initial_order(handle, now)
        self._position[handle.query_id] = 0

    def _initial_order(self, handle: CScanHandle, now: float) -> List[int]:
        """Consumption order for a new query; *normal* uses plain table order."""
        return sorted(handle.request.chunks)

    def on_unregister(self, handle: CScanHandle, now: float) -> None:
        self._order.pop(handle.query_id, None)
        self._position.pop(handle.query_id, None)
        self._last_service.pop(handle.query_id, None)

    def on_chunk_consumed(self, handle: CScanHandle, chunk: int, now: float) -> None:
        # The cursor is advanced when the chunk is *selected*; nothing to do.
        pass

    # ------------------------------------------------------------- delivery
    def _cursor_chunk(self, handle: CScanHandle) -> Optional[int]:
        """The next chunk (in this query's order) that is not yet consumed."""
        order = self._order[handle.query_id]
        position = self._position[handle.query_id]
        while position < len(order) and order[position] in handle.consumed:
            position += 1
        self._position[handle.query_id] = position
        if position >= len(order):
            return None
        return order[position]

    def _chunk_after_cursor(self, handle: CScanHandle) -> Optional[int]:
        """The chunk following the cursor (prefetch target), if any."""
        order = self._order[handle.query_id]
        position = self._position[handle.query_id] + 1
        while position < len(order) and order[position] in handle.consumed:
            position += 1
        if position >= len(order):
            return None
        return order[position]

    def select_chunk_to_consume(self, handle: CScanHandle, now: float) -> Optional[int]:
        chunk = self._cursor_chunk(handle)
        if chunk is None:
            return None
        if chunk not in self.abm.pool:
            return None
        self._position[handle.query_id] += 1
        return chunk

    # ----------------------------------------------------------------- loads
    def _wanted_chunk(self, handle: CScanHandle) -> Optional[int]:
        """The chunk this query wants loaded next (demand or one-ahead prefetch)."""
        pool = self.abm.pool
        candidate = self._cursor_chunk(handle)
        if candidate is None:
            return None
        if candidate in pool or pool.is_loading(candidate):
            if not self._prefetch:
                return None
            # Demand chunk already present/in flight; consider prefetching one
            # chunk ahead so processing overlaps with I/O.
            candidate = self._chunk_after_cursor(handle)
            if candidate is None or candidate in pool or pool.is_loading(candidate):
                return None
        return candidate

    def choose_load(self, now: float) -> Optional[Tuple[int, int]]:
        blocked: List[Tuple[float, int, int]] = []
        prefetch: List[Tuple[float, int, int]] = []
        for handle in self.abm.active_handles():
            if handle.finished:
                continue
            if handle.is_processing and not self._prefetch:
                # Synchronous scans only issue I/O once they actually block.
                continue
            wanted = self._wanted_chunk(handle)
            if wanted is None:
                continue
            queued_at = max(
                handle.blocked_since or 0.0,
                handle.last_delivery_time,
                self._last_service.get(handle.query_id, 0.0),
            )
            if handle.is_blocked:
                blocked.append((queued_at, handle.query_id, wanted))
            else:
                prefetch.append((queued_at, handle.query_id, wanted))
        # First-come-first-served among blocked queries, then prefetches.
        for bucket in (blocked, prefetch):
            if bucket:
                bucket.sort()
                _, query_id, chunk = bucket[0]
                self._last_service[query_id] = now
                return query_id, chunk
        return None

    # -------------------------------------------------------------- eviction
    def choose_evictions(
        self, trigger_query: int, incoming_chunk: int, now: float
    ) -> Optional[List[int]]:
        return self._lru_victims(count=1)


class NormalPolicy(SequentialCursorPolicy):
    """Traditional scan processing: sequential per-query order, LRU buffer."""

    name = "normal"
