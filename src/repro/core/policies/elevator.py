"""The *elevator* policy: one global, strictly sequential scan cursor.

The whole system reads chunks in table order with a single cursor that wraps
around; a chunk is read only if at least one active query still needs it.
This minimises the number of I/O requests and keeps the access pattern
perfectly sequential, but queries can only consume data in global cursor
order, so fast queries wait for slow ones and short range queries may wait a
long time for the cursor to reach their range — exactly the latency problems
Table 2 and Figure 5 of the paper show.

Eviction only considers chunks that no active query needs any more; if the
buffer fills up with chunks some slow query has not consumed yet, the cursor
stalls (the "query speed degenerates to the speed of the slowest query"
behaviour described in Section 3).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.cscan import CScanHandle
from repro.core.policies.base import SchedulingPolicy


class ElevatorPolicy(SchedulingPolicy):
    """Single global sequential cursor shared by every active scan."""

    name = "elevator"

    def __init__(self) -> None:
        super().__init__()
        self._cursor = 0

    # ------------------------------------------------------------- delivery
    def select_chunk_to_consume(self, handle: CScanHandle, now: float) -> Optional[int]:
        pool = self.abm.pool
        candidates = [chunk for chunk in handle.needed if chunk in pool]
        if not candidates:
            return None
        # Deliver in the order the global cursor loaded the chunks.
        return min(candidates, key=lambda chunk: (pool.slot(chunk).loaded_at, chunk))

    # ----------------------------------------------------------------- loads
    def choose_load(self, now: float) -> Optional[Tuple[int, int]]:
        abm = self.abm
        pool = abm.pool
        num_chunks = abm.num_chunks
        active = [handle for handle in abm.active_handles() if not handle.finished]
        if not active:
            return None
        for offset in range(num_chunks):
            chunk = (self._cursor + offset) % num_chunks
            if chunk in pool or pool.is_loading(chunk):
                continue
            interested = abm.interested_handles(chunk)
            if not interested:
                continue
            query = self._pick_beneficiary(interested)
            self._cursor = (chunk + 1) % num_chunks
            return query.query_id, chunk
        return None

    @staticmethod
    def _pick_beneficiary(interested: List[CScanHandle]) -> CScanHandle:
        """Attribute the load to a blocked interested query if any, else the
        one that has been waiting for data the longest."""
        blocked = [handle for handle in interested if handle.is_blocked]
        candidates = blocked or interested
        return min(candidates, key=lambda handle: handle.last_delivery_time)

    # -------------------------------------------------------------- eviction
    def choose_evictions(
        self, trigger_query: int, incoming_chunk: int, now: float
    ) -> Optional[List[int]]:
        pool = self.abm.pool
        candidates = [
            pool.slot(chunk)
            for chunk in pool.unpinned_chunks()
            if self.abm.interested_count(chunk) == 0
        ]
        if not candidates:
            # Every buffered chunk is still needed by some query; the cursor
            # stalls until the slowest interested query catches up.
            return None
        candidates.sort(key=lambda slot: slot.last_used)
        return [candidates[0].chunk]
