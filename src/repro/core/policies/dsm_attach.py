"""The *attach* policy for DSM (column) storage.

Section 6.2: "DSM attach joins a query with most overlap, where a crude
measure of overlap is the number of columns two queries have in common.  A
more fine-grained measure would be to get average page-per-chunk statistics
for the columns of a table, and use these as weights when counting
overlapping columns."  We implement the fine-grained variant: the overlap
between a new query and a running query is the number of common *chunks*
multiplied by the page-weighted number of common *columns*; the new query
attaches to the running query with the largest overlap by rotating its own
consumption order to start at that query's cursor position.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.cscan import CScanHandle
from repro.core.policies.dsm_normal import DSMSequentialCursorPolicy


class DSMAttachPolicy(DSMSequentialCursorPolicy):
    """Circular scans over column storage."""

    name = "attach"

    def _initial_order(self, handle: CScanHandle, now: float) -> List[int]:
        chunks = sorted(handle.request.chunks)
        target = self._best_overlap_target(handle)
        if target is None:
            return chunks
        position = self._current_position_of(target)
        if position is None:
            return chunks
        split = next((i for i, chunk in enumerate(chunks) if chunk >= position), None)
        if split is None or split == 0:
            return chunks
        return chunks[split:] + chunks[:split]

    def _overlap_score(self, handle: CScanHandle, other: CScanHandle) -> float:
        """Chunk overlap weighted by the physical size of shared columns."""
        chunk_overlap = len(handle.needed & other.needed)
        if chunk_overlap == 0:
            return 0.0
        shared_columns = set(handle.columns) & set(other.columns)
        if not shared_columns:
            return 0.0
        layout = self.abm.layout
        weight = sum(layout.average_pages_per_chunk(column) for column in shared_columns)
        return chunk_overlap * weight

    def _best_overlap_target(self, handle: CScanHandle) -> Optional[CScanHandle]:
        best: Optional[CScanHandle] = None
        best_score = 0.0
        for other in self.abm.active_handles():
            if other.query_id == handle.query_id or other.finished:
                continue
            score = self._overlap_score(handle, other)
            if score > best_score:
                best_score = score
                best = other
        return best

    def _current_position_of(self, handle: CScanHandle) -> Optional[int]:
        if handle.current_chunk is not None:
            return handle.current_chunk
        order = self._order.get(handle.query_id)
        if not order:
            return None
        position = self._position.get(handle.query_id, 0)
        while position < len(order) and order[position] in handle.consumed:
            position += 1
        if position >= len(order):
            return None
        return order[position]
