"""The *elevator* policy for DSM (column) storage.

Section 6.2: "Just like in NSM, the DSM elevator policy still enforces a
global cursor that sequentially moves through the table.  Obviously, it only
loads the union of all columns needed for this position by the active
queries."
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bufman.slots import BlockKey
from repro.core.cscan import CScanHandle
from repro.core.policies.base import DSMSchedulingPolicy


class DSMElevatorPolicy(DSMSchedulingPolicy):
    """Single global sequential cursor over a column store."""

    name = "elevator"

    def __init__(self) -> None:
        super().__init__()
        self._cursor = 0

    # ------------------------------------------------------------- delivery
    def select_chunk_to_consume(self, handle: CScanHandle, now: float) -> Optional[int]:
        abm = self.abm
        pool = abm.pool
        candidates = [chunk for chunk in handle.needed if abm.chunk_ready(handle, chunk)]
        if not candidates:
            return None

        def readiness_time(chunk: int) -> float:
            return max(pool.block((chunk, column)).loaded_at for column in handle.columns)

        return min(candidates, key=lambda chunk: (readiness_time(chunk), chunk))

    # ----------------------------------------------------------------- loads
    def choose_load(self, now: float) -> Optional[Tuple[int, int, Tuple[str, ...]]]:
        abm = self.abm
        num_chunks = abm.num_chunks
        active = [handle for handle in abm.active_handles() if not handle.finished]
        if not active:
            return None
        for offset in range(num_chunks):
            chunk = (self._cursor + offset) % num_chunks
            interested = abm.interested_handles(chunk)
            if not interested:
                continue
            columns = self._union_columns(interested)
            if not abm.missing_columns(chunk, columns):
                continue
            query = self._pick_beneficiary(interested)
            self._cursor = (chunk + 1) % num_chunks
            return query.query_id, chunk, columns
        return None

    @staticmethod
    def _union_columns(interested: List[CScanHandle]) -> Tuple[str, ...]:
        columns: List[str] = []
        seen = set()
        for handle in interested:
            for column in handle.columns:
                if column not in seen:
                    seen.add(column)
                    columns.append(column)
        return tuple(columns)

    @staticmethod
    def _pick_beneficiary(interested: List[CScanHandle]) -> CScanHandle:
        blocked = [handle for handle in interested if handle.is_blocked]
        candidates = blocked or interested
        return min(candidates, key=lambda handle: handle.last_delivery_time)

    # -------------------------------------------------------------- eviction
    def choose_evictions(
        self, trigger_query: int, incoming_chunk: int, pages_short: int, now: float
    ) -> Optional[List[BlockKey]]:
        abm = self.abm
        candidates = [
            block
            for block in self._evictable_blocks(protect_chunks=(incoming_chunk,))
            if abm.interested_count(block.chunk) == 0
        ]
        candidates.sort(key=lambda block: block.last_used)
        victims: List[BlockKey] = []
        freed = 0
        for block in candidates:
            victims.append(block.key)
            freed += block.pages
            if freed >= pages_short:
                return victims
        # Stalling the cursor (returning None) is the authentic elevator
        # behaviour, and it is safe as long as the system can still make
        # progress without this load: some query is crunching a chunk, has a
        # ready chunk to pick up next, or another load is already in flight
        # (its completion re-enters the scheduler).
        if abm.pending_loads > 0:
            return None
        for handle in abm.active_handles():
            if handle.is_processing or abm.num_available_chunks(handle) > 0:
                return None
        # Last resort: nobody can progress.  Unlike NSM — where a buffered
        # chunk someone needs is always consumable — a DSM pool can fill up
        # with *partial* chunks that are needed by everyone yet ready for no
        # one; refusing to evict them would deadlock the run (reachable once
        # a multi-volume disk commits several loads per round).  Evict LRU
        # blocks even if still needed; the cursor re-reads them on its next
        # revolution.
        remaining = self._lru_block_victims(
            pages_short - freed,
            protect_chunks=(incoming_chunk,),
            exclude_keys=victims,
        )
        if remaining is None:
            return None
        return victims + remaining
