"""The *attach* policy (circular / shared scans).

When a new query enters the system it inspects the currently running scans
and, if one of them overlaps with its own chunk set, it attaches to that
scan's cursor position: it starts consuming at that position, continues to
the end of its range and then wraps around to pick up the chunks it skipped
(Section 3).  The attach target is the running query with the *largest
remaining overlap*.  Everything else (FCFS servicing of outstanding
requests, LRU eviction, one-chunk prefetch) behaves like *normal*, which is
why the policy shares its machinery with :class:`NormalPolicy`.

The known weaknesses reproduced here (and demonstrated by the Figure 4 and
Table 2 benchmarks) are: queries of different speeds drift apart and
"detach"; a query whose partner finishes keeps scanning alone even if another
overlapping scan is active; and multi-range (zone-map) scans attach poorly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.cscan import CScanHandle
from repro.core.policies.normal import SequentialCursorPolicy


class AttachPolicy(SequentialCursorPolicy):
    """Circular-scan policy: new queries join the best-overlapping active scan."""

    name = "attach"

    def _initial_order(self, handle: CScanHandle, now: float) -> List[int]:
        chunks = sorted(handle.request.chunks)
        target = self._best_overlap_target(handle)
        if target is None:
            return chunks
        position = self._current_position_of(target)
        if position is None:
            return chunks
        # Start at the first own chunk >= the target's position, wrap around.
        split = next((i for i, chunk in enumerate(chunks) if chunk >= position), None)
        if split is None or split == 0:
            return chunks
        return chunks[split:] + chunks[:split]

    def _best_overlap_target(self, handle: CScanHandle) -> Optional[CScanHandle]:
        """The running scan with the largest remaining overlap (or ``None``)."""
        best: Optional[CScanHandle] = None
        best_overlap = 0
        for other in self.abm.active_handles():
            if other.query_id == handle.query_id or other.finished:
                continue
            overlap = len(handle.needed & other.needed)
            if overlap > best_overlap:
                best_overlap = overlap
                best = other
        return best

    def _current_position_of(self, handle: CScanHandle) -> Optional[int]:
        """The chunk the target query is consuming or about to consume."""
        if handle.current_chunk is not None:
            return handle.current_chunk
        order = self._order.get(handle.query_id)
        if not order:
            return None
        position = self._position.get(handle.query_id, 0)
        while position < len(order) and order[position] in handle.consumed:
            position += 1
        if position >= len(order):
            return None
        return order[position]
