"""Abstract interfaces of the scheduling policies.

A policy is a *strategy object* owned by an Active Buffer Manager.  The ABM
keeps all the state (registered scans, buffered chunks/blocks); the policy
only makes decisions:

* which buffered chunk a given query should consume next
  (:meth:`select_chunk_to_consume`, the paper's ``chooseAvailableChunk``),
* which chunk should be loaded next and on behalf of which query
  (:meth:`choose_load`, the paper's ``chooseQueryToProcess`` +
  ``chooseChunkToLoad``),
* which chunks/blocks to evict to make room
  (:meth:`choose_evictions`, the paper's ``findFreeSlot``).

Hook methods (``on_register``, ``on_chunk_loaded`` ...) let policies maintain
internal cursors (attach, elevator) without the ABM knowing about them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.bufman.slots import BlockKey
from repro.core.cscan import CScanHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.abm import ActiveBufferManager, DSMActiveBufferManager


class _PolicyBase(ABC):
    """Machinery shared by the NSM and DSM policy hierarchies."""

    #: Human-readable policy name ("normal", "attach", "elevator", "relevance").
    name: str = "abstract"

    def __init__(self) -> None:
        self._abm = None

    def bind(self, abm) -> None:
        """Attach the policy to its buffer manager (called once by the ABM)."""
        self._abm = abm

    # Hooks with default no-op implementations -------------------------------
    def on_register(self, handle: CScanHandle, now: float) -> None:
        """A new CScan registered with the ABM."""

    def on_unregister(self, handle: CScanHandle, now: float) -> None:
        """A CScan finished (or was cancelled) and left the ABM."""

    def on_chunk_loaded(self, chunk: int, now: float) -> None:
        """A chunk (or all blocks of a DSM load) finished loading."""

    def on_chunk_consumed(self, handle: CScanHandle, chunk: int, now: float) -> None:
        """A query finished consuming a chunk."""

    def on_query_blocked(self, handle: CScanHandle, now: float) -> None:
        """A query asked for a chunk and none was available."""


class SchedulingPolicy(_PolicyBase):
    """Interface of NSM (row-store) scheduling policies."""

    @property
    def abm(self) -> "ActiveBufferManager":
        """The buffer manager this policy is bound to."""
        if self._abm is None:
            raise RuntimeError(f"policy {self.name} is not bound to an ABM")
        return self._abm

    @abstractmethod
    def select_chunk_to_consume(self, handle: CScanHandle, now: float) -> Optional[int]:
        """Pick a buffered chunk for ``handle`` to consume next (or ``None``)."""

    @abstractmethod
    def choose_load(self, now: float) -> Optional[Tuple[int, int]]:
        """Pick the next ``(query_id, chunk)`` to load (or ``None`` to idle)."""

    @abstractmethod
    def choose_evictions(
        self, trigger_query: int, incoming_chunk: int, now: float
    ) -> Optional[List[int]]:
        """Pick chunk(s) to evict so ``incoming_chunk`` can be loaded.

        Returns ``None`` when no room can be made (the load is postponed).
        """

    # Shared helpers ----------------------------------------------------------
    def _buffered_needed(self, handle: CScanHandle) -> List[int]:
        """Buffered chunks the query still needs (excluding its current one)."""
        pool = self.abm.pool
        return [
            chunk
            for chunk in handle.needed
            if chunk in pool and chunk != handle.current_chunk
        ]

    def _lru_victims(self, count: int = 1, exclude: Sequence[int] = ()) -> Optional[List[int]]:
        """Pick up to ``count`` least-recently-used unpinned chunks."""
        pool = self.abm.pool
        excluded = set(exclude)
        candidates = [
            pool.slot(chunk)
            for chunk in pool.unpinned_chunks()
            if chunk not in excluded
        ]
        if len(candidates) < count:
            return None
        candidates.sort(key=lambda slot: slot.last_used)
        return [slot.chunk for slot in candidates[:count]]


class DSMSchedulingPolicy(_PolicyBase):
    """Interface of DSM (column-store) scheduling policies."""

    @property
    def abm(self) -> "DSMActiveBufferManager":
        """The buffer manager this policy is bound to."""
        if self._abm is None:
            raise RuntimeError(f"policy {self.name} is not bound to an ABM")
        return self._abm

    @abstractmethod
    def select_chunk_to_consume(self, handle: CScanHandle, now: float) -> Optional[int]:
        """Pick a *ready* chunk for ``handle`` to consume next (or ``None``)."""

    @abstractmethod
    def choose_load(self, now: float) -> Optional[Tuple[int, int, Tuple[str, ...]]]:
        """Pick the next ``(query_id, chunk, columns)`` to load (or ``None``)."""

    @abstractmethod
    def choose_evictions(
        self, trigger_query: int, incoming_chunk: int, pages_short: int, now: float
    ) -> Optional[List[BlockKey]]:
        """Pick blocks to evict to free at least ``pages_short`` pages.

        Returns ``None`` when not enough room can be made.
        """

    # Shared helpers ----------------------------------------------------------
    def _ready_needed(self, handle: CScanHandle) -> List[int]:
        """Ready chunks the query still needs (excluding its current one)."""
        abm = self.abm
        return [
            chunk
            for chunk in handle.needed
            if chunk != handle.current_chunk and abm.chunk_ready(handle, chunk)
        ]

    def _evictable_blocks(self, protect_chunks: Sequence[int] = ()) -> List:
        """All unpinned, unreserved blocks excluding the given chunks."""
        pool = self.abm.pool
        protected = set(protect_chunks)
        return [
            block
            for block in pool
            if not block.pinned
            and block.chunk not in protected
            and not pool.is_reserved(block.chunk)
        ]

    def _lru_block_victims(
        self,
        pages_short: int,
        protect_chunks: Sequence[int] = (),
        exclude_keys: Sequence[BlockKey] = (),
    ) -> Optional[List[BlockKey]]:
        """Free at least ``pages_short`` pages by evicting LRU blocks.

        ``exclude_keys`` skips blocks a caller has already claimed in an
        earlier eviction pass.
        """
        candidates = self._evictable_blocks(protect_chunks)
        if exclude_keys:
            excluded = set(exclude_keys)
            candidates = [
                block for block in candidates if block.key not in excluded
            ]
        candidates.sort(key=lambda block: block.last_used)
        victims: List[BlockKey] = []
        freed = 0
        for block in candidates:
            victims.append(block.key)
            freed += block.pages
            if freed >= pages_short:
                return victims
        return None
