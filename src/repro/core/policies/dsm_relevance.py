"""The *relevance* policy for DSM (column) storage (Figure 11).

The structure follows the NSM relevance policy but every relevance function
becomes column- and size-aware, and three DSM-specific mechanisms are added
(Section 6.2):

* **avoiding data waste** — when a query is about to block, the chunk it will
  most likely consume next is *reserved* so its already-loaded column blocks
  are not evicted in the meantime;
* **finding space for a chunk** — eviction is iterative: first column blocks
  that no interested query needs are dropped, then whole chunks are
  victimised in increasing ``keepRelevance = E / Pe`` order until enough
  pages are free;
* **column loading order** — the ABM orders the column blocks of a load by
  increasing size (implemented in
  :meth:`repro.core.abm.DSMActiveBufferManager.next_load`).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bufman.slots import BlockKey
from repro.core.cscan import CScanHandle
from repro.core.policies.base import DSMSchedulingPolicy
from repro.core.policies.relevance import RelevanceParameters


class DSMRelevancePolicy(DSMSchedulingPolicy):
    """Relevance-driven chunk/column scheduling for DSM storage."""

    name = "relevance"

    def __init__(self, parameters: RelevanceParameters | None = None) -> None:
        super().__init__()
        self.parameters = parameters or RelevanceParameters()
        #: Chunk currently reserved on behalf of each blocked query
        #: (the "avoid data waste" rule).
        self._reservations: Dict[int, int] = {}
        self.scheduling_calls: int = 0

    # -------------------------------------------------------- starvation
    def query_starved(self, handle: CScanHandle) -> bool:
        """``queryStarved``: fewer ready chunks than the starvation threshold."""
        return (
            self.abm.num_available_chunks(handle) < self.parameters.starvation_threshold
        )

    def query_almost_starved(self, handle: CScanHandle) -> bool:
        """Query is on the border of starvation (protect its chunks)."""
        return (
            self.abm.num_available_chunks(handle)
            <= self.parameters.almost_starved_threshold
        )

    def query_relevance(self, handle: CScanHandle, now: float) -> float:
        """Same shape as the NSM ``queryRelevance`` (Figure 3), including
        the per-class starvation weights and priority boosts (neutral for
        classes absent from the parameter tables)."""
        if not self.query_starved(handle):
            return -math.inf
        parameters = self.parameters
        score = 0.0
        if parameters.prioritise_short_queries:
            score -= handle.chunks_needed
        if parameters.age_by_waiting_time:
            ageing = handle.waiting_time(now) / max(1, self.abm.num_active())
            weight = parameters.starvation_weight_of(handle.query_class)
            if weight != 1.0:
                ageing *= weight
            score += ageing
        boost = parameters.priority_of(handle.query_class)
        if boost != 0.0:
            score += boost
        return score

    # ------------------------------------------------- relevance functions
    def use_relevance(self, chunk: int, handle: CScanHandle) -> float:
        """``useRelevance`` (Figure 11): prefer chunks that occupy many cached
        pages and interest few overlapping queries, so they can be freed."""
        overlapping = self.abm.overlapping_handles(chunk, handle.columns)
        interested = max(1, len(overlapping))
        cached_pages = self.abm.cached_pages_for(handle, chunk)
        return cached_pages / interested

    def load_relevance(self, chunk: int, handle: CScanHandle) -> Tuple[float, Tuple[str, ...]]:
        """``loadRelevance`` (Figure 11).

        Returns the score *and* the columns that would be loaded (the union of
        the columns of the overlapping starved queries), because the caller
        needs both.
        """
        abm = self.abm
        overlapping = [
            other
            for other in abm.overlapping_handles(chunk, handle.columns)
            if self.query_starved(other)
        ]
        if handle not in overlapping and handle.is_interested(chunk):
            overlapping.append(handle)
        columns: List[str] = []
        seen: Set[str] = set()
        for other in overlapping:
            for column in other.columns:
                if column not in seen:
                    seen.add(column)
                    columns.append(column)
        pages_to_load = abm.chunk_load_pages(chunk, columns)
        if pages_to_load <= 0:
            return -math.inf, tuple(columns)
        return len(overlapping) / pages_to_load, tuple(columns)

    def keep_relevance(self, chunk: int) -> float:
        """``keepRelevance`` (Figure 11): chunks cheap to keep (few cached
        pages) and useful to many almost-starved queries are kept longest."""
        abm = self.abm
        almost_starved = [
            handle
            for handle in abm.interested_handles(chunk)
            if self.query_almost_starved(handle)
        ]
        if not almost_starved:
            return 0.0
        columns: Set[str] = set()
        for handle in almost_starved:
            columns.update(handle.columns)
        cached_pages = abm.pool.chunk_cached_pages(chunk, columns)
        if cached_pages <= 0:
            return float(len(almost_starved))
        return len(almost_starved) / cached_pages

    # ------------------------------------------------------------- delivery
    def select_chunk_to_consume(self, handle: CScanHandle, now: float) -> Optional[int]:
        self.scheduling_calls += 1
        abm = self.abm
        if abm.incremental:
            # The tracker maintains the ready bucket (all needed columns
            # buffered); the naive path re-probes every needed chunk.
            candidates: Iterable[int] = abm.available_chunks(handle)
        else:
            candidates = (
                chunk for chunk in handle.needed if abm.chunk_ready(handle, chunk)
            )
        best_chunk: Optional[int] = None
        best_score = -math.inf
        for chunk in candidates:
            score = self.use_relevance(chunk, handle)
            if score > best_score or (
                score == best_score and best_chunk is not None and chunk < best_chunk
            ):
                best_score = score
                best_chunk = chunk
        if best_chunk is not None:
            self._release_reservation(handle.query_id)
        return best_chunk

    def on_query_blocked(self, handle: CScanHandle, now: float) -> None:
        """Avoid data waste: reserve the partially-loaded chunk the blocked
        query is most likely to consume next."""
        abm = self.abm
        best_chunk: Optional[int] = None
        best_cached = 0
        # Iterate ``needed`` itself in both modes: the strictly-greater
        # comparison makes the winner depend on set iteration order, which
        # must stay identical between naive and incremental runs.
        for chunk in handle.needed:
            cached = abm.cached_pages_for(handle, chunk)
            if cached > best_cached:
                best_cached = cached
                best_chunk = chunk
        if best_chunk is not None:
            self._set_reservation(handle.query_id, best_chunk)

    def on_unregister(self, handle: CScanHandle, now: float) -> None:
        self._release_reservation(handle.query_id)

    def _set_reservation(self, query_id: int, chunk: int) -> None:
        current = self._reservations.get(query_id)
        if current == chunk:
            return
        self._release_reservation(query_id)
        self.abm.pool.reserve_chunk(chunk)
        self._reservations[query_id] = chunk

    def _release_reservation(self, query_id: int) -> None:
        chunk = self._reservations.pop(query_id, None)
        if chunk is not None:
            self.abm.pool.release_chunk(chunk)

    # ----------------------------------------------------------------- loads
    def choose_load(self, now: float) -> Optional[Tuple[int, int, Tuple[str, ...]]]:
        self.scheduling_calls += 1
        abm = self.abm
        if abm.incremental:
            starved = [handle for handle in abm.starved_handles() if not handle.finished]
        else:
            starved = [
                handle
                for handle in abm.active_handles()
                if not handle.finished and self.query_starved(handle)
            ]
        if not starved:
            return None
        starved.sort(key=lambda handle: self.query_relevance(handle, now), reverse=True)
        for handle in starved:
            chosen = self._choose_chunk_to_load(handle)
            if chosen is not None:
                chunk, columns = chosen
                return handle.query_id, chunk, columns
        return None

    def _choose_chunk_to_load(
        self, handle: CScanHandle
    ) -> Optional[Tuple[int, Tuple[str, ...]]]:
        abm = self.abm
        best: Optional[Tuple[int, Tuple[str, ...]]] = None
        best_score = -math.inf
        for chunk in handle.needed:
            if abm.chunk_ready(handle, chunk):
                continue
            if not abm.missing_columns(chunk, handle.columns):
                # Everything this query needs for the chunk is in flight.
                continue
            score, columns = self.load_relevance(chunk, handle)
            if score == -math.inf:
                continue
            if score > best_score or (
                score == best_score and best is not None and chunk < best[0]
            ):
                best_score = score
                best = (chunk, columns)
        return best

    # -------------------------------------------------------------- eviction
    def choose_evictions(
        self, trigger_query: int, incoming_chunk: int, pages_short: int, now: float
    ) -> Optional[List[BlockKey]]:
        self.scheduling_calls += 1
        abm = self.abm
        pool = abm.pool
        trigger = abm.handle(trigger_query)
        victims: List[BlockKey] = []
        freed = 0

        def useful_columns(chunk: int) -> Set[str]:
            columns: Set[str] = set()
            for handle in abm.interested_handles(chunk):
                columns.update(handle.columns)
            return columns

        # Step 1: evict column blocks no interested query needs any more.
        useless = [
            block
            for block in self._evictable_blocks(protect_chunks=(incoming_chunk,))
            if block.column not in useful_columns(block.chunk)
        ]
        useless.sort(key=lambda block: (-block.pages, block.last_used))
        for block in useless:
            victims.append(block.key)
            freed += block.pages
            if freed >= pages_short:
                return victims

        # Step 2: iteratively victimise whole chunks by increasing keepRelevance.
        chunk_candidates = sorted(
            {
                block.chunk
                for block in self._evictable_blocks(protect_chunks=(incoming_chunk,))
                if not trigger.is_interested(block.chunk)
            },
            key=lambda chunk: (self.keep_relevance(chunk), chunk),
        )
        claimed = set(victims)
        for chunk in chunk_candidates:
            for block in pool.blocks_of_chunk(chunk):
                if block.pinned or block.key in claimed or pool.is_reserved(chunk):
                    continue
                victims.append(block.key)
                claimed.add(block.key)
                freed += block.pages
            if freed >= pages_short:
                return victims

        # Step 3: as a last resort, also consider chunks the trigger query is
        # interested in (other than the incoming one); without this the load
        # would be postponed even though lower-value data is buffered.
        remaining = sorted(
            {
                block.chunk
                for block in self._evictable_blocks(protect_chunks=(incoming_chunk,))
                if block.key not in claimed
            },
            key=lambda chunk: (self.keep_relevance(chunk), chunk),
        )
        for chunk in remaining:
            for block in pool.blocks_of_chunk(chunk):
                if block.pinned or block.key in claimed or pool.is_reserved(chunk):
                    continue
                victims.append(block.key)
                claimed.add(block.key)
                freed += block.pages
            if freed >= pages_short:
                return victims
        return None
