"""Scheduling policies for the Active Buffer Manager.

Four policies are provided for each storage model, mirroring Section 3 and
Section 4 of the paper:

========== =====================================================================
``normal``    per-query sequential scans, LRU buffering, no explicit sharing
``attach``    circular scans: new queries join the cursor of the best-overlapping
              active scan (Microsoft SQLServer / RedBrick / Teradata style)
``elevator``  one global, strictly sequential cursor shared by all queries
``relevance`` the paper's contribution: dynamic chunk-level scheduling driven by
              relevance functions (load / keep / use / query relevance)
========== =====================================================================

Use :func:`make_policy` (NSM) or :func:`make_dsm_policy` (DSM) to instantiate
a policy by name.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.common.errors import ConfigurationError
from repro.core.policies.base import DSMSchedulingPolicy, SchedulingPolicy
from repro.core.policies.normal import NormalPolicy
from repro.core.policies.attach import AttachPolicy
from repro.core.policies.elevator import ElevatorPolicy
from repro.core.policies.relevance import RelevancePolicy, RelevanceParameters
from repro.core.policies.dsm_normal import DSMNormalPolicy
from repro.core.policies.dsm_attach import DSMAttachPolicy
from repro.core.policies.dsm_elevator import DSMElevatorPolicy
from repro.core.policies.dsm_relevance import DSMRelevancePolicy

#: Names of the scheduling policies, in the order the paper's tables use.
POLICY_NAMES = ("normal", "attach", "elevator", "relevance")

_NSM_POLICIES: Dict[str, Type[SchedulingPolicy]] = {
    "normal": NormalPolicy,
    "attach": AttachPolicy,
    "elevator": ElevatorPolicy,
    "relevance": RelevancePolicy,
}

_DSM_POLICIES: Dict[str, Type[DSMSchedulingPolicy]] = {
    "normal": DSMNormalPolicy,
    "attach": DSMAttachPolicy,
    "elevator": DSMElevatorPolicy,
    "relevance": DSMRelevancePolicy,
}


def make_policy(name: str, **kwargs) -> SchedulingPolicy:
    """Instantiate an NSM scheduling policy by name."""
    try:
        cls = _NSM_POLICIES[name.lower()]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown NSM policy {name!r}; choose from {sorted(_NSM_POLICIES)}"
        ) from exc
    return cls(**kwargs)


def make_dsm_policy(name: str, **kwargs) -> DSMSchedulingPolicy:
    """Instantiate a DSM scheduling policy by name."""
    try:
        cls = _DSM_POLICIES[name.lower()]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown DSM policy {name!r}; choose from {sorted(_DSM_POLICIES)}"
        ) from exc
    return cls(**kwargs)


__all__ = [
    "SchedulingPolicy",
    "DSMSchedulingPolicy",
    "NormalPolicy",
    "AttachPolicy",
    "ElevatorPolicy",
    "RelevancePolicy",
    "RelevanceParameters",
    "DSMNormalPolicy",
    "DSMAttachPolicy",
    "DSMElevatorPolicy",
    "DSMRelevancePolicy",
    "make_policy",
    "make_dsm_policy",
    "POLICY_NAMES",
]
