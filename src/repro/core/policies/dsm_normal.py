"""The *normal* policy for DSM (column) storage.

Section 6.2: "In normal, the order of I/Os is strictly determined by the
query and LRU buffering is performed on a (chunk, column) level."  Every
query reads its chunks in table order; for each chunk only the query's own
columns are fetched; eviction is LRU over column blocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bufman.slots import BlockKey
from repro.core.cscan import CScanHandle
from repro.core.policies.base import DSMSchedulingPolicy


class DSMSequentialCursorPolicy(DSMSchedulingPolicy):
    """Shared machinery for DSM policies with a fixed per-query chunk order."""

    name = "dsm-sequential"

    def __init__(self, prefetch: bool = True) -> None:
        super().__init__()
        #: Whether queries prefetch one chunk ahead of their cursor.
        self._prefetch = prefetch
        self._order: Dict[int, List[int]] = {}
        self._position: Dict[int, int] = {}
        #: Last time a load was issued on behalf of each query (round-robin).
        self._last_service: Dict[int, float] = {}

    # ---------------------------------------------------------------- hooks
    def on_register(self, handle: CScanHandle, now: float) -> None:
        self._order[handle.query_id] = self._initial_order(handle, now)
        self._position[handle.query_id] = 0

    def _initial_order(self, handle: CScanHandle, now: float) -> List[int]:
        """Consumption order for a new query; plain table order by default."""
        return sorted(handle.request.chunks)

    def on_unregister(self, handle: CScanHandle, now: float) -> None:
        self._order.pop(handle.query_id, None)
        self._position.pop(handle.query_id, None)
        self._last_service.pop(handle.query_id, None)

    # ------------------------------------------------------------- delivery
    def _cursor_chunk(self, handle: CScanHandle) -> Optional[int]:
        order = self._order[handle.query_id]
        position = self._position[handle.query_id]
        while position < len(order) and order[position] in handle.consumed:
            position += 1
        self._position[handle.query_id] = position
        if position >= len(order):
            return None
        return order[position]

    def _chunk_after_cursor(self, handle: CScanHandle) -> Optional[int]:
        order = self._order[handle.query_id]
        position = self._position[handle.query_id] + 1
        while position < len(order) and order[position] in handle.consumed:
            position += 1
        if position >= len(order):
            return None
        return order[position]

    def select_chunk_to_consume(self, handle: CScanHandle, now: float) -> Optional[int]:
        chunk = self._cursor_chunk(handle)
        if chunk is None:
            return None
        if not self.abm.chunk_ready(handle, chunk):
            return None
        self._position[handle.query_id] += 1
        return chunk

    # ----------------------------------------------------------------- loads
    def _wanted_chunk(self, handle: CScanHandle) -> Optional[int]:
        """The chunk this query wants loaded next (demand, else one-ahead)."""
        abm = self.abm
        candidate = self._cursor_chunk(handle)
        if candidate is None:
            return None
        if not abm.missing_columns(candidate, handle.columns):
            if not self._prefetch:
                return None
            candidate = self._chunk_after_cursor(handle)
            if candidate is None or not abm.missing_columns(candidate, handle.columns):
                return None
        return candidate

    def _load_columns(self, handle: CScanHandle, chunk: int) -> Tuple[str, ...]:
        """Columns to fetch when loading ``chunk`` for ``handle``.

        The plain sequential policies fetch only the query's own columns.
        """
        return handle.columns

    def choose_load(self, now: float) -> Optional[Tuple[int, int, Tuple[str, ...]]]:
        blocked: List[Tuple[float, int]] = []
        prefetch: List[Tuple[float, int]] = []
        handles = {handle.query_id: handle for handle in self.abm.active_handles()}
        for handle in handles.values():
            if handle.finished:
                continue
            if handle.is_processing and not self._prefetch:
                # Synchronous scans only issue I/O once they actually block.
                continue
            wanted = self._wanted_chunk(handle)
            if wanted is None:
                continue
            queued_at = max(
                handle.blocked_since or 0.0,
                handle.last_delivery_time,
                self._last_service.get(handle.query_id, 0.0),
            )
            if handle.is_blocked:
                blocked.append((queued_at, handle.query_id))
            else:
                prefetch.append((queued_at, handle.query_id))
        for bucket in (blocked, prefetch):
            if bucket:
                bucket.sort()
                _, query_id = bucket[0]
                handle = handles[query_id]
                wanted = self._wanted_chunk(handle)
                if wanted is None:
                    continue
                self._last_service[query_id] = now
                return query_id, wanted, self._load_columns(handle, wanted)
        return None

    # -------------------------------------------------------------- eviction
    def choose_evictions(
        self, trigger_query: int, incoming_chunk: int, pages_short: int, now: float
    ) -> Optional[List[BlockKey]]:
        return self._lru_block_victims(pages_short, protect_chunks=(incoming_chunk,))


class DSMNormalPolicy(DSMSequentialCursorPolicy):
    """Traditional DSM scan processing: per-query order, block-level LRU."""

    name = "normal"
