"""The *relevance* policy — the paper's central contribution (Figure 3).

Scheduling decisions are driven by four relevance functions:

``queryRelevance(q)``
    Non-starved queries (2+ available chunks) get ``-inf`` — they have work
    to do and need no help.  Starved queries are prioritised by how little
    data they still need (short queries first) with an ageing term
    ``waitingTime(q) / runningQueries()`` so long queries are not starved
    forever.

``useRelevance(c)``
    When a query picks which available chunk to consume, it prefers the chunk
    with the *fewest* interested queries, so that unpopular chunks are
    consumed (and become evictable) early.

``loadRelevance(c)``
    When loading on behalf of the chosen query, prefer chunks needed by many
    *starved* queries (weighted by ``Qmax``) and, as a tiebreak, by many
    queries overall — maximising sharing per I/O.

``keepRelevance(c)``
    When a slot must be freed, evict the chunk with the lowest keep score:
    chunks needed by queries on the border of starvation are protected, then
    chunks needed by many queries.

The :class:`RelevanceParameters` dataclass exposes the constants involved
(starvation threshold, ageing, short-query priority) so the ablation
benchmarks can switch individual ingredients off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Tuple, Union

try:  # pragma: no cover - exercised implicitly by the vector paths
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

from repro.core.cscan import CScanHandle
from repro.core.policies.base import SchedulingPolicy

#: Per-class weight tables accepted by :class:`RelevanceParameters` — either
#: a mapping or an already-normalised tuple of ``(class, value)`` pairs.
ClassWeights = Union[Mapping[str, float], Tuple[Tuple[str, float], ...]]


@dataclass(frozen=True)
class RelevanceParameters:
    """Tunable constants of the relevance policy.

    The defaults follow the paper; the ablation benchmarks override them,
    and the service layer's workload classes plug in per-class weights.
    """

    #: A query is starved when it has fewer than this many available chunks.
    starvation_threshold: int = 2
    #: A query is *almost* starved (its chunks should not be evicted) when it
    #: has at most this many available chunks.
    almost_starved_threshold: int = 2
    #: Weight separating the "starved queries" term from the "all queries"
    #: term in load/keep relevance.  Must exceed the number of concurrent
    #: queries for the lexicographic behaviour the paper intends.
    qmax: int = 1024
    #: Whether shorter queries get higher priority (paper: yes).
    prioritise_short_queries: bool = True
    #: Whether waiting time ages a starved query's priority (paper: yes).
    age_by_waiting_time: bool = True
    #: Additive ``queryRelevance`` boost per workload class (in units of
    #: chunks-needed, the score's natural scale): starved queries of a
    #: boosted class (e.g. ``{"interactive": 64.0}``) are scheduled ahead of
    #: same-aged queries of unboosted classes.  Classes absent from the
    #: table get 0.0, so the empty default changes nothing.
    class_priority: ClassWeights = ()
    #: Multiplier on the waiting-time ageing term per workload class (the
    #: per-class *starvation weight*): a class with weight > 1 escalates
    #: out of starvation faster, < 1 tolerates waiting longer.  Classes
    #: absent from the table get 1.0, so the empty default changes nothing.
    class_starvation_weight: ClassWeights = ()

    def __post_init__(self) -> None:
        if self.starvation_threshold < 1:
            raise ValueError("starvation_threshold must be >= 1")
        if self.almost_starved_threshold < self.starvation_threshold:
            raise ValueError(
                "almost_starved_threshold must be >= starvation_threshold"
            )
        if self.qmax < 2:
            raise ValueError("qmax must be >= 2")
        object.__setattr__(
            self, "class_priority", _normalise_weights(self.class_priority)
        )
        object.__setattr__(
            self,
            "class_starvation_weight",
            _normalise_weights(self.class_starvation_weight),
        )
        for _, weight in self.class_starvation_weight:
            if weight <= 0:
                raise ValueError("class starvation weights must be positive")

    def priority_of(self, query_class: str) -> float:
        """The class's additive ``queryRelevance`` boost (default 0.0)."""
        for name, value in self.class_priority:
            if name == query_class:
                return value
        return 0.0

    def starvation_weight_of(self, query_class: str) -> float:
        """The class's ageing-term multiplier (default 1.0)."""
        for name, value in self.class_starvation_weight:
            if name == query_class:
                return value
        return 1.0


def _normalise_weights(weights: ClassWeights) -> Tuple[Tuple[str, float], ...]:
    """Normalise a mapping (or pair tuple) into a sorted pair tuple, so the
    frozen dataclass stays hashable and order-insensitively comparable."""
    if isinstance(weights, Mapping):
        items = weights.items()
    else:
        items = tuple(weights)
    return tuple(sorted((str(name), float(value)) for name, value in items))


class RelevancePolicy(SchedulingPolicy):
    """Relevance-driven chunk scheduling for NSM storage."""

    name = "relevance"

    def __init__(self, parameters: RelevanceParameters | None = None) -> None:
        super().__init__()
        self.parameters = parameters or RelevanceParameters()
        #: Number of scheduling decisions made over the policy's lifetime
        #: (used by the Figure 8 benchmark); the simulator reports per-run
        #: deltas in ``RunResult.scheduling_calls``.
        self.scheduling_calls: int = 0

    # -------------------------------------------------------- starvation
    def _available_count(self, handle: CScanHandle) -> int:
        return self.abm.num_available_chunks(handle)

    def query_starved(self, handle: CScanHandle) -> bool:
        """``queryStarved`` from Figure 3 (with a configurable threshold)."""
        return self._available_count(handle) < self.parameters.starvation_threshold

    def query_almost_starved(self, handle: CScanHandle) -> bool:
        """Whether evicting one of the query's chunks could starve it."""
        return self._available_count(handle) <= self.parameters.almost_starved_threshold

    # ------------------------------------------------- relevance functions
    def query_relevance(self, handle: CScanHandle, now: float) -> float:
        """``queryRelevance``: priority of scheduling a load for this query.

        The per-class tables of :class:`RelevanceParameters` weigh in here:
        the ageing term is scaled by the class's starvation weight and the
        class's priority boost is added on top — both neutral (x1.0 / +0.0)
        for classes absent from the tables, so single-class runs score
        exactly as the paper's Figure 3.
        """
        if not self.query_starved(handle):
            return -math.inf
        parameters = self.parameters
        score = 0.0
        if parameters.prioritise_short_queries:
            score -= handle.chunks_needed
        if parameters.age_by_waiting_time:
            ageing = handle.waiting_time(now) / max(1, self.abm.num_active())
            weight = parameters.starvation_weight_of(handle.query_class)
            if weight != 1.0:
                ageing *= weight
            score += ageing
        boost = parameters.priority_of(handle.query_class)
        if boost != 0.0:
            score += boost
        return score

    def use_relevance(self, chunk: int) -> float:
        """``useRelevance``: which available chunk a query should consume."""
        return self.parameters.qmax - self.abm.interested_count(chunk)

    def load_relevance(self, chunk: int) -> float:
        """``loadRelevance``: which chunk to load for the chosen query.

        Both terms are maintained incrementally by the ABM's interest
        tracker (O(1) reads); the naive ABM recomputes them with full walks.
        """
        abm = self.abm
        return (
            abm.starved_interested_count(chunk) * self.parameters.qmax
            + abm.interested_count(chunk)
        )

    def keep_relevance(self, chunk: int) -> float:
        """``keepRelevance``: how valuable a buffered chunk is to keep."""
        abm = self.abm
        return (
            abm.almost_starved_interested_count(chunk) * self.parameters.qmax
            + abm.interested_count(chunk)
        )

    # --------------------------------------------------------- vector paths
    # Each decision function has a numpy twin used when the ABM runs the
    # vectorised interest tracker (``engine="numpy"``): the argmax/argmin
    # over candidate chunks becomes a fancy-indexed array reduction on the
    # tracker's dense counters.  Scores are integers and ties break to the
    # smallest chunk id in both forms, so the decisions are bit-identical —
    # the vector-engine golden-trace tests pin that.
    #: Sentinel meaning "vector tracker not yet resolved" (class-level; the
    #: resolution is cached per policy instance on first use — the tracker
    #: is installed before any query registers and never swapped afterwards).
    _vector_tracker_cache = False

    def _vector_tracker(self):
        cached = self._vector_tracker_cache
        if cached is not False:
            return cached
        tracker = getattr(self.abm, "tracker", None)
        if tracker is None or not getattr(tracker, "vectorized", False):
            tracker = None
        # Only the NSM tracker carries the buffered/loading masks the load
        # path needs; duck-check instead of importing the class.
        elif not hasattr(tracker, "buffered_mask"):
            tracker = None
        self._vector_tracker_cache = tracker
        return tracker

    #: Per-chunk score meaning "not a candidate" in the min-reduction.
    _SELECT_EXCLUDED = 2**62

    def _vector_select(self, tracker, handle: CScanHandle) -> Optional[int]:
        # The tracker's availability set is exactly needed ∩ buffered (built
        # that way at registration, kept in sync on load/evict/consume), so
        # score the whole chunk axis with non-candidates masked out — pure
        # C-side mask arithmetic, no per-call set-to-array conversion.
        counts = _np.where(
            tracker.needed_mask(handle.query_id) & tracker.buffered_mask,
            tracker.interest_values,
            self._SELECT_EXCLUDED,
        )
        best = counts.min()
        if best == self._SELECT_EXCLUDED:
            return None
        # use_relevance = qmax - interested_count: max score == min count;
        # argmax over the equality mask is the first (smallest) tied chunk.
        return int((counts == best).argmax())

    def _vector_choose_load(self, tracker, handle: CScanHandle) -> Optional[int]:
        qmax = self.parameters.qmax
        scores = _np.where(
            tracker.needed_mask(handle.query_id) & ~tracker.unloadable_mask,
            tracker.starved_values * qmax + tracker.interest_values,
            -1,
        )
        best = scores.max()
        if best < 0:
            return None
        return int((scores == best).argmax())

    def _vector_evictions(self, tracker, trigger: CScanHandle) -> Optional[List[int]]:
        unpinned = self.abm.pool.unpinned_chunks()
        if not unpinned:
            return None
        chunks = _np.fromiter(unpinned, dtype=_np.int64, count=len(unpinned))
        eligible = ~tracker.needed_mask(trigger.query_id)[chunks]
        qmax = self.parameters.qmax
        for protect_starved in (True, False):
            mask = eligible
            if protect_starved:
                mask = eligible & (tracker.starved_values[chunks] == 0)
            candidates = chunks[mask]
            if candidates.size == 0:
                continue
            scores = (
                tracker.almost_values[candidates] * qmax
                + tracker.interest_values[candidates]
            )
            return [int(candidates[scores == scores.min()].min())]
        return None

    # ------------------------------------------------------------- delivery
    def select_chunk_to_consume(self, handle: CScanHandle, now: float) -> Optional[int]:
        self.scheduling_calls += 1
        abm = self.abm
        tracker = self._vector_tracker()
        if tracker is not None and tracker.knows(handle.query_id):
            return self._vector_select(tracker, handle)
        if abm.incremental:
            # The tracker maintains exactly the buffered-and-needed bucket;
            # the naive path rediscovers it by probing the pool per chunk.
            candidates: Iterable[int] = abm.available_chunks(handle)
        else:
            pool = abm.pool
            candidates = (chunk for chunk in handle.needed if chunk in pool)
        best_chunk: Optional[int] = None
        best_score = -math.inf
        for chunk in candidates:
            score = self.use_relevance(chunk)
            if score > best_score or (score == best_score and best_chunk is not None and chunk < best_chunk):
                best_score = score
                best_chunk = chunk
        return best_chunk

    # ----------------------------------------------------------------- loads
    def choose_load(self, now: float) -> Optional[Tuple[int, int]]:
        self.scheduling_calls += 1
        abm = self.abm
        if abm.incremental:
            # Registration-ordered starved set, maintained incrementally —
            # identical to filtering the full handle walk below.
            starved = [handle for handle in abm.starved_handles() if not handle.finished]
        else:
            starved = [
                handle
                for handle in abm.active_handles()
                if not handle.finished and self.query_starved(handle)
            ]
        if not starved:
            return None
        starved.sort(key=lambda handle: self.query_relevance(handle, now), reverse=True)
        for handle in starved:
            chunk = self._choose_chunk_to_load(handle)
            if chunk is not None:
                return handle.query_id, chunk
        return None

    def _choose_chunk_to_load(self, handle: CScanHandle) -> Optional[int]:
        """``chooseChunkToLoad``: the not-yet-buffered chunk with the highest
        load relevance among those the query still needs."""
        tracker = self._vector_tracker()
        if tracker is not None and tracker.knows(handle.query_id):
            return self._vector_choose_load(tracker, handle)
        pool = self.abm.pool
        best_chunk: Optional[int] = None
        best_score = -math.inf
        for chunk in handle.needed:
            if chunk in pool or pool.is_loading(chunk):
                continue
            score = self.load_relevance(chunk)
            if score > best_score or (score == best_score and best_chunk is not None and chunk < best_chunk):
                best_score = score
                best_chunk = chunk
        return best_chunk

    # -------------------------------------------------------------- eviction
    def choose_evictions(
        self, trigger_query: int, incoming_chunk: int, now: float
    ) -> Optional[List[int]]:
        self.scheduling_calls += 1
        abm = self.abm
        pool = abm.pool
        trigger = abm.handle(trigger_query)
        tracker = self._vector_tracker()
        if tracker is not None and tracker.knows(trigger_query):
            return self._vector_evictions(tracker, trigger)

        def eligible(chunk: int, protect_starved: bool) -> bool:
            if trigger.is_interested(chunk):
                return False
            if protect_starved and abm.starved_interested_count(chunk) > 0:
                return False
            return True

        # First pass: the paper's strict rule (never evict chunks useful to a
        # starved query).  Second pass: relax that protection, because when
        # every evictable chunk is useful to some starved query, evicting the
        # least relevant one still beats idling the disk.
        for protect_starved in (True, False):
            candidates = [
                chunk
                for chunk in pool.unpinned_chunks()
                if eligible(chunk, protect_starved)
            ]
            if candidates:
                victim = min(candidates, key=lambda chunk: (self.keep_relevance(chunk), chunk))
                return [victim]
        return None
