"""Incrementally-maintained relevance aggregates (the scheduling hot path).

The relevance policies (Figure 3 / Figure 11 of the paper) score chunks by
how many registered queries are interested in them, how many of those
queries are starved, and how much buffered data each query can currently
consume.  Recomputing those quantities from scratch makes every scheduling
decision O(queries x chunks); the paper stresses that cooperative scans are
only viable because scheduling cost stays "negligible compared to I/O".

The trackers in this module maintain the same quantities as O(1)-updated
counters driven by the ABM lifecycle events:

* ``register`` / ``unregister`` — a query's interest in its chunks appears
  and disappears;
* ``finish_chunk`` — the query stops being interested in one chunk;
* ``complete_load`` / eviction — a chunk (NSM) or column block (DSM) enters
  or leaves the buffer pool, changing per-query availability.

Maintained aggregates:

``interested_ids(chunk)`` / ``interested_count(chunk)``
    The registered queries that still need a chunk, in registration order
    (the order the naive ``interested_handles`` walk produces).

``available_chunks(qid)`` / ``available_count(qid)``
    The buffered (NSM) or ready (DSM: every needed column buffered) chunks
    each query can consume right now — the bucket the relevance ``use``
    function draws from.

``starved_interested_count(chunk)`` / ``almost_starved_interested_count``
    Per-chunk counts of interested queries that are (almost) starved — the
    two terms of ``loadRelevance`` and ``keepRelevance``.

``starved_ids_ordered()``
    The starved queries in registration order — the candidate list of
    ``chooseQueryToProcess``.

A query's starvation state only changes when its available count crosses the
policy threshold, so the per-chunk starved counters are updated lazily: a
threshold crossing costs O(chunks the query still needs), everything else is
O(interested queries of the touched chunk).  The trackers are exact mirrors
of the naive recomputation — the golden-trace equivalence tests assert
bit-for-bit identical scheduling decisions with the trackers on and off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Set

try:  # pragma: no cover - exercised implicitly by the vector trackers
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.bufman.slots import ChunkSlotPool, DSMBlockPool
    from repro.core.cscan import CScanHandle


def vector_interest_available() -> bool:
    """Whether the numpy-backed interest trackers can be constructed."""
    return _np is not None


class _InterestBase:
    """Interest sets, registration order and starvation counters shared by
    the NSM and DSM trackers; subclasses supply availability maintenance."""

    def __init__(self, starvation_threshold: int, almost_starved_threshold: int) -> None:
        self._starve_below = starvation_threshold
        self._almost_at = almost_starved_threshold
        self._handles: Dict[int, "CScanHandle"] = {}
        #: Registration sequence of each query; ties and orderings everywhere
        #: follow registration order, matching the naive walks over the ABM's
        #: insertion-ordered handle dict.
        self._seq: Dict[int, int] = {}
        self._next_seq = 0
        #: chunk -> ids of registered queries that still need it.  A query's
        #: interest in a chunk is added exactly once (at registration) and
        #: removed at most once, so an insertion-ordered dict (values unused)
        #: yields registration order for free — no per-read sort.
        self._interest: Dict[int, Dict[int, None]] = {}
        #: qid -> chunks the query could consume right now.
        self._avail: Dict[int, Set[int]] = {}
        self._starved_flag: Dict[int, bool] = {}
        self._almost_flag: Dict[int, bool] = {}
        self._starved_ids: Set[int] = set()
        #: chunk -> number of interested queries currently starved.
        self._starved_interest: Dict[int, int] = {}
        #: chunk -> number of interested queries currently almost starved.
        self._almost_interest: Dict[int, int] = {}

    # ------------------------------------------------------------- queries
    def knows(self, query_id: int) -> bool:
        """Whether the query is currently tracked (registered)."""
        return query_id in self._avail

    def interested_ids(self, chunk: int) -> List[int]:
        """Interested query ids in registration order."""
        ids = self._interest.get(chunk)
        if not ids:
            return []
        return list(ids)

    def interested_count(self, chunk: int) -> int:
        """Number of registered queries that still need the chunk."""
        ids = self._interest.get(chunk)
        return len(ids) if ids else 0

    def available_chunks(self, query_id: int) -> Set[int]:
        """The query's currently consumable chunks (do not mutate)."""
        return self._avail[query_id]

    def available_count(self, query_id: int) -> int:
        """Number of currently consumable chunks of the query."""
        return len(self._avail[query_id])

    def is_starved(self, query_id: int) -> bool:
        """Whether the query is below the starvation threshold."""
        return self._starved_flag[query_id]

    def is_almost_starved(self, query_id: int) -> bool:
        """Whether the query is at or below the almost-starved threshold."""
        return self._almost_flag[query_id]

    def starved_ids_ordered(self) -> List[int]:
        """Ids of the starved queries, in registration order."""
        return sorted(self._starved_ids, key=self._seq.__getitem__)

    def starved_interested_count(self, chunk: int) -> int:
        """Interested queries of the chunk that are currently starved."""
        return self._starved_interest.get(chunk, 0)

    def almost_starved_interested_count(self, chunk: int) -> int:
        """Interested queries of the chunk that are almost starved."""
        return self._almost_interest.get(chunk, 0)

    # ----------------------------------------------------------- lifecycle
    def _register_common(self, handle: "CScanHandle", available: Set[int]) -> None:
        qid = handle.query_id
        self._handles[qid] = handle
        self._seq[qid] = self._next_seq
        self._next_seq += 1
        self._avail[qid] = available
        starved = len(available) < self._starve_below
        almost = len(available) <= self._almost_at
        self._starved_flag[qid] = starved
        self._almost_flag[qid] = almost
        if starved:
            self._starved_ids.add(qid)
        for chunk in handle.needed:
            self._interest.setdefault(chunk, {})[qid] = None
            if starved:
                self._bump(self._starved_interest, chunk, 1)
            if almost:
                self._bump(self._almost_interest, chunk, 1)

    def on_unregister(self, handle: "CScanHandle") -> None:
        """The query left the ABM; drop its remaining interest and state."""
        qid = handle.query_id
        for chunk in list(handle.needed):
            self._drop_interest(qid, chunk)
        del self._handles[qid]
        del self._seq[qid]
        del self._avail[qid]
        del self._starved_flag[qid]
        del self._almost_flag[qid]
        self._starved_ids.discard(qid)

    def on_chunk_finished(self, handle: "CScanHandle", chunk: int) -> None:
        """The query finished consuming ``chunk`` (already left ``needed``)."""
        qid = handle.query_id
        self._drop_interest(qid, chunk)
        self._avail[qid].discard(chunk)
        self._refresh_flags(handle)

    # ------------------------------------------------------------ internals
    @staticmethod
    def _bump(counter: Dict[int, int], chunk: int, delta: int) -> None:
        value = counter.get(chunk, 0) + delta
        if value:
            counter[chunk] = value
        else:
            counter.pop(chunk, None)

    def _drop_interest(self, qid: int, chunk: int) -> None:
        ids = self._interest.get(chunk)
        if ids is not None:
            ids.pop(qid, None)
            if not ids:
                del self._interest[chunk]
        if self._starved_flag[qid]:
            self._bump(self._starved_interest, chunk, -1)
        if self._almost_flag[qid]:
            self._bump(self._almost_interest, chunk, -1)

    def _refresh_flags(self, handle: "CScanHandle") -> None:
        """Re-derive the query's starvation flags after an availability
        change, propagating threshold crossings to the per-chunk counters."""
        qid = handle.query_id
        count = len(self._avail[qid])
        starved = count < self._starve_below
        if starved != self._starved_flag[qid]:
            self._starved_flag[qid] = starved
            if starved:
                self._starved_ids.add(qid)
            else:
                self._starved_ids.discard(qid)
            delta = 1 if starved else -1
            for chunk in handle.needed:
                self._bump(self._starved_interest, chunk, delta)
        almost = count <= self._almost_at
        if almost != self._almost_flag[qid]:
            self._almost_flag[qid] = almost
            delta = 1 if almost else -1
            for chunk in handle.needed:
                self._bump(self._almost_interest, chunk, delta)


class InterestTracker(_InterestBase):
    """Incremental aggregates for the NSM (row-store) buffer manager.

    Availability of a chunk for a query simply means the chunk is buffered,
    so availability updates are driven by chunk loads and evictions.
    """

    def __init__(
        self,
        pool: "ChunkSlotPool",
        starvation_threshold: int,
        almost_starved_threshold: int,
    ) -> None:
        super().__init__(starvation_threshold, almost_starved_threshold)
        self._pool = pool

    def on_register(self, handle: "CScanHandle") -> None:
        """Index a newly registered scan against the current pool contents."""
        available = {chunk for chunk in handle.needed if chunk in self._pool}
        self._register_common(handle, available)

    def on_chunk_loaded(self, chunk: int) -> None:
        """A chunk finished loading: it becomes available to every
        interested query."""
        for qid in self._interest.get(chunk, ()):
            self._avail[qid].add(chunk)
            self._refresh_flags(self._handles[qid])

    def on_chunk_evicted(self, chunk: int) -> None:
        """A chunk was evicted: it stops being available."""
        for qid in self._interest.get(chunk, ()):
            self._avail[qid].discard(chunk)
            self._refresh_flags(self._handles[qid])


class DSMInterestTracker(_InterestBase):
    """Incremental aggregates for the DSM (column-store) buffer manager.

    A chunk is available ("ready") for a query when *all* the column blocks
    the query reads are buffered, so the tracker keeps, per (query, needed
    chunk), the number of still-missing columns plus the buffered pages of
    the query's columns (the ``useRelevance`` numerator and the "avoid data
    waste" reservation criterion).
    """

    def __init__(
        self,
        pool: "DSMBlockPool",
        starvation_threshold: int,
        almost_starved_threshold: int,
    ) -> None:
        super().__init__(starvation_threshold, almost_starved_threshold)
        self._pool = pool
        #: qid -> frozenset of the query's columns (fast membership tests).
        self._colsets: Dict[int, FrozenSet[str]] = {}
        #: qid -> chunk -> number of the query's columns not yet buffered.
        self._missing: Dict[int, Dict[int, int]] = {}
        #: qid -> chunk -> buffered pages among the query's columns.
        self._cached: Dict[int, Dict[int, int]] = {}

    def on_register(self, handle: "CScanHandle") -> None:
        """Index a newly registered scan against the current pool contents."""
        qid = handle.query_id
        pool = self._pool
        columns = handle.columns
        missing: Dict[int, int] = {}
        cached: Dict[int, int] = {}
        available: Set[int] = set()
        for chunk in handle.needed:
            absent = 0
            pages = 0
            for column in columns:
                if pool.has_block(chunk, column):
                    pages += pool.block((chunk, column)).pages
                else:
                    absent += 1
            missing[chunk] = absent
            cached[chunk] = pages
            if absent == 0:
                available.add(chunk)
        self._colsets[qid] = frozenset(columns)
        self._missing[qid] = missing
        self._cached[qid] = cached
        self._register_common(handle, available)

    def on_unregister(self, handle: "CScanHandle") -> None:
        qid = handle.query_id
        super().on_unregister(handle)
        del self._colsets[qid]
        del self._missing[qid]
        del self._cached[qid]

    def on_chunk_finished(self, handle: "CScanHandle", chunk: int) -> None:
        qid = handle.query_id
        self._missing[qid].pop(chunk, None)
        self._cached[qid].pop(chunk, None)
        super().on_chunk_finished(handle, chunk)

    def on_block_loaded(self, chunk: int, column: str, pages: int) -> None:
        """A column block finished loading: interested queries reading the
        column have one less missing column for the chunk."""
        for qid in self._interest.get(chunk, ()):
            if column not in self._colsets[qid]:
                continue
            remaining = self._missing[qid][chunk] - 1
            self._missing[qid][chunk] = remaining
            self._cached[qid][chunk] += pages
            if remaining == 0:
                self._avail[qid].add(chunk)
                self._refresh_flags(self._handles[qid])

    def on_block_evicted(self, chunk: int, column: str, pages: int) -> None:
        """A column block was evicted: the chunk stops being ready for any
        interested query reading the column."""
        for qid in self._interest.get(chunk, ()):
            if column not in self._colsets[qid]:
                continue
            was_ready = self._missing[qid][chunk] == 0
            self._missing[qid][chunk] += 1
            self._cached[qid][chunk] -= pages
            if was_ready:
                self._avail[qid].discard(chunk)
                self._refresh_flags(self._handles[qid])

    def cached_pages(self, query_id: int, chunk: int) -> Optional[int]:
        """Buffered pages of the query's columns for a needed chunk, or
        ``None`` when the pair is not tracked (caller falls back to the
        pool walk)."""
        per_chunk = self._cached.get(query_id)
        if per_chunk is None:
            return None
        return per_chunk.get(chunk)


class _VectorInterestMixin:
    """Numpy-backed counter storage layered over an interest tracker.

    The scalar trackers keep the per-chunk aggregates in dicts and apply a
    threshold crossing as a Python loop over the query's remaining chunks
    (:meth:`_InterestBase._refresh_flags`).  This mixin stores the same
    aggregates as dense ``int64`` arrays indexed by chunk id and applies
    each crossing as one fancy-indexed batch add — O(needed) in C instead
    of O(needed) dict operations — while leaving every set/dict structure
    the rest of the tracker relies on (registration order, availability
    sets, the per-chunk interested-id dicts) untouched.  The arrays are an
    exact mirror: every read answers bit-for-bit what the dict counters
    would, which the vector-engine equivalence tests pin.

    The mixin also keeps each query's remaining chunks as a boolean mask
    over chunk ids, flipped incrementally as chunks are consumed — the mask
    always equals ``handle.needed`` (``needed.discard`` precedes the
    tracker's ``_drop_interest`` call), so candidate construction in the
    policies is pure mask arithmetic with no per-call set conversion.
    """

    #: Duck-typing marker for policies with vectorised scoring paths.
    vectorized = True

    def _init_vectors(self, num_chunks: int) -> None:
        if _np is None:  # pragma: no cover - callers gate on availability
            raise RuntimeError("vector interest trackers require numpy")
        self._num_chunks = num_chunks
        self._interest_arr = _np.zeros(num_chunks, dtype=_np.int64)
        self._starved_arr = _np.zeros(num_chunks, dtype=_np.int64)
        self._almost_arr = _np.zeros(num_chunks, dtype=_np.int64)
        self._needed_masks: Dict[int, "_np.ndarray"] = {}

    # ---------------------------------------------------------- vector reads
    @property
    def interest_values(self) -> "_np.ndarray":
        """Per-chunk interested-query counts (do not mutate)."""
        return self._interest_arr

    @property
    def starved_values(self) -> "_np.ndarray":
        """Per-chunk starved interested-query counts (do not mutate)."""
        return self._starved_arr

    @property
    def almost_values(self) -> "_np.ndarray":
        """Per-chunk almost-starved interested-query counts (do not mutate)."""
        return self._almost_arr

    def needed_mask(self, query_id: int) -> "_np.ndarray":
        """Boolean mask of the query's remaining chunks (do not mutate).

        Always equal to ``handle.needed``: built at registration, one bit
        cleared per consumed chunk.
        """
        return self._needed_masks[query_id]

    # ------------------------------------------------------ counter overrides
    def interested_count(self, chunk: int) -> int:
        return int(self._interest_arr[chunk])

    def starved_interested_count(self, chunk: int) -> int:
        return int(self._starved_arr[chunk])

    def almost_starved_interested_count(self, chunk: int) -> int:
        return int(self._almost_arr[chunk])

    def _register_common(self, handle: "CScanHandle", available: Set[int]) -> None:
        qid = handle.query_id
        self._handles[qid] = handle
        self._seq[qid] = self._next_seq
        self._next_seq += 1
        self._avail[qid] = available
        starved = len(available) < self._starve_below
        almost = len(available) <= self._almost_at
        self._starved_flag[qid] = starved
        self._almost_flag[qid] = almost
        if starved:
            self._starved_ids.add(qid)
        interest = self._interest
        for chunk in handle.needed:
            interest.setdefault(chunk, {})[qid] = None
        needed = _np.fromiter(
            handle.needed, dtype=_np.int64, count=len(handle.needed)
        )
        mask = _np.zeros(self._num_chunks, dtype=bool)
        mask[needed] = True
        self._needed_masks[qid] = mask
        self._interest_arr[needed] += 1
        if starved:
            self._starved_arr[needed] += 1
        if almost:
            self._almost_arr[needed] += 1

    def on_unregister(self, handle: "CScanHandle") -> None:
        super().on_unregister(handle)
        self._needed_masks.pop(handle.query_id, None)

    def _drop_interest(self, qid: int, chunk: int) -> None:
        ids = self._interest.get(chunk)
        if ids is not None:
            ids.pop(qid, None)
            if not ids:
                del self._interest[chunk]
        self._needed_masks[qid][chunk] = False
        self._interest_arr[chunk] -= 1
        if self._starved_flag[qid]:
            self._starved_arr[chunk] -= 1
        if self._almost_flag[qid]:
            self._almost_arr[chunk] -= 1

    def _refresh_flags(self, handle: "CScanHandle") -> None:
        qid = handle.query_id
        count = len(self._avail[qid])
        starved = count < self._starve_below
        almost = count <= self._almost_at
        if starved == self._starved_flag[qid] and almost == self._almost_flag[qid]:
            return
        needed = self._needed_masks[qid]
        if starved != self._starved_flag[qid]:
            self._starved_flag[qid] = starved
            if starved:
                self._starved_ids.add(qid)
                self._starved_arr[needed] += 1
            else:
                self._starved_ids.discard(qid)
                self._starved_arr[needed] -= 1
        if almost != self._almost_flag[qid]:
            self._almost_flag[qid] = almost
            if almost:
                self._almost_arr[needed] += 1
            else:
                self._almost_arr[needed] -= 1


class VectorInterestTracker(_VectorInterestMixin, InterestTracker):
    """Numpy-counter variant of the NSM :class:`InterestTracker`.

    On top of the batched counters it maintains two boolean masks over the
    chunk space — buffered and loading — so the relevance policy can filter
    load candidates with one vector expression instead of two pool probes
    per chunk.  The loading mask is fed by the pool's optional
    ``on_load_started`` / ``on_load_cancelled`` listener hooks.
    """

    def __init__(
        self,
        pool: "ChunkSlotPool",
        starvation_threshold: int,
        almost_starved_threshold: int,
        num_chunks: int,
    ) -> None:
        InterestTracker.__init__(
            self, pool, starvation_threshold, almost_starved_threshold
        )
        self._init_vectors(num_chunks)
        self._buffered_mask = _np.zeros(num_chunks, dtype=bool)
        self._loading_mask = _np.zeros(num_chunks, dtype=bool)
        for chunk in pool.buffered_chunks():
            self._buffered_mask[chunk] = True
        for chunk in pool.loading_chunks():
            self._loading_mask[chunk] = True

    @property
    def unloadable_mask(self) -> "_np.ndarray":
        """Chunks that must not be loaded: buffered or already in flight."""
        return self._buffered_mask | self._loading_mask

    @property
    def buffered_mask(self) -> "_np.ndarray":
        """Boolean mask of fully-loaded chunks (mirrors pool membership)."""
        return self._buffered_mask

    def on_chunk_loaded(self, chunk: int) -> None:
        self._buffered_mask[chunk] = True
        self._loading_mask[chunk] = False
        super().on_chunk_loaded(chunk)

    def on_chunk_evicted(self, chunk: int) -> None:
        self._buffered_mask[chunk] = False
        super().on_chunk_evicted(chunk)

    def on_load_started(self, chunk: int) -> None:
        self._loading_mask[chunk] = True

    def on_load_cancelled(self, chunk: int) -> None:
        self._loading_mask[chunk] = False

    def on_pool_reset(self) -> None:
        self._buffered_mask[:] = False
        self._loading_mask[:] = False


class VectorDSMInterestTracker(_VectorInterestMixin, DSMInterestTracker):
    """Numpy-counter variant of the DSM :class:`DSMInterestTracker`.

    Only the shared starved/almost/interest counters are vectorised; the
    per-(query, chunk) missing-column and cached-page maps stay scalar —
    they are touched one entry per block event already.
    """

    def __init__(
        self,
        pool: "DSMBlockPool",
        starvation_threshold: int,
        almost_starved_threshold: int,
        num_chunks: int,
    ) -> None:
        DSMInterestTracker.__init__(
            self, pool, starvation_threshold, almost_starved_threshold
        )
        self._init_vectors(num_chunks)
