"""CScan registration objects.

A ``CScan`` operator differs from a plain ``Scan`` in two ways (Section 4):
it announces *up front* which parts of the table it needs, and it accepts
chunks in whatever order the Active Buffer Manager delivers them.  The
announcement is a :class:`ScanRequest`; the ABM wraps it in a
:class:`CScanHandle` which tracks consumption progress and the bookkeeping
needed by the relevance functions (waiting time, blocked-since, starvation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.common.config import DEFAULT_QUERY_CLASS
from repro.common.errors import SchedulingError


@dataclass(frozen=True)
class ScanRequest:
    """What a CScan operator announces to the ABM when it registers.

    Attributes
    ----------
    query_id:
        Unique identifier of the query (unique per simulation run).
    name:
        Human-readable label, e.g. ``"F-10"`` (FAST query over 10 % of the
        table) in the paper's notation.
    chunks:
        The chunks the scan needs, in table order.  May be the whole table, a
        contiguous range, or a union of ranges (zone-map scans).
    columns:
        For DSM scans, the columns the query reads.  Empty for NSM scans
        (a row-store chunk always contains every column).
    cpu_per_chunk:
        Simulated CPU seconds needed to process one chunk of data once it is
        in the buffer (FAST vs SLOW queries differ here).
    query_class:
        Workload class the query belongs to (e.g. ``"interactive"`` /
        ``"batch"``), consulted by the service front door for per-class
        admission and by the relevance policies for per-class priorities.
        Defaults to the catch-all :data:`repro.common.config.DEFAULT_QUERY_CLASS`.
    """

    query_id: int
    name: str
    chunks: Tuple[int, ...]
    columns: Tuple[str, ...] = ()
    cpu_per_chunk: float = 0.0
    query_class: str = DEFAULT_QUERY_CLASS

    def __post_init__(self) -> None:
        if not self.chunks:
            raise SchedulingError(f"query {self.name!r} requests no chunks")
        if len(set(self.chunks)) != len(self.chunks):
            raise SchedulingError(f"query {self.name!r} lists duplicate chunks")
        if list(self.chunks) != sorted(self.chunks):
            raise SchedulingError(f"query {self.name!r} chunks must be sorted")
        if any(chunk < 0 for chunk in self.chunks):
            raise SchedulingError(f"query {self.name!r} has negative chunk ids")
        if not self.query_class:
            raise SchedulingError(f"query {self.name!r} has an empty query class")
        if len(set(self.columns)) != len(self.columns):
            raise SchedulingError(f"query {self.name!r} lists duplicate columns")
        if self.cpu_per_chunk < 0:
            raise SchedulingError("cpu_per_chunk must be non-negative")

    @property
    def num_chunks(self) -> int:
        """Number of chunks the scan needs in total."""
        return len(self.chunks)

    @classmethod
    def from_ranges(
        cls,
        query_id: int,
        name: str,
        ranges: Sequence[Tuple[int, int]],
        columns: Sequence[str] = (),
        cpu_per_chunk: float = 0.0,
        query_class: str = DEFAULT_QUERY_CLASS,
    ) -> "ScanRequest":
        """Build a request from inclusive chunk ranges (zone-map style plans)."""
        chunks: List[int] = []
        for start, end in ranges:
            if start > end:
                raise SchedulingError(f"invalid chunk range ({start}, {end})")
            chunks.extend(range(start, end + 1))
        unique_sorted = tuple(sorted(set(chunks)))
        return cls(
            query_id=query_id,
            name=name,
            chunks=unique_sorted,
            columns=tuple(columns),
            cpu_per_chunk=cpu_per_chunk,
            query_class=query_class,
        )


class CScanHandle:
    """The ABM-side state of one registered CScan operator."""

    def __init__(self, request: ScanRequest, now: float) -> None:
        self.request = request
        self.query_id = request.query_id
        self.name = request.name
        self.columns: Tuple[str, ...] = request.columns
        self.query_class = request.query_class
        self.arrival_time = now
        #: Chunks not yet *finished* (the chunk currently being consumed stays
        #: in this set until consumption completes, matching the paper's
        #: definition of "available chunks" which includes the current one).
        self.needed: Set[int] = set(request.chunks)
        self.consumed: Set[int] = set()
        #: Chunk currently being consumed by the query (None if idle/blocked).
        self.current_chunk: Optional[int] = None
        #: When the query last received a chunk from the ABM (used by
        #: ``queryRelevance`` to age long-waiting queries).
        self.last_delivery_time = now
        #: When the query last became blocked (no available chunk); None while
        #: processing or before first block.
        self.blocked_since: Optional[float] = None
        self.finished = False
        #: Chunks delivered, in delivery order (for order-sensitive consumers
        #: and for tests asserting delivery completeness).
        self.delivery_order: List[int] = []

    # ------------------------------------------------------------ inspection
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CScanHandle(q{self.query_id} {self.name!r} "
            f"needed={len(self.needed)} consumed={len(self.consumed)})"
        )

    @property
    def chunks_needed(self) -> int:
        """Number of chunks still needed (including the one being consumed)."""
        return len(self.needed)

    @property
    def total_chunks(self) -> int:
        """Number of chunks the query asked for in total."""
        return self.request.num_chunks

    @property
    def is_processing(self) -> bool:
        """Whether the query is currently consuming a chunk."""
        return self.current_chunk is not None

    @property
    def is_blocked(self) -> bool:
        """Whether the query is waiting for the ABM to provide a chunk."""
        return self.blocked_since is not None

    def is_interested(self, chunk: int) -> bool:
        """Whether the query still needs the given chunk."""
        return chunk in self.needed

    def waiting_time(self, now: float) -> float:
        """Time since the ABM last delivered a chunk to this query."""
        return max(0.0, now - self.last_delivery_time)

    # ------------------------------------------------------------- mutation
    def start_chunk(self, chunk: int, now: float) -> None:
        """Record that the query starts consuming ``chunk``."""
        if self.finished:
            raise SchedulingError(f"query {self.query_id} already finished")
        if self.current_chunk is not None:
            raise SchedulingError(
                f"query {self.query_id} is already consuming chunk {self.current_chunk}"
            )
        if chunk not in self.needed:
            raise SchedulingError(
                f"query {self.query_id} does not need chunk {chunk}"
            )
        self.current_chunk = chunk
        self.blocked_since = None
        self.last_delivery_time = now
        self.delivery_order.append(chunk)

    def finish_chunk(self, now: float) -> int:
        """Record that the query finished consuming its current chunk."""
        if self.current_chunk is None:
            raise SchedulingError(f"query {self.query_id} is not consuming a chunk")
        chunk = self.current_chunk
        self.current_chunk = None
        self.needed.discard(chunk)
        self.consumed.add(chunk)
        if not self.needed:
            self.finished = True
        return chunk

    def mark_blocked(self, now: float) -> None:
        """Record that the query is blocked waiting for data."""
        if self.blocked_since is None:
            self.blocked_since = now

    def abandon_chunk(self) -> Optional[int]:
        """Drop the chunk being consumed without finishing it (cancellation).

        Returns the abandoned chunk (so the caller can release its buffer
        pin) or ``None`` if the query was not consuming one.  The chunk
        stays in ``needed``: the query did not get its data.
        """
        chunk = self.current_chunk
        self.current_chunk = None
        return chunk
