"""Tests for NSM and DSM physical layouts."""

import pytest

from repro.common.config import BufferConfig
from repro.common.errors import StorageError
from repro.common.units import KB, MB
from repro.storage.dsm import DSMTableLayout
from repro.storage.nsm import NSMTableLayout
from repro.storage.schema import ColumnSpec, DataType, TableSchema


class TestNSMLayout:
    def test_tuples_per_chunk(self, nsm_layout):
        assert nsm_layout.tuples_per_chunk == nsm_layout.chunk_bytes // 32

    def test_num_chunks(self, nsm_layout):
        assert nsm_layout.num_chunks == 32

    def test_chunk_tuple_ranges_cover_table(self, nsm_layout):
        covered = 0
        for chunk in nsm_layout.all_chunks():
            first, last = nsm_layout.chunk_tuple_range(chunk)
            assert first == covered
            covered = last
        assert covered == nsm_layout.num_tuples

    def test_last_chunk_may_be_partial(self, tiny_schema, small_config):
        layout = NSMTableLayout.from_buffer_config(
            tiny_schema, 100_001, small_config.buffer
        )
        last = layout.num_chunks - 1
        assert layout.chunk_tuple_count(last) <= layout.tuples_per_chunk
        assert layout.chunk_size_bytes(last) <= layout.chunk_bytes

    def test_chunk_of_tuple_roundtrip(self, nsm_layout):
        for tuple_index in (0, 1, nsm_layout.tuples_per_chunk, nsm_layout.num_tuples - 1):
            chunk = nsm_layout.chunk_of_tuple(tuple_index)
            first, last = nsm_layout.chunk_tuple_range(chunk)
            assert first <= tuple_index < last

    def test_chunks_for_tuple_range(self, nsm_layout):
        tpc = nsm_layout.tuples_per_chunk
        assert nsm_layout.chunks_for_tuple_range(0, tpc) == [0]
        assert nsm_layout.chunks_for_tuple_range(tpc - 1, tpc + 1) == [0, 1]
        assert nsm_layout.chunks_for_tuple_range(5, 5) == []

    def test_chunk_out_of_range_raises(self, nsm_layout):
        with pytest.raises(StorageError):
            nsm_layout.chunk_tuple_range(nsm_layout.num_chunks)

    def test_tuple_out_of_range_raises(self, nsm_layout):
        with pytest.raises(StorageError):
            nsm_layout.chunk_of_tuple(nsm_layout.num_tuples)

    def test_rejects_tuple_larger_than_chunk(self):
        fat = TableSchema.build("fat", [ColumnSpec("s", DataType.STR256)] * 1)
        with pytest.raises(StorageError):
            NSMTableLayout(schema=fat, num_tuples=10, chunk_bytes=128, page_bytes=64)

    def test_total_bytes_close_to_tuple_volume(self, nsm_layout):
        expected = nsm_layout.num_tuples * nsm_layout.tuple_bytes
        assert nsm_layout.total_bytes == pytest.approx(expected, rel=0.01)

    def test_describe(self, nsm_layout):
        info = nsm_layout.describe()
        assert info["num_chunks"] == nsm_layout.num_chunks


class TestDSMLayout:
    def test_num_chunks(self, dsm_layout):
        assert dsm_layout.num_chunks == 24

    def test_wide_columns_use_more_pages(self, dsm_layout):
        assert dsm_layout.column_total_pages("price") > dsm_layout.column_total_pages("key")

    def test_block_pages_positive(self, dsm_layout):
        for chunk in range(dsm_layout.num_chunks):
            for column in dsm_layout.schema.column_names:
                assert dsm_layout.block_pages(column, chunk) >= 1

    def test_column_pages_consistent_with_blocks(self, dsm_layout):
        # Summed block pages may double-count shared boundary pages but can
        # never be less than the column total.
        for column in dsm_layout.schema.column_names:
            summed = sum(
                dsm_layout.block_pages(column, chunk)
                for chunk in range(dsm_layout.num_chunks)
            )
            assert summed >= dsm_layout.column_total_pages(column)

    def test_blocks_cover_column_contiguously(self, dsm_layout):
        for column in ("key", "price"):
            previous_last = -1
            for chunk in range(dsm_layout.num_chunks):
                block = dsm_layout.block(column, chunk)
                assert block.first_page <= block.last_page
                # Adjacent chunks either continue on the next page or share
                # the boundary page.
                assert block.first_page in (previous_last, previous_last + 1)
                previous_last = block.last_page

    def test_narrow_column_blocks_share_pages(self, dsm_layout):
        # The 3-bit "key" column packs many chunks into one page, so most
        # chunk boundaries fall inside a page.
        shared = sum(
            dsm_layout.block("key", chunk).shares_first_page
            for chunk in range(1, dsm_layout.num_chunks)
        )
        assert shared > 0

    def test_chunk_pages_subset_smaller(self, dsm_layout):
        full = dsm_layout.chunk_pages_all_columns(0)
        subset = dsm_layout.chunk_pages(0, ["key", "flag"])
        assert subset < full

    def test_with_target_chunk_bytes(self, dsm_schema):
        layout = DSMTableLayout.with_target_chunk_bytes(
            dsm_schema, num_tuples=1_000_000, target_chunk_bytes=1 * MB, page_bytes=64 * KB
        )
        # A full-width logical chunk should occupy roughly the target size.
        per_tuple = dsm_schema.tuple_physical_bytes
        assert layout.tuples_per_chunk == pytest.approx(1 * MB / per_tuple, rel=0.01)

    def test_chunk_tuple_range_and_lookup(self, dsm_layout):
        first, last = dsm_layout.chunk_tuple_range(3)
        assert dsm_layout.chunk_of_tuple(first) == 3
        assert dsm_layout.chunk_of_tuple(last - 1) == 3

    def test_chunks_for_tuple_range_clamps(self, dsm_layout):
        chunks = dsm_layout.chunks_for_tuple_range(-10, 10)
        assert chunks == [0]

    def test_average_pages_per_chunk(self, dsm_layout):
        avg = dsm_layout.average_pages_per_chunk("price")
        assert avg == pytest.approx(
            dsm_layout.column_total_pages("price") / dsm_layout.num_chunks
        )

    def test_invalid_chunk_raises(self, dsm_layout):
        with pytest.raises(StorageError):
            dsm_layout.chunk_tuple_range(dsm_layout.num_chunks)

    def test_describe_lists_columns(self, dsm_layout):
        info = dsm_layout.describe()
        assert set(info["columns"]) == set(dsm_layout.schema.column_names)
