"""Cross-policy behavioural comparisons on controlled micro-scenarios.

These tests reproduce, at a tiny scale, the *reasoning* the paper uses to
motivate relevance: the introduction's 30-chunk/10-chunk example, the attach
"detach" problem, elevator's short-query penalty and the multi-range
(zone-map) scan weakness of attach.
"""

import pytest

from repro.common.config import BufferConfig, CpuConfig, DiskConfig, SystemConfig
from repro.common.units import KB, MB
from repro.core.cscan import ScanRequest
from repro.sim.runner import run_simulation
from repro.sim.setup import make_nsm_abm
from repro.storage.nsm import NSMTableLayout
from repro.storage.schema import ColumnSpec, DataType, TableSchema


def micro_config(cores=2, capacity=8, delay=0.0):
    return SystemConfig(
        disk=DiskConfig(bandwidth_bytes_per_s=100 * MB, avg_seek_s=0.002,
                        sequential_seek_s=0.0005),
        cpu=CpuConfig(cores=cores),
        buffer=BufferConfig(chunk_bytes=1 * MB, page_bytes=64 * KB,
                            capacity_chunks=capacity),
        stream_start_delay_s=delay,
    )


def micro_layout(num_chunks, config):
    schema = TableSchema.build("t", [ColumnSpec("a", DataType.INT64)] * 1)
    tuples = num_chunks * (config.buffer.chunk_bytes // 8)
    return NSMTableLayout.from_buffer_config(schema, tuples, config.buffer)


def run_policy(policy, streams, config, layout, capacity=None):
    abm = make_nsm_abm(layout, config, policy, capacity_chunks=capacity)
    return run_simulation(streams, config, abm)


class TestIntroductionExample:
    """Q1 needs 30 chunks, Q2 needs 10 disjoint chunks, same speed, same start."""

    def build_streams(self):
        cpu = 0.001  # I/O bound, as in the example
        q1 = ScanRequest(0, "Q1", tuple(range(0, 30)), cpu_per_chunk=cpu)
        q2 = ScanRequest(1, "Q2", tuple(range(30, 40)), cpu_per_chunk=cpu)
        return [[q1], [q2]]

    def test_relevance_average_latency_beats_normal(self):
        config = micro_config(capacity=4)
        layout = micro_layout(40, config)
        normal = run_policy("normal", self.build_streams(), config, layout, capacity=4)
        relevance = run_policy("relevance", self.build_streams(), config, layout, capacity=4)
        normal_avg = normal.average_latency
        relevance_avg = relevance.average_latency
        # Round-robin servicing makes the short query wait for the long one;
        # relevance services the short query first and lowers the average.
        assert relevance_avg < normal_avg
        # The long query is not significantly penalised.
        normal_q1 = max(q.latency for q in normal.queries)
        relevance_q1 = max(q.latency for q in relevance.queries)
        assert relevance_q1 <= normal_q1 * 1.1


class TestAttachDetach:
    """A fast and a slow query attached together drift apart under attach."""

    def build_streams(self, layout):
        full = tuple(range(layout.num_chunks))
        fast = ScanRequest(0, "fast", full, cpu_per_chunk=0.001)
        slow = ScanRequest(1, "slow", full, cpu_per_chunk=0.1)
        return [[fast], [slow]]

    def test_detach_causes_rereads_with_small_buffer(self):
        config = micro_config(capacity=3)
        layout = micro_layout(24, config)
        result = run_policy("attach", self.build_streams(layout), config, layout,
                            capacity=3)
        # The slow query cannot keep up within a 3-chunk buffer, so chunks are
        # read more than once (the "detach" effect of Figure 4).
        assert result.io_requests > layout.num_chunks

    def test_relevance_limits_rereads_in_same_scenario(self):
        config = micro_config(capacity=3)
        layout = micro_layout(24, config)
        attach = run_policy("attach", self.build_streams(layout), config, layout,
                            capacity=3)
        relevance = run_policy("relevance", self.build_streams(layout), config,
                               layout, capacity=3)
        assert relevance.io_requests <= attach.io_requests


class TestElevatorShortQueryPenalty:
    def test_short_range_query_waits_for_cursor(self):
        # The second stream starts 0.5 s later, by which time the elevator
        # cursor has moved well past the short query's range.
        config = micro_config(capacity=6, delay=0.5)
        layout = micro_layout(32, config)
        cpu = 0.02
        long_query = ScanRequest(0, "long", tuple(range(0, 32)), cpu_per_chunk=cpu)
        # Short query over the *beginning* of the table, arriving second: the
        # elevator cursor has already passed its range.
        short_query = ScanRequest(1, "short", tuple(range(0, 2)), cpu_per_chunk=cpu)
        streams = [[long_query], [short_query]]
        elevator = run_policy("elevator", streams, config, layout, capacity=6)
        relevance = run_policy("relevance", streams, config, layout, capacity=6)
        elevator_short = next(q for q in elevator.queries if q.name == "short").latency
        relevance_short = next(q for q in relevance.queries if q.name == "short").latency
        assert relevance_short < elevator_short


class TestMultiRangeScans:
    """Zone-map plans produce non-contiguous chunk sets; relevance still shares."""

    def test_relevance_handles_multi_range_requests(self):
        config = micro_config(capacity=6)
        layout = micro_layout(32, config)
        cpu = 0.002
        ranged = ScanRequest.from_ranges(0, "zonemap", [(0, 5), (20, 25)],
                                         cpu_per_chunk=cpu)
        full = ScanRequest(1, "full", tuple(range(32)), cpu_per_chunk=cpu)
        streams = [[ranged], [full]]
        relevance = run_policy("relevance", streams, config, layout, capacity=6)
        normal = run_policy("normal", streams, config, layout, capacity=6)
        ranged_result = next(q for q in relevance.queries if q.name == "zonemap")
        assert sorted(ranged_result.delivery_order) == list(ranged.chunks)
        assert relevance.io_requests <= normal.io_requests
