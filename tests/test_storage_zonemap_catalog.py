"""Tests for zone maps and the catalog."""

import numpy as np
import pytest

from repro.common.errors import StorageError
from repro.storage.catalog import Catalog
from repro.storage.zonemap import ZoneMap, build_zonemap, group_contiguous


class TestGroupContiguous:
    def test_groups_runs(self):
        assert group_contiguous([0, 1, 2, 5, 6, 9]) == [(0, 2), (5, 6), (9, 9)]

    def test_empty(self):
        assert group_contiguous([]) == []

    def test_single(self):
        assert group_contiguous([4]) == [(4, 4)]


class TestZoneMap:
    def test_build_from_sorted_column(self):
        values = np.arange(1000)
        zonemap = build_zonemap("x", values, tuples_per_chunk=100)
        assert zonemap.num_chunks == 10
        assert zonemap.minima[0] == 0
        assert zonemap.maxima[-1] == 999

    def test_range_on_sorted_column_is_contiguous(self):
        zonemap = build_zonemap("x", np.arange(1000), tuples_per_chunk=100)
        assert zonemap.chunks_for_range(250, 449) == [2, 3, 4]
        assert zonemap.ranges_for_range(250, 449) == [(2, 4)]

    def test_range_on_correlated_column_skips_chunks(self):
        # A noisy but increasing column: zone maps prune most chunks.
        rng = np.random.default_rng(0)
        values = np.arange(1000) + rng.integers(0, 50, size=1000)
        zonemap = build_zonemap("x", values.astype(float), tuples_per_chunk=100)
        selected = zonemap.chunks_for_range(500, 520)
        assert 0 < len(selected) < zonemap.num_chunks

    def test_uncorrelated_column_selects_everything(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 1000, size=1000)
        zonemap = build_zonemap("x", values, tuples_per_chunk=100)
        assert zonemap.chunks_for_range(400, 600) == list(range(10))

    def test_empty_range(self):
        zonemap = build_zonemap("x", np.arange(100), tuples_per_chunk=10)
        assert zonemap.chunks_for_range(50, 40) == []

    def test_selectivity(self):
        zonemap = build_zonemap("x", np.arange(100), tuples_per_chunk=10)
        assert zonemap.selectivity(0, 9) == pytest.approx(0.1)

    def test_validation_min_greater_than_max(self):
        with pytest.raises(StorageError):
            ZoneMap("x", minima=(5.0,), maxima=(1.0,))

    def test_validation_length_mismatch(self):
        with pytest.raises(StorageError):
            ZoneMap("x", minima=(1.0, 2.0), maxima=(3.0,))

    def test_build_rejects_empty(self):
        with pytest.raises(StorageError):
            build_zonemap("x", np.array([]), tuples_per_chunk=10)

    def test_build_rejects_bad_chunk_size(self):
        with pytest.raises(StorageError):
            build_zonemap("x", np.arange(10), tuples_per_chunk=0)


class TestCatalog:
    def test_register_and_get(self, nsm_layout):
        catalog = Catalog()
        entry = catalog.register(nsm_layout)
        assert catalog.get("tiny") is entry
        assert "tiny" in catalog
        assert len(catalog) == 1

    def test_register_duplicate_raises(self, nsm_layout):
        catalog = Catalog()
        catalog.register(nsm_layout)
        with pytest.raises(StorageError):
            catalog.register(nsm_layout)

    def test_unknown_table_raises(self):
        with pytest.raises(StorageError):
            Catalog().get("missing")

    def test_is_dsm_flag(self, nsm_layout, dsm_layout):
        catalog = Catalog()
        assert not catalog.register(nsm_layout).is_dsm
        assert catalog.register(dsm_layout).is_dsm

    def test_add_zonemap_validates_chunk_count(self, nsm_layout):
        catalog = Catalog()
        catalog.register(nsm_layout)
        bad = ZoneMap("a", minima=(0.0,), maxima=(1.0,))
        with pytest.raises(StorageError):
            catalog.add_zonemap("tiny", bad)

    def test_add_zonemap_success(self, nsm_layout):
        catalog = Catalog()
        catalog.register(nsm_layout)
        values = np.arange(nsm_layout.num_tuples, dtype=float)
        zonemap = build_zonemap("a", values, nsm_layout.tuples_per_chunk)
        catalog.add_zonemap("tiny", zonemap)
        assert "a" in catalog.get("tiny").zonemaps

    def test_drop(self, nsm_layout):
        catalog = Catalog()
        catalog.register(nsm_layout)
        catalog.drop("tiny")
        assert "tiny" not in catalog
        with pytest.raises(StorageError):
            catalog.drop("tiny")

    def test_table_names(self, nsm_layout, dsm_layout):
        catalog = Catalog()
        catalog.register(nsm_layout)
        catalog.register(dsm_layout)
        assert set(catalog.table_names()) == {"tiny", "dsmtab"}
