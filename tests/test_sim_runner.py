"""Tests for the discrete-event simulator."""

import pytest

from repro.common.errors import SimulationError
from repro.core.policies import POLICY_NAMES
from repro.sim.runner import ScanSimulator, run_simulation, run_standalone
from repro.sim.setup import make_nsm_abm, nsm_abm_factory, make_dsm_abm
from tests.conftest import make_request


class TestBasicRuns:
    def test_single_query_standalone(self, nsm_layout, small_config):
        spec = make_request(0, range(8), cpu_per_chunk=0.001)
        abm = make_nsm_abm(nsm_layout, small_config, "normal")
        result = run_simulation([[spec]], small_config, abm)
        assert len(result.queries) == 1
        query = result.queries[0]
        assert query.chunks == 8
        assert query.latency > 0
        # Cold run: every chunk must be read exactly once.
        assert result.io_requests == 8
        assert query.delivery_order and sorted(query.delivery_order) == list(range(8))

    def test_io_bound_query_latency_close_to_io_time(self, nsm_layout, small_config):
        spec = make_request(0, range(8), cpu_per_chunk=0.0001)
        abm = make_nsm_abm(nsm_layout, small_config, "normal")
        result = run_simulation([[spec]], small_config, abm)
        expected_io = 8 * small_config.chunk_load_time()
        assert result.queries[0].latency == pytest.approx(expected_io, rel=0.2)

    def test_cpu_bound_query_latency_close_to_cpu_time(self, nsm_layout, small_config):
        spec = make_request(0, range(8), cpu_per_chunk=0.5)
        abm = make_nsm_abm(nsm_layout, small_config, "normal")
        result = run_simulation([[spec]], small_config, abm)
        assert result.queries[0].latency == pytest.approx(8 * 0.5, rel=0.2)

    def test_stream_delay_staggers_arrivals(self, nsm_layout, small_config):
        streams = [
            [make_request(0, range(4), cpu_per_chunk=0.001)],
            [make_request(1, range(4), cpu_per_chunk=0.001)],
        ]
        abm = make_nsm_abm(nsm_layout, small_config, "normal")
        result = run_simulation(streams, small_config, abm)
        arrivals = sorted(query.arrival_time for query in result.queries)
        assert arrivals[1] - arrivals[0] == pytest.approx(
            small_config.stream_start_delay_s
        )

    def test_queries_within_stream_run_sequentially(self, nsm_layout, small_config):
        streams = [
            [
                make_request(0, range(4), cpu_per_chunk=0.001, name="first"),
                make_request(1, range(4, 8), cpu_per_chunk=0.001, name="second"),
            ]
        ]
        abm = make_nsm_abm(nsm_layout, small_config, "normal")
        result = run_simulation(streams, small_config, abm)
        by_name = {query.name: query for query in result.queries}
        assert by_name["second"].arrival_time == pytest.approx(
            by_name["first"].finish_time
        )

    def test_stream_results_cover_all_streams(self, nsm_layout, small_config):
        streams = [
            [make_request(0, range(4), cpu_per_chunk=0.001)],
            [make_request(1, range(2, 6), cpu_per_chunk=0.001)],
        ]
        abm = make_nsm_abm(nsm_layout, small_config, "relevance")
        result = run_simulation(streams, small_config, abm)
        assert len(result.streams) == 2
        assert result.total_time >= max(stream.finish_time for stream in result.streams) - 1e-9
        assert result.average_stream_time > 0

    def test_cpu_utilisation_bounded(self, nsm_layout, small_config):
        streams = [
            [make_request(i, range(16), cpu_per_chunk=0.01)] for i in range(4)
        ]
        abm = make_nsm_abm(nsm_layout, small_config, "relevance")
        result = run_simulation(streams, small_config, abm)
        assert 0.0 < result.cpu_utilisation <= 1.0

    def test_trace_recording(self, nsm_layout, small_config):
        spec = make_request(0, range(8), cpu_per_chunk=0.001)
        abm = make_nsm_abm(nsm_layout, small_config, "normal")
        result = run_simulation([[spec]], small_config, abm, record_trace=True)
        assert result.trace is not None
        assert len(result.trace) == result.io_requests
        assert result.trace.sequential_fraction() == pytest.approx(1.0)

    def test_rejects_empty_workload(self, nsm_layout, small_config):
        abm = make_nsm_abm(nsm_layout, small_config, "normal")
        with pytest.raises(SimulationError):
            ScanSimulator([[]], small_config, abm)

    def test_rejects_duplicate_query_ids(self, nsm_layout, small_config):
        abm = make_nsm_abm(nsm_layout, small_config, "normal")
        streams = [[make_request(0, range(2))], [make_request(0, range(2))]]
        with pytest.raises(SimulationError):
            ScanSimulator(streams, small_config, abm)


class TestSharingBehaviour:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_every_policy_completes_concurrent_workload(
        self, nsm_layout, small_config, policy
    ):
        streams = [
            [make_request(0, range(0, 20), cpu_per_chunk=0.002, name="A")],
            [make_request(1, range(10, 30), cpu_per_chunk=0.004, name="B")],
            [make_request(2, range(5, 15), cpu_per_chunk=0.002, name="C")],
        ]
        abm = make_nsm_abm(nsm_layout, small_config, policy)
        result = run_simulation(streams, small_config, abm)
        assert len(result.queries) == 3
        for query in result.queries:
            assert sorted(query.delivery_order) == sorted(
                streams[query.stream][0].chunks
            )

    def test_identical_concurrent_queries_share_loads(self, nsm_layout, small_config):
        config = small_config
        streams = [
            [make_request(i, range(16), cpu_per_chunk=0.002)] for i in range(4)
        ]
        from dataclasses import replace

        config = replace(config, stream_start_delay_s=0.0)
        abm = make_nsm_abm(nsm_layout, config, "relevance")
        result = run_simulation(streams, config, abm)
        # Four identical queries arriving together: near-perfect sharing.
        assert result.io_requests <= 16 + 4

    def test_relevance_never_issues_more_ios_than_normal(
        self, nsm_layout, small_config
    ):
        def build_streams():
            return [
                [make_request(0, range(0, 24), cpu_per_chunk=0.003, name="A")],
                [make_request(1, range(8, 32), cpu_per_chunk=0.006, name="B")],
                [make_request(2, range(0, 8), cpu_per_chunk=0.003, name="C")],
                [make_request(3, range(16, 28), cpu_per_chunk=0.006, name="D")],
            ]

        normal = run_simulation(
            build_streams(), small_config, make_nsm_abm(nsm_layout, small_config, "normal")
        )
        relevance = run_simulation(
            build_streams(),
            small_config,
            make_nsm_abm(nsm_layout, small_config, "relevance"),
        )
        assert relevance.io_requests <= normal.io_requests

    def test_run_standalone_uses_fresh_buffer(self, nsm_layout, small_config):
        spec = make_request(0, range(8), cpu_per_chunk=0.001)
        factory = nsm_abm_factory(nsm_layout, small_config, "normal", prefetch=False)
        first = run_standalone(spec, small_config, factory)
        second = run_standalone(spec, small_config, factory)
        assert first == pytest.approx(second)
        # Synchronous standalone time is roughly chunks * (io + cpu).
        expected = 8 * (small_config.chunk_load_time() + 0.001)
        assert first == pytest.approx(expected, rel=0.25)


class TestDSMSimulation:
    def test_dsm_run_completes_and_counts_pages(self, dsm_layout, small_config):
        streams = [
            [make_request(0, range(0, 10), columns=("key", "price"), cpu_per_chunk=0.002)],
            [make_request(1, range(5, 15), columns=("price", "flag"), cpu_per_chunk=0.002)],
        ]
        abm = make_dsm_abm(dsm_layout, small_config, "relevance", capacity_pages=400)
        result = run_simulation(streams, small_config, abm, record_trace=True)
        assert len(result.queries) == 2
        assert result.io_requests > 0
        assert result.bytes_read > 0
        # Column traces carry the column name.
        assert any(event.column is not None for event in result.trace)
