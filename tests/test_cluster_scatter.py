"""Scatter/gather behaviour of the cluster layer.

Covers the shard-map geometry and planner (single-shard, all-shard and
skewed chunk sets, both placements, local-id translation), the coordinator's
gather logic when sub-queries finish out of shard order, front-queue gating
(a query frees its MPL slot only when its *last* sub-query completes), and
the construction-time validation of mismatched shard tables.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterCoordinator, ShardMap, run_cluster_service
from repro.cluster.coordinator import ClusterQueryRecord
from repro.common.config import ClusterConfig, ServiceConfig
from repro.common.errors import ConfigurationError, SimulationError
from repro.service.admission import AdmissionController
from repro.service.arrivals import Arrival
from repro.sim.setup import make_nsm_abm
from repro.storage.nsm import NSMTableLayout

from tests.conftest import make_request


class TestShardMapGeometry:
    def test_range_placement_partitions_contiguously(self):
        shard_map = ShardMap(num_chunks=8, num_shards=2, placement="range")
        assert shard_map.chunks_on(0) == [0, 1, 2, 3]
        assert shard_map.chunks_on(1) == [4, 5, 6, 7]
        assert shard_map.shard_sizes == (4, 4)

    def test_range_placement_local_ids_start_at_zero(self):
        shard_map = ShardMap(num_chunks=8, num_shards=2, placement="range")
        assert [shard_map.local_chunk(chunk) for chunk in (4, 5, 6, 7)] == [0, 1, 2, 3]

    def test_striped_placement_round_robins(self):
        shard_map = ShardMap(num_chunks=6, num_shards=2, placement="striped")
        assert shard_map.chunks_on(0) == [0, 2, 4]
        assert shard_map.chunks_on(1) == [1, 3, 5]
        assert shard_map.local_chunk(5) == 2

    def test_uneven_range_last_shard_short(self):
        shard_map = ShardMap(num_chunks=10, num_shards=4, placement="range")
        assert shard_map.shard_sizes == (3, 3, 3, 1)
        assert sum(shard_map.shard_sizes) == 10

    def test_rejects_unknown_placement(self):
        with pytest.raises(ConfigurationError):
            ShardMap(num_chunks=8, num_shards=2, placement="hashed")

    def test_rejects_empty_shards(self):
        # More shards than chunks can never work...
        with pytest.raises(ConfigurationError, match="at least"):
            ShardMap(num_chunks=4, num_shards=8, placement="range")
        # ...and range placement's ceil-division can starve trailing shards
        # even with shards <= chunks (10 across 6 leaves shard 5 empty).
        with pytest.raises(ConfigurationError, match="no chunks"):
            ShardMap(num_chunks=10, num_shards=6, placement="range")
        # The same split works striped, where every shard keeps >= 1 chunk.
        assert ShardMap(10, 6, "striped").shard_sizes == (2, 2, 2, 2, 1, 1)

    def test_validate_shard_tables(self):
        shard_map = ShardMap(num_chunks=8, num_shards=2, placement="range")
        shard_map.validate_shard_tables((4, 4))
        with pytest.raises(ConfigurationError):
            shard_map.validate_shard_tables((4, 5))
        with pytest.raises(ConfigurationError):
            shard_map.validate_shard_tables((4, 4, 4))


class TestPlanning:
    def test_single_shard_query_yields_identical_subquery(self):
        shard_map = ShardMap(num_chunks=8, num_shards=2, placement="range")
        spec = make_request(1, [0, 1, 2], cpu_per_chunk=0.5, columns=("a", "b"))
        plan = shard_map.plan(spec)
        assert list(plan) == [0]
        assert plan[0] == spec  # same chunks, columns, cpu, id, name

    def test_all_shards_query_splits_everywhere(self):
        shard_map = ShardMap(num_chunks=8, num_shards=4, placement="range")
        spec = make_request(2, range(8))
        plan = shard_map.plan(spec)
        assert list(plan) == [0, 1, 2, 3]
        for shard, sub in plan.items():
            assert sub.chunks == (0, 1)
            assert sub.query_id == 2

    def test_skewed_range_splits_unevenly(self):
        shard_map = ShardMap(num_chunks=8, num_shards=2, placement="range")
        spec = make_request(3, [3, 4, 5, 6, 7])
        plan = shard_map.plan(spec)
        assert plan[0].chunks == (3,)
        assert plan[1].chunks == (0, 1, 2, 3)

    def test_striped_plan_translates_to_local_ids(self):
        shard_map = ShardMap(num_chunks=6, num_shards=2, placement="striped")
        spec = make_request(4, [1, 2, 3, 5])
        plan = shard_map.plan(spec)
        assert plan[0].chunks == (1,)        # global 2 -> local 1
        assert plan[1].chunks == (0, 1, 2)   # globals 1, 3, 5
        assert shard_map.shards_of(spec) == (0, 1)

    def test_one_shard_map_is_identity(self):
        shard_map = ShardMap(num_chunks=8, num_shards=1, placement="range")
        spec = make_request(5, [2, 5, 7])
        assert shard_map.plan(spec) == {0: spec}


def _coordinator(specs_and_times, max_concurrent=1, num_chunks=8, shards=2):
    shard_map = ShardMap(num_chunks=num_chunks, num_shards=shards, placement="range")
    arrivals = [Arrival(time=time, spec=spec) for time, spec in specs_and_times]
    admission = AdmissionController(ServiceConfig(max_concurrent=max_concurrent))
    return ClusterCoordinator(arrivals, shard_map, admission), admission


class TestGatherOrdering:
    def test_out_of_shard_order_completion(self):
        """The gather must wait for the *last* sub-query, whichever shard
        finishes first, and only then release the front-door slot."""
        first = make_request(0, range(8))   # touches both shards
        second = make_request(1, [0, 1])    # shard 0 only, queued behind
        coordinator, admission = _coordinator([(0.0, first), (0.1, second)])

        coordinator.pump(0.0)  # the event loop pumps at each arrival's time
        assert [a.spec.query_id for a in coordinator.take_pending(0, 0.0)] == [0]
        assert [a.spec.query_id for a in coordinator.take_pending(1, 0.0)] == [0]
        coordinator.pump(0.1)  # second arrival: MPL slot taken, it queues
        assert admission.active == 1 and admission.queue_len == 1

        # Shard 1 (the higher shard) finishes first: nothing is gathered yet.
        assert coordinator.complete_subquery(1, 0, 1.0) == []
        assert coordinator.records == []
        assert not coordinator.drained()

        # Shard 0 finishes last: the query completes at *this* time, the
        # queued query is admitted and its shard-0 piece starts directly.
        released = coordinator.complete_subquery(0, 0, 2.5)
        assert [a.spec.query_id for a in released] == [1]
        (record,) = coordinator.records
        assert record.finish_time == 2.5
        assert record.shards == (0, 1)
        assert record.queue_wait == 0.0
        assert coordinator.drained()

    def test_release_scatters_to_other_shards_via_pending(self):
        first = make_request(0, [0, 1])      # shard 0 only
        second = make_request(1, [4, 5])     # shard 1 only
        coordinator, admission = _coordinator([(0.0, first), (0.0, second)])

        coordinator.pump(0.0)
        assert coordinator.take_pending(0, 0.0)
        # Completing on shard 0 releases query 1, which belongs to shard 1:
        # nothing starts on shard 0, the sub-query waits in shard 1's buffer.
        assert coordinator.complete_subquery(0, 0, 1.0) == []
        assert coordinator.has_pending(1)
        (admitted,) = coordinator.take_pending(1, 1.0)
        assert admitted.spec.query_id == 1
        # It keeps its original submission time, so its eventual record
        # will charge the 1.0 s spent waiting for query 0's slot as queue
        # wait; query 0 itself never queued.
        assert admitted.submit_time == 0.0
        (record,) = coordinator.records
        assert record.query_id == 0
        assert record.queue_wait == 0.0

    def test_unknown_completion_rejected(self):
        spec = make_request(0, [0, 1])
        coordinator, _ = _coordinator([(0.0, spec)])
        coordinator.pump(0.0)
        with pytest.raises(SimulationError):
            coordinator.complete_subquery(0, 99, 1.0)
        with pytest.raises(SimulationError):
            coordinator.complete_subquery(1, 0, 1.0)  # shard it never touched

    def test_rejects_unsorted_and_duplicate_arrivals(self):
        spec_a = make_request(0, [0])
        spec_b = make_request(0, [1])
        with pytest.raises(SimulationError):
            _coordinator([(1.0, spec_a), (0.5, make_request(1, [1]))])
        with pytest.raises(SimulationError):
            _coordinator([(0.0, spec_a), (1.0, spec_b)])

    def test_descending_shard_order_gather(self):
        """Sub-queries completing from the highest shard down still gather
        at the last completion, on a fleet wider than two."""
        spec = make_request(0, range(8))
        coordinator, _ = _coordinator([(0.0, spec)], shards=4)
        coordinator.pump(0.0)
        for shard in (3, 2, 1):
            assert coordinator.complete_subquery(shard, 0, float(4 - shard)) == []
            assert coordinator.records == []
        coordinator.complete_subquery(0, 0, 9.0)
        (record,) = coordinator.records
        assert record.finish_time == 9.0
        assert record.shards == (0, 1, 2, 3)
        assert record.num_subqueries == 4

    def test_zero_subquery_plan_rejected(self):
        spec = make_request(0, [0, 1])
        coordinator, _ = _coordinator([(0.0, spec)])

        class EmptyPlanner:
            num_shards = coordinator.shard_map.num_shards

            def plan(self, _spec):
                return {}

        coordinator.shard_map = EmptyPlanner()
        with pytest.raises(SimulationError, match="zero sub-queries"):
            coordinator.pump(0.0)

    def test_take_pending_after_drain_is_empty(self):
        spec = make_request(0, [0, 1])
        coordinator, _ = _coordinator([(0.0, spec)])
        coordinator.pump(0.0)
        assert [a.spec.query_id for a in coordinator.take_pending(0, 0.0)] == [0]
        # Drained buffers stay drained: repeated takes return nothing, on
        # the owning shard and on shards that never had a piece.
        assert coordinator.take_pending(0, 5.0) == []
        assert coordinator.take_pending(1, 5.0) == []
        assert not coordinator.has_pending(0)
        assert coordinator.pending_head_time(0) is None
        assert coordinator.earliest_in_flight() is None
        coordinator.complete_subquery(0, 0, 1.0)
        assert coordinator.drained()
        assert coordinator.take_pending(0, 10.0) == []

    def test_take_pending_respects_release_times(self):
        spec_a = make_request(0, [0, 1])
        spec_b = make_request(1, [0, 1])
        coordinator, _ = _coordinator(
            [(0.0, spec_a), (0.5, spec_b)], max_concurrent=2
        )
        coordinator.pump(0.0)
        coordinator.pump(0.5)
        # Polling at a time before the second release leaves it buffered.
        assert len(coordinator.take_pending(0, 0.0)) == 1
        assert coordinator.has_pending(0)
        assert coordinator.pending_head_time(0) == 0.5
        assert coordinator.earliest_in_flight() == 0.5
        assert len(coordinator.take_pending(0, 0.5)) == 1


class TestClusterQueryRecordProperties:
    def _record(self, submit=1.0, admit=2.0, finish=5.0, shards=(0, 1)):
        return ClusterQueryRecord(
            query_id=7,
            name="q7",
            submit_time=submit,
            admit_time=admit,
            finish_time=finish,
            num_chunks=8,
            shards=tuple(shards),
        )

    def test_latency_decomposition(self):
        record = self._record()
        assert record.queue_wait == 1.0
        assert record.execution_latency == 3.0
        assert record.end_to_end_latency == 4.0
        assert record.end_to_end_latency == (
            record.queue_wait + record.execution_latency
        )

    def test_queue_wait_clamps_clock_noise(self):
        # Front-door timestamps can tie (admit == submit) or carry float
        # noise fractionally below; the wait must never go negative.
        assert self._record(submit=2.0, admit=2.0).queue_wait == 0.0
        assert self._record(submit=2.0, admit=2.0 - 1e-12).queue_wait == 0.0

    def test_zero_duration_query(self):
        record = self._record(submit=3.0, admit=3.0, finish=3.0)
        assert record.queue_wait == 0.0
        assert record.execution_latency == 0.0
        assert record.end_to_end_latency == 0.0

    def test_subquery_count_tracks_shards(self):
        assert self._record(shards=(2,)).num_subqueries == 1
        assert self._record(shards=(0, 1, 3)).num_subqueries == 3
        assert self._record(shards=()).num_subqueries == 0


class TestClusterRuns:
    def _run(self, tiny_schema, config, arrival_specs, shards=2, num_chunks=8):
        cluster = ClusterConfig(shards=shards, mpl_per_shard=2)
        shard_map = ShardMap.from_cluster_config(cluster, num_chunks)
        tuples_per_chunk = config.buffer.chunk_bytes // 32
        abms = [
            make_nsm_abm(
                NSMTableLayout.from_buffer_config(
                    tiny_schema,
                    shard_map.chunks_owned(shard) * tuples_per_chunk,
                    config.buffer,
                ),
                config,
                "relevance",
                capacity_chunks=4,
            )
            for shard in range(shards)
        ]
        arrivals = [Arrival(time=time, spec=spec) for time, spec in arrival_specs]
        return run_cluster_service(arrivals, config, abms, cluster)

    def test_gathered_finish_is_slowest_subquery(self, tiny_schema, small_config):
        # One query over everything plus shard-0-only traffic that keeps
        # shard 0 busier, so the big query's sub-queries finish at
        # different times on the two shards.
        specs = [
            (0.0, make_request(0, range(8), cpu_per_chunk=0.01)),
            (0.0, make_request(1, [0, 1, 2, 3], cpu_per_chunk=0.05)),
            (0.0, make_request(2, [0, 1, 2, 3], cpu_per_chunk=0.05)),
        ]
        result = self._run(tiny_schema, small_config, specs)
        record = next(r for r in result.records if r.query_id == 0)
        finishes = {
            shard: query.finish_time
            for shard, run in enumerate(result.shard_runs)
            for query in run.queries
            if query.query_id == 0
        }
        assert len(finishes) == 2
        assert record.finish_time == max(finishes.values())
        assert record.finish_time > min(finishes.values())

    def test_single_shard_query_runs_on_one_shard_only(
        self, tiny_schema, small_config
    ):
        specs = [(0.0, make_request(0, [4, 5, 6, 7], cpu_per_chunk=0.01))]
        result = self._run(tiny_schema, small_config, specs)
        assert [query.query_id for query in result.shard_runs[1].queries] == [0]
        assert result.shard_runs[0].queries == []
        (record,) = result.records
        assert record.shards == (1,)
        assert record.num_subqueries == 1
        # The idle shard is probed only while the front door is still live
        # (one pre-drain round here); the lockstep driver skips finished
        # simulators afterwards, so its policy-call count stays bounded
        # instead of growing with every cluster round.
        assert result.shard_runs[0].scheduling_calls <= 1
        assert result.shard_runs[1].scheduling_calls > 1

    def test_chunks_conserved_across_shards(self, tiny_schema, small_config):
        specs = [
            (0.0, make_request(0, range(8), cpu_per_chunk=0.01)),
            (0.2, make_request(1, [2, 3, 4, 5], cpu_per_chunk=0.01)),
        ]
        result = self._run(tiny_schema, small_config, specs)
        for record in result.records:
            scanned = sum(
                query.chunks
                for run in result.shard_runs
                for query in run.queries
                if query.query_id == record.query_id
            )
            assert scanned == record.num_chunks

    def test_mismatched_shard_tables_rejected(self, tiny_schema, small_config):
        cluster = ClusterConfig(shards=2, mpl_per_shard=2)
        tuples_per_chunk = small_config.buffer.chunk_bytes // 32
        bad_abms = [
            make_nsm_abm(
                NSMTableLayout.from_buffer_config(
                    tiny_schema, 8 * tuples_per_chunk, small_config.buffer
                ),
                small_config,
                "relevance",
            )
            for _ in range(2)
        ]
        arrivals = [Arrival(time=0.0, spec=make_request(0, [0]))]
        with pytest.raises(ConfigurationError):
            run_cluster_service(
                arrivals, small_config, bad_abms, cluster, num_chunks=8
            )
