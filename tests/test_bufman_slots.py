"""Tests for the ABM chunk-slot and DSM block pools."""

import pytest

from repro.bufman.slots import ChunkSlotPool, DSMBlockPool
from repro.common.errors import BufferPoolError


class TestChunkSlotPool:
    def test_load_lifecycle(self):
        pool = ChunkSlotPool(capacity=2)
        pool.start_load(5)
        assert pool.is_loading(5)
        assert 5 not in pool
        slot = pool.complete_load(5, now=1.0)
        assert slot.chunk == 5
        assert 5 in pool
        assert pool.loads_completed == 1

    def test_capacity_counts_inflight_loads(self):
        pool = ChunkSlotPool(capacity=2)
        pool.start_load(0)
        pool.start_load(1)
        assert not pool.has_free_slot()
        with pytest.raises(BufferPoolError):
            pool.start_load(2)

    def test_double_load_raises(self):
        pool = ChunkSlotPool(capacity=2)
        pool.start_load(0)
        with pytest.raises(BufferPoolError):
            pool.start_load(0)
        pool.complete_load(0, now=0.0)
        with pytest.raises(BufferPoolError):
            pool.start_load(0)

    def test_cancel_load(self):
        pool = ChunkSlotPool(capacity=1)
        pool.start_load(0)
        pool.cancel_load(0)
        assert pool.has_free_slot()
        with pytest.raises(BufferPoolError):
            pool.cancel_load(0)

    def test_pin_prevents_eviction(self):
        pool = ChunkSlotPool(capacity=2)
        pool.start_load(0)
        pool.complete_load(0, now=0.0)
        pool.pin(0, now=1.0)
        with pytest.raises(BufferPoolError):
            pool.evict(0)
        pool.unpin(0, now=2.0)
        pool.evict(0)
        assert 0 not in pool
        assert pool.evictions == 1

    def test_unpin_without_pin_raises(self):
        pool = ChunkSlotPool(capacity=1)
        pool.start_load(0)
        pool.complete_load(0, now=0.0)
        with pytest.raises(BufferPoolError):
            pool.unpin(0, now=0.0)

    def test_unpinned_chunks(self):
        pool = ChunkSlotPool(capacity=3)
        for chunk in range(3):
            pool.start_load(chunk)
            pool.complete_load(chunk, now=float(chunk))
        pool.pin(1, now=5.0)
        assert sorted(pool.unpinned_chunks()) == [0, 2]

    def test_last_used_updates_on_pin_unpin(self):
        pool = ChunkSlotPool(capacity=1)
        pool.start_load(0)
        slot = pool.complete_load(0, now=0.0)
        pool.pin(0, now=3.0)
        assert slot.last_used == 3.0
        pool.unpin(0, now=7.0)
        assert slot.last_used == 7.0

    def test_reset(self):
        pool = ChunkSlotPool(capacity=2)
        pool.start_load(0)
        pool.complete_load(0, now=0.0)
        pool.reset()
        assert len(pool) == 0
        assert pool.loads_completed == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(BufferPoolError):
            ChunkSlotPool(capacity=0)


class TestDSMBlockPool:
    def test_load_lifecycle_and_page_accounting(self):
        pool = DSMBlockPool(capacity_pages=100)
        pool.start_load((0, "a"), pages=30)
        assert pool.used_pages() == 30
        pool.complete_load((0, "a"), now=1.0)
        assert pool.used_pages() == 30
        assert pool.has_block(0, "a")
        assert pool.free_pages() == 70

    def test_start_load_over_capacity_raises(self):
        pool = DSMBlockPool(capacity_pages=10)
        with pytest.raises(BufferPoolError):
            pool.start_load((0, "a"), pages=11)

    def test_eviction_returns_pages(self):
        pool = DSMBlockPool(capacity_pages=100)
        pool.start_load((0, "a"), pages=40)
        pool.complete_load((0, "a"), now=0.0)
        freed = pool.evict((0, "a"))
        assert freed == 40
        assert pool.used_pages() == 0
        assert pool.evictions == 1

    def test_pinned_block_cannot_be_evicted(self):
        pool = DSMBlockPool(capacity_pages=100)
        pool.start_load((0, "a"), pages=10)
        pool.complete_load((0, "a"), now=0.0)
        pool.pin((0, "a"), now=1.0)
        with pytest.raises(BufferPoolError):
            pool.evict((0, "a"))
        pool.unpin((0, "a"), now=2.0)
        pool.evict((0, "a"))

    def test_reserved_chunk_blocks_eviction(self):
        pool = DSMBlockPool(capacity_pages=100)
        pool.start_load((3, "a"), pages=10)
        pool.complete_load((3, "a"), now=0.0)
        pool.reserve_chunk(3)
        assert pool.is_reserved(3)
        with pytest.raises(BufferPoolError):
            pool.evict((3, "a"))
        pool.release_chunk(3)
        pool.evict((3, "a"))

    def test_reservation_counts_nest(self):
        pool = DSMBlockPool(capacity_pages=10)
        pool.reserve_chunk(1)
        pool.reserve_chunk(1)
        pool.release_chunk(1)
        assert pool.is_reserved(1)
        pool.release_chunk(1)
        assert not pool.is_reserved(1)
        with pytest.raises(BufferPoolError):
            pool.release_chunk(1)

    def test_chunk_cached_pages(self):
        pool = DSMBlockPool(capacity_pages=100)
        for column, pages in (("a", 10), ("b", 20)):
            pool.start_load((0, column), pages=pages)
            pool.complete_load((0, column), now=0.0)
        assert pool.chunk_cached_pages(0) == 30
        assert pool.chunk_cached_pages(0, ["a"]) == 10
        assert pool.chunk_cached_pages(1) == 0

    def test_buffered_chunks_and_blocks_of_chunk(self):
        pool = DSMBlockPool(capacity_pages=100)
        pool.start_load((0, "a"), pages=5)
        pool.complete_load((0, "a"), now=0.0)
        pool.start_load((2, "b"), pages=5)
        pool.complete_load((2, "b"), now=0.0)
        assert pool.buffered_chunks() == {0, 2}
        assert [block.column for block in pool.blocks_of_chunk(0)] == ["a"]

    def test_double_load_raises(self):
        pool = DSMBlockPool(capacity_pages=100)
        pool.start_load((0, "a"), pages=5)
        with pytest.raises(BufferPoolError):
            pool.start_load((0, "a"), pages=5)

    def test_zero_page_load_rejected(self):
        pool = DSMBlockPool(capacity_pages=100)
        with pytest.raises(BufferPoolError):
            pool.start_load((0, "a"), pages=0)

    def test_reset(self):
        pool = DSMBlockPool(capacity_pages=100)
        pool.start_load((0, "a"), pages=5)
        pool.complete_load((0, "a"), now=0.0)
        pool.reserve_chunk(0)
        pool.reset()
        assert pool.used_pages() == 0
        assert not pool.is_reserved(0)
        assert len(pool) == 0
