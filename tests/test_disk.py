"""Tests for the disk model, I/O requests and traces."""

import pytest

from repro.common.config import DiskConfig
from repro.common.errors import SimulationError
from repro.common.units import MB
from repro.disk.model import DiskModel
from repro.disk.request import IORequest, RequestKind
from repro.disk.trace import IOTrace


class TestIORequest:
    def test_valid_request(self):
        request = IORequest(chunk=3, num_bytes=16 * MB)
        assert request.kind is RequestKind.NSM_CHUNK
        assert not request.is_column_block

    def test_column_block_flag(self):
        request = IORequest(
            chunk=0, num_bytes=1024, kind=RequestKind.DSM_COLUMN_BLOCK, column="a"
        )
        assert request.is_column_block

    def test_rejects_negative_chunk(self):
        with pytest.raises(ValueError):
            IORequest(chunk=-1, num_bytes=10)

    def test_rejects_zero_bytes(self):
        with pytest.raises(ValueError):
            IORequest(chunk=0, num_bytes=0)


class TestDiskModel:
    def make_disk(self) -> DiskModel:
        return DiskModel(
            DiskConfig(bandwidth_bytes_per_s=100 * MB, avg_seek_s=0.01, sequential_seek_s=0.001)
        )

    def test_service_time_transfer_component(self):
        disk = self.make_disk()
        duration = disk.service_time(IORequest(chunk=0, num_bytes=100 * MB))
        assert duration == pytest.approx(1.0 + 0.01)

    def test_sequential_access_cheaper(self):
        disk = self.make_disk()
        disk.serve(IORequest(chunk=4, num_bytes=MB))
        sequential = disk.service_time(IORequest(chunk=5, num_bytes=MB))
        random = disk.service_time(IORequest(chunk=9, num_bytes=MB))
        assert sequential < random

    def test_same_chunk_reread_is_sequential(self):
        # Back-to-back requests for the *same* chunk (consecutive DSM column
        # blocks of one logical chunk) leave the head in place: they must pay
        # the track-to-track cost, not a full average seek.
        disk = self.make_disk()
        disk.serve(IORequest(chunk=4, num_bytes=MB))
        same = disk.service_time(IORequest(chunk=4, num_bytes=MB))
        assert same == pytest.approx(0.001 + MB / (100 * MB))
        assert disk.is_sequential(4) and disk.is_sequential(5)
        assert not disk.is_sequential(6) and not disk.is_sequential(3)

    def test_first_request_pays_full_seek(self):
        disk = self.make_disk()
        assert not disk.is_sequential(0)
        duration = disk.service_time(IORequest(chunk=0, num_bytes=MB))
        assert duration == pytest.approx(0.01 + MB / (100 * MB))

    def test_sequential_requests_counter(self):
        disk = self.make_disk()
        for chunk in (0, 1, 1, 5, 6):  # seq: 1 (next), 1 (same), 6 (next)
            disk.serve(IORequest(chunk=chunk, num_bytes=MB))
        assert disk.requests_served == 5
        assert disk.sequential_requests == 3
        assert disk.sequential_fraction() == pytest.approx(3 / 5)

    def test_serve_accumulates_statistics(self):
        disk = self.make_disk()
        disk.serve(IORequest(chunk=0, num_bytes=MB))
        disk.serve(IORequest(chunk=1, num_bytes=MB))
        assert disk.requests_served == 2
        assert disk.bytes_transferred == 2 * MB
        assert disk.busy_time > 0

    def test_reset(self):
        disk = self.make_disk()
        disk.serve(IORequest(chunk=0, num_bytes=MB))
        disk.reset()
        assert disk.requests_served == 0
        assert disk.last_chunk is None

    def test_utilisation_bounded(self):
        disk = self.make_disk()
        disk.serve(IORequest(chunk=0, num_bytes=MB))
        assert 0.0 < disk.utilisation(elapsed=100.0) <= 1.0
        assert disk.utilisation(elapsed=0.0) == 0.0

    def test_utilisation_overshoot_raises_instead_of_clamping(self):
        # Busy time beyond the elapsed wall clock means the caller
        # double-counted service time; the old silent clamp to 1.0 hid that.
        disk = self.make_disk()
        disk.serve(IORequest(chunk=0, num_bytes=100 * MB))  # ~1.01 s busy
        with pytest.raises(SimulationError):
            disk.utilisation(elapsed=0.5)

    def test_utilisation_tolerates_float_noise(self):
        disk = self.make_disk()
        disk.serve(IORequest(chunk=0, num_bytes=100 * MB))
        elapsed = disk.busy_time * (1.0 - 1e-12)
        assert disk.utilisation(elapsed) == pytest.approx(1.0)

    def test_achieved_bandwidth(self):
        disk = self.make_disk()
        assert disk.achieved_bandwidth() == 0.0
        disk.serve(IORequest(chunk=0, num_bytes=100 * MB))
        assert disk.achieved_bandwidth() == pytest.approx(100 * MB / 1.01, rel=0.01)


class TestIOTrace:
    def build_trace(self) -> IOTrace:
        trace = IOTrace()
        for index, chunk in enumerate([0, 1, 2, 10, 11, 3, 0]):
            trace.record(time=float(index), chunk=chunk, num_bytes=MB, triggered_by=1)
        return trace

    def test_len_and_total_bytes(self):
        trace = self.build_trace()
        assert len(trace) == 7
        assert trace.total_bytes == 7 * MB

    def test_series(self):
        times, chunks = self.build_trace().series()
        assert times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        assert chunks == [0, 1, 2, 10, 11, 3, 0]

    def test_sequential_fraction(self):
        trace = self.build_trace()
        # transitions: 0->1 seq, 1->2 seq, 2->10 no, 10->11 seq, 11->3 no, 3->0 no
        assert trace.sequential_fraction() == pytest.approx(3 / 6)

    def test_empty_trace(self):
        trace = IOTrace()
        assert trace.sequential_fraction() == 1.0
        assert trace.duration == 0.0
        assert trace.render_ascii(10) == "(empty trace)"

    def test_distinct_and_rereads(self):
        trace = self.build_trace()
        assert trace.distinct_chunks() == 6
        assert trace.reread_count() == 1

    def test_concurrent_fronts_single_scan(self):
        trace = IOTrace()
        for index in range(32):
            trace.record(time=float(index), chunk=index, num_bytes=MB)
        assert trace.concurrent_fronts(window=8) == pytest.approx(1.0)

    def test_concurrent_fronts_interleaved_scans(self):
        trace = IOTrace()
        time = 0.0
        for index in range(16):
            trace.record(time=time, chunk=index, num_bytes=MB)
            time += 1.0
            trace.record(time=time, chunk=100 + index, num_bytes=MB)
            time += 1.0
        assert trace.concurrent_fronts(window=8) > 2.0

    def test_render_ascii_dimensions(self):
        art = self.build_trace().render_ascii(num_chunks=12, width=40, height=10)
        lines = art.splitlines()
        assert len(lines) == 11  # header + 10 rows
        assert all(len(line) == 40 for line in lines[1:])
