"""Golden-trace equivalence: a 1-shard cluster IS the single-node service.

The cluster layer (front admission queue, scatter-gather coordinator,
lockstep multi-simulator driver) must add no behaviour of its own: with one
shard, every query becomes exactly one sub-query identical to itself, and
the whole stack must reproduce :func:`repro.service.run_service` bit for
bit — same scheduling decisions, same per-query timings and I/O trace
(compared via :func:`repro.sim.results.scheduling_fingerprint`) and the
same SLO report, across NSM/DSM, every policy, both admission disciplines
and a shedding (bounded-queue) configuration.

A multi-shard determinism check rides along: the same cluster run repeated
from fresh ABMs must reproduce itself exactly.
"""

from __future__ import annotations

import pytest

from repro.cluster import run_cluster_service
from repro.common.config import (
    AdaptiveMPLConfig,
    ClusterConfig,
    ServiceConfig,
    WorkloadClassConfig,
)
from repro.service import run_service
from repro.sim.results import scheduling_fingerprint as _fingerprint
from repro.sim.setup import make_dsm_abm, make_nsm_abm
from repro.storage.nsm import NSMTableLayout
from repro.workload.queries import QueryFamily, QueryTemplate
from repro.service.arrivals import poisson_arrivals

ARRIVAL_SEED = 97
NUM_QUERIES = 14
RATE_QPS = 0.9


def _nsm_templates():
    fast = QueryFamily("F", cpu_per_chunk=0.002)
    slow = QueryFamily("S", cpu_per_chunk=0.02)
    return [
        QueryTemplate(fast, 10),
        QueryTemplate(fast, 50),
        QueryTemplate(slow, 100),
    ]


def _dsm_templates():
    narrow = QueryFamily("F", cpu_per_chunk=0.002, columns=("key", "price"))
    wide = QueryFamily("S", cpu_per_chunk=0.02, columns=("key", "ref", "date"))
    return [
        QueryTemplate(narrow, 10),
        QueryTemplate(wide, 50),
        QueryTemplate(wide, 100),
    ]


def _arrivals(templates, layout):
    return poisson_arrivals(
        templates, layout, RATE_QPS, NUM_QUERIES, seed=ARRIVAL_SEED
    )


def _cluster_of(service: ServiceConfig) -> ClusterConfig:
    return ClusterConfig(
        shards=1,
        mpl_per_shard=service.max_concurrent,
        queue_capacity=service.queue_capacity,
        discipline=service.discipline,
        classes=service.classes,
        adaptive=service.adaptive,
    )


def _assert_equivalent(single, clustered):
    assert len(clustered.shard_runs) == 1
    assert _fingerprint(single.run) == _fingerprint(clustered.shard_runs[0])
    assert single.slo == clustered.slo
    # The gathered records agree with the single-simulator per-query results.
    by_id = {query.query_id: query for query in single.run.queries}
    assert sorted(by_id) == [record.query_id for record in clustered.records]
    for record in clustered.records:
        query = by_id[record.query_id]
        assert record.finish_time == query.finish_time
        assert record.admit_time == query.arrival_time
        assert record.submit_time == query.submit_time
        assert record.loads_triggered == query.loads_triggered
        assert record.shards == (0,)


class TestOneShardEquivalenceNSM:
    @pytest.mark.parametrize("policy", ["normal", "attach", "elevator", "relevance"])
    def test_policies_bit_for_bit(self, nsm_layout, small_config, policy):
        arrivals = _arrivals(_nsm_templates(), nsm_layout)
        service = ServiceConfig(max_concurrent=4, queue_capacity=64)
        single = run_service(
            arrivals,
            small_config,
            make_nsm_abm(nsm_layout, small_config, policy, capacity_chunks=8),
            service,
            record_trace=True,
        )
        clustered = run_cluster_service(
            arrivals,
            small_config,
            [make_nsm_abm(nsm_layout, small_config, policy, capacity_chunks=8)],
            _cluster_of(service),
            record_trace=True,
        )
        _assert_equivalent(single, clustered)

    @pytest.mark.parametrize(
        "service",
        [
            ServiceConfig(max_concurrent=2, queue_capacity=3),  # sheds overload
            ServiceConfig(max_concurrent=3, discipline="sjf"),
        ],
        ids=["bounded-queue", "sjf"],
    )
    def test_admission_variants_bit_for_bit(self, nsm_layout, small_config, service):
        arrivals = _arrivals(_nsm_templates(), nsm_layout)
        single = run_service(
            arrivals,
            small_config,
            make_nsm_abm(nsm_layout, small_config, "relevance", capacity_chunks=8),
            service,
            record_trace=True,
        )
        clustered = run_cluster_service(
            arrivals,
            small_config,
            [make_nsm_abm(nsm_layout, small_config, "relevance", capacity_chunks=8)],
            _cluster_of(service),
            record_trace=True,
        )
        assert _fingerprint(single.run) == _fingerprint(clustered.shard_runs[0])
        assert single.slo == clustered.slo
        assert clustered.slo.shed == single.slo.shed


class TestOneShardEquivalenceDSM:
    @pytest.mark.parametrize("policy", ["normal", "attach", "elevator", "relevance"])
    def test_policies_bit_for_bit(self, dsm_layout, small_config, policy):
        arrivals = _arrivals(_dsm_templates(), dsm_layout)
        service = ServiceConfig(max_concurrent=4, queue_capacity=64)
        capacity_pages = max(64, int(dsm_layout.table_pages() * 0.3))

        def abm():
            return make_dsm_abm(
                dsm_layout, small_config, policy, capacity_pages=capacity_pages
            )

        single = run_service(
            arrivals, small_config, abm(), service, record_trace=True
        )
        clustered = run_cluster_service(
            arrivals,
            small_config,
            [abm()],
            _cluster_of(service),
            record_trace=True,
        )
        _assert_equivalent(single, clustered)


class TestFrontDoorConfigEquivalence:
    """The unified front door adds no behaviour of its own: an explicit
    single-class FIFO config, the implicit classless config, and a frozen
    adaptive controller all reproduce the same run bit for bit, through
    both ``run_service`` and a 1-shard ``run_cluster_service``."""

    def _single(self, nsm_layout, small_config, service):
        return run_service(
            _arrivals(_nsm_templates(), nsm_layout),
            small_config,
            make_nsm_abm(nsm_layout, small_config, "relevance", capacity_chunks=8),
            service,
            record_trace=True,
        )

    def _clustered(self, nsm_layout, small_config, service):
        return run_cluster_service(
            _arrivals(_nsm_templates(), nsm_layout),
            small_config,
            [make_nsm_abm(nsm_layout, small_config, "relevance", capacity_chunks=8)],
            _cluster_of(service),
            record_trace=True,
        )

    def test_explicit_default_class_is_the_implicit_config(
        self, nsm_layout, small_config
    ):
        implicit = ServiceConfig(max_concurrent=3, queue_capacity=16)
        explicit = ServiceConfig(
            max_concurrent=3,
            queue_capacity=16,
            classes=(WorkloadClassConfig("default", weight=1.0),),
        )
        single_implicit = self._single(nsm_layout, small_config, implicit)
        single_explicit = self._single(nsm_layout, small_config, explicit)
        assert _fingerprint(single_implicit.run) == _fingerprint(
            single_explicit.run
        )
        assert single_implicit.slo == single_explicit.slo
        clustered_explicit = self._clustered(nsm_layout, small_config, explicit)
        assert _fingerprint(single_explicit.run) == _fingerprint(
            clustered_explicit.shard_runs[0]
        )
        assert single_explicit.slo == clustered_explicit.slo

    def test_class_slices_match_across_front_doors(
        self, nsm_layout, small_config
    ):
        service = ServiceConfig(max_concurrent=3)
        single = self._single(nsm_layout, small_config, service)
        clustered = self._clustered(nsm_layout, small_config, service)
        assert single.slo.classes == clustered.slo.classes
        (slice_,) = single.slo.classes
        assert slice_.query_class == "default"
        assert slice_.completed == single.slo.completed

    def test_adaptive_controller_equivalent_across_front_doors(
        self, nsm_layout, small_config
    ):
        service = ServiceConfig(
            max_concurrent=3,
            adaptive=AdaptiveMPLConfig(
                target_p95_s=30.0, min_mpl=1, max_mpl=8, adjust_every=2
            ),
        )
        single = self._single(nsm_layout, small_config, service)
        clustered = self._clustered(nsm_layout, small_config, service)
        assert _fingerprint(single.run) == _fingerprint(clustered.shard_runs[0])
        assert single.slo == clustered.slo
        assert single.mpl_timeline == clustered.mpl_timeline


class TestResilientDefaultsEquivalence:
    """``replicas=1`` with an empty failure schedule and no hedge policy is
    *not* resilient mode: it must take the legacy cluster path and
    reproduce today's results bit for bit (fingerprints and SLO reports),
    across layouts, policies and shard counts."""

    def _nsm_cluster(self, tiny_schema, small_config, cluster, policy):
        from repro.cluster import ShardMap

        num_chunks = 32
        shard_map = ShardMap.from_cluster_config(cluster, num_chunks)
        tuples_per_chunk = small_config.buffer.chunk_bytes // 32
        global_layout = NSMTableLayout.from_buffer_config(
            tiny_schema, num_chunks * tuples_per_chunk, small_config.buffer
        )
        abms = [
            make_nsm_abm(
                NSMTableLayout.from_buffer_config(
                    tiny_schema,
                    shard_map.chunks_owned(shard) * tuples_per_chunk,
                    small_config.buffer,
                ),
                small_config,
                policy,
                capacity_chunks=8,
            )
            for shard in range(cluster.shards)
        ]
        return run_cluster_service(
            _arrivals(_nsm_templates(), global_layout),
            small_config,
            abms,
            cluster,
            record_trace=True,
        )

    @pytest.mark.parametrize("shards", [1, 4])
    @pytest.mark.parametrize(
        "policy", ["normal", "attach", "elevator", "relevance"]
    )
    def test_nsm_explicit_defaults_bit_for_bit(
        self, tiny_schema, small_config, shards, policy
    ):
        from repro.common.config import FailureConfig

        plain = ClusterConfig(shards=shards, mpl_per_shard=3)
        explicit = ClusterConfig(
            shards=shards,
            mpl_per_shard=3,
            replicas=1,
            failures=FailureConfig(),
            hedge=None,
        )
        assert not explicit.is_resilient
        baseline = self._nsm_cluster(tiny_schema, small_config, plain, policy)
        pinned = self._nsm_cluster(tiny_schema, small_config, explicit, policy)
        for run_a, run_b in zip(baseline.shard_runs, pinned.shard_runs):
            assert _fingerprint(run_a) == _fingerprint(run_b)
        assert baseline.slo == pinned.slo
        assert pinned.availability is None
        assert pinned.slo.availability is None

    @pytest.mark.parametrize(
        "policy", ["normal", "attach", "elevator", "relevance"]
    )
    def test_dsm_explicit_defaults_bit_for_bit(
        self, dsm_layout, small_config, policy
    ):
        from repro.common.config import FailureConfig

        arrivals = _arrivals(_dsm_templates(), dsm_layout)
        capacity_pages = max(64, int(dsm_layout.table_pages() * 0.3))

        def run(cluster):
            return run_cluster_service(
                arrivals,
                small_config,
                [
                    make_dsm_abm(
                        dsm_layout,
                        small_config,
                        policy,
                        capacity_pages=capacity_pages,
                    )
                ],
                cluster,
                record_trace=True,
            )

        baseline = run(ClusterConfig(shards=1, mpl_per_shard=4))
        pinned = run(
            ClusterConfig(
                shards=1, mpl_per_shard=4, replicas=1, failures=FailureConfig()
            )
        )
        assert _fingerprint(baseline.shard_runs[0]) == _fingerprint(
            pinned.shard_runs[0]
        )
        assert baseline.slo == pinned.slo
        assert pinned.availability is None


class TestMultiShardDeterminism:
    def _run(self, tiny_schema, small_config, shards):
        from repro.cluster import ShardMap

        cluster = ClusterConfig(shards=shards, mpl_per_shard=3)
        num_chunks = 32
        shard_map = ShardMap.from_cluster_config(cluster, num_chunks)
        tuples_per_chunk = small_config.buffer.chunk_bytes // 32
        global_layout = NSMTableLayout.from_buffer_config(
            tiny_schema, num_chunks * tuples_per_chunk, small_config.buffer
        )
        arrivals = _arrivals(_nsm_templates(), global_layout)
        abms = []
        for shard in range(shards):
            local_layout = NSMTableLayout.from_buffer_config(
                tiny_schema,
                shard_map.chunks_owned(shard) * tuples_per_chunk,
                small_config.buffer,
            )
            abms.append(
                make_nsm_abm(
                    local_layout, small_config, "relevance", capacity_chunks=8
                )
            )
        return run_cluster_service(
            arrivals, small_config, abms, cluster, record_trace=True
        )

    @pytest.mark.parametrize("shards", [2, 4])
    def test_repeat_runs_identical(self, tiny_schema, small_config, shards):
        first = self._run(tiny_schema, small_config, shards)
        second = self._run(tiny_schema, small_config, shards)
        for run_a, run_b in zip(first.shard_runs, second.shard_runs):
            assert _fingerprint(run_a) == _fingerprint(run_b)
        assert first.slo == second.slo
        assert len(first.records) == NUM_QUERIES
