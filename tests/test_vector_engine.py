"""Golden-trace equivalence of the numpy batch-execution engine.

The vector engine (:mod:`repro.sim.vector` plus the vectorised interest
tracker paths in :mod:`repro.core.interest`) exists purely to make the same
scheduling decisions faster; it must not change a single one.  These tests
run identical workloads with ``engine="scalar"`` and ``engine="numpy"``
across the storage-model x policy x workload-source matrix and assert
bit-for-bit identical outcomes, plus the ``engine="auto"`` resolution rules
and the CPU-heap compaction bound the scalar path relies on under
cancellation churn.
"""

from __future__ import annotations

import pytest

from repro.common.config import ServiceConfig
from repro.common.errors import SimulationError
from repro.service.admission import AdmissionController
from repro.service.arrivals import Arrival
from repro.service.server import OpenSystemSource
from repro.sim import vector
from repro.sim.results import scheduling_fingerprint as _fingerprint
from repro.sim.runner import ScanSimulator, run_simulation
from repro.sim.setup import make_dsm_abm, make_nsm_abm
from repro.sim.source import ClosedStreamSource
from repro.sim.vector import AUTO_NUMPY_THRESHOLD, numpy_available, resolve_engine
from repro.workload.queries import QueryFamily, QueryTemplate
from repro.workload.streams import build_streams
from tests.conftest import make_request

NUM_STREAMS = 5
QUERIES_PER_STREAM = 2
SEED = 1234

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy engine unavailable"
)


def _nsm_workload():
    fast = QueryFamily("F", cpu_per_chunk=0.002)
    slow = QueryFamily("S", cpu_per_chunk=0.02)
    return [
        QueryTemplate(fast, 10),
        QueryTemplate(fast, 50),
        QueryTemplate(slow, 100),
    ]


def _dsm_workload():
    narrow = QueryFamily("F", cpu_per_chunk=0.002, columns=("key", "price"))
    medium = QueryFamily("G", cpu_per_chunk=0.002, columns=("price", "flag"))
    wide = QueryFamily("S", cpu_per_chunk=0.02, columns=("key", "ref", "date"))
    return [
        QueryTemplate(narrow, 10),
        QueryTemplate(medium, 50),
        QueryTemplate(wide, 100),
    ]


def _closed_streams(templates, layout):
    return build_streams(
        templates, layout, NUM_STREAMS, QUERIES_PER_STREAM, seed=SEED
    )


def _open_source(templates, layout):
    specs = [
        spec
        for stream in _closed_streams(templates, layout)
        for spec in stream
    ]
    arrivals = [
        Arrival(time=0.3 * index, spec=spec) for index, spec in enumerate(specs)
    ]
    admission = AdmissionController(
        ServiceConfig(max_concurrent=4, queue_capacity=64)
    )
    return OpenSystemSource(arrivals, admission)


def _run_nsm(nsm_layout, config, workload_kind, engine, policy="relevance"):
    templates = _nsm_workload()
    abm = make_nsm_abm(nsm_layout, config, policy, capacity_chunks=8)
    if workload_kind == "closed":
        workload = _closed_streams(templates, nsm_layout)
    else:
        workload = _open_source(templates, nsm_layout)
    return run_simulation(workload, config, abm, record_trace=True, engine=engine)


def _run_dsm(dsm_layout, config, workload_kind, engine, policy="relevance"):
    templates = _dsm_workload()
    capacity_pages = max(64, int(dsm_layout.table_pages() * 0.3))
    abm = make_dsm_abm(
        dsm_layout, config, policy, capacity_pages=capacity_pages
    )
    if workload_kind == "closed":
        workload = _closed_streams(templates, dsm_layout)
    else:
        workload = _open_source(templates, dsm_layout)
    return run_simulation(workload, config, abm, record_trace=True, engine=engine)


# ------------------------------------------------------- engine resolution
class TestResolveEngine:
    def test_scalar_is_always_allowed(self):
        assert resolve_engine("scalar", None) == "scalar"
        assert resolve_engine("scalar", 10_000) == "scalar"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError, match="unknown engine"):
            resolve_engine("cython", 100)

    def test_auto_without_a_size_hint_stays_scalar(self):
        # Open-system sources and cluster shards cannot bound their query
        # count up front; auto must not guess.
        assert resolve_engine("auto", None) == "scalar"

    @needs_numpy
    def test_auto_threshold(self):
        assert resolve_engine("auto", AUTO_NUMPY_THRESHOLD - 1) == "scalar"
        assert resolve_engine("auto", AUTO_NUMPY_THRESHOLD) == "numpy"

    def test_explicit_numpy_without_numpy_is_an_error(self, monkeypatch):
        monkeypatch.setattr(vector, "_np", None)
        with pytest.raises(SimulationError, match="numpy is not installed"):
            resolve_engine("numpy", 100)

    def test_auto_without_numpy_degrades_to_scalar(self, monkeypatch):
        monkeypatch.setattr(vector, "_np", None)
        assert resolve_engine("auto", 10_000) == "scalar"

    @needs_numpy
    def test_simulator_reports_its_resolved_engine(
        self, tiny_schema, small_config, nsm_layout
    ):
        def simulator(num_streams):
            streams = build_streams(
                _nsm_workload(), nsm_layout, num_streams, 2, seed=SEED
            )
            abm = make_nsm_abm(
                nsm_layout, small_config, "relevance", capacity_chunks=8
            )
            source = ClosedStreamSource(
                streams, small_config.stream_start_delay_s
            )
            return ScanSimulator(source, small_config, abm)

        # 5 streams x 2 queries = 10 < threshold; 20 x 2 = 40 >= threshold.
        assert simulator(5).resolved_engine == "scalar"
        assert simulator(20).resolved_engine == "numpy"


# --------------------------------------------------- NSM engine equivalence
@needs_numpy
class TestNSMEngineEquivalence:
    @pytest.mark.parametrize("volumes", [1, 4])
    @pytest.mark.parametrize("workload_kind", ["closed", "open"])
    def test_relevance_decisions_identical(
        self, nsm_layout, small_config, volumes, workload_kind
    ):
        config = small_config.with_volumes(volumes)
        scalar = _run_nsm(nsm_layout, config, workload_kind, engine="scalar")
        vectored = _run_nsm(nsm_layout, config, workload_kind, engine="numpy")
        assert _fingerprint(scalar) == _fingerprint(vectored)

    @pytest.mark.parametrize("policy", ["normal", "attach", "elevator"])
    def test_other_policies_identical(self, nsm_layout, small_config, policy):
        scalar = _run_nsm(
            nsm_layout, small_config, "closed", engine="scalar", policy=policy
        )
        vectored = _run_nsm(
            nsm_layout, small_config, "closed", engine="numpy", policy=policy
        )
        assert _fingerprint(scalar) == _fingerprint(vectored)


# --------------------------------------------------- DSM engine equivalence
@needs_numpy
class TestDSMEngineEquivalence:
    @pytest.mark.parametrize("workload_kind", ["closed", "open"])
    def test_relevance_decisions_identical(
        self, dsm_layout, small_config, workload_kind
    ):
        scalar = _run_dsm(dsm_layout, small_config, workload_kind, engine="scalar")
        vectored = _run_dsm(dsm_layout, small_config, workload_kind, engine="numpy")
        assert _fingerprint(scalar) == _fingerprint(vectored)

    def test_normal_policy_identical(self, dsm_layout, small_config):
        scalar = _run_dsm(
            dsm_layout, small_config, "closed", engine="scalar", policy="normal"
        )
        vectored = _run_dsm(
            dsm_layout, small_config, "closed", engine="numpy", policy="normal"
        )
        assert _fingerprint(scalar) == _fingerprint(vectored)


# ------------------------------------------------------ CPU-heap compaction
class TestCpuHeapCompaction:
    """The scalar CPU heap must stay bounded under cancellation churn.

    Lazy invalidation leaves a cancelled query's heap entry in place; the
    compaction pass purges stale entries once they outnumber live ones, so
    a long hedge/fail-stop run cannot grow the heap (and every heappush)
    without bound.
    """

    def _churn_simulator(self, tiny_schema, small_config):
        from repro.storage.nsm import NSMTableLayout

        tuples = 16 * (small_config.buffer.chunk_bytes // 32)
        layout = NSMTableLayout.from_buffer_config(
            tiny_schema, tuples, small_config.buffer
        )
        # 48 single-query streams of slow scans: everything admits quickly
        # and stays on the CPU long enough to be cancelled mid-flight.
        streams = [
            [make_request(index, range(0, 16), cpu_per_chunk=2.0)]
            for index in range(48)
        ]
        abm = make_nsm_abm(layout, small_config, "relevance", capacity_chunks=8)
        source = ClosedStreamSource(streams, 0.001)
        return ScanSimulator(source, small_config, abm, engine="scalar")

    def test_fail_stop_compacts_the_heap(self, tiny_schema, small_config):
        simulator = self._churn_simulator(tiny_schema, small_config)
        simulator.begin_run()
        for _ in range(10_000):
            if simulator.is_done() or len(simulator._running) >= 40:
                break
            simulator.step(simulator.next_step_time())
        assert len(simulator._running) >= 40
        assert len(simulator._cpu_heap) >= len(simulator._running)
        simulator.fail_stop(simulator._now)
        # Every entry went stale at once; compaction must have kept the
        # heap within its constant bound instead of retaining all of them.
        assert len(simulator._running) == 0
        assert len(simulator._cpu_heap) <= 32

    def test_incremental_cancellation_keeps_the_bound(
        self, tiny_schema, small_config
    ):
        simulator = self._churn_simulator(tiny_schema, small_config)
        simulator.begin_run()
        for _ in range(10_000):
            if simulator.is_done() or len(simulator._running) >= 40:
                break
            simulator.step(simulator.next_step_time())
        victims = sorted(simulator._running)[:-4]
        for query_id in victims:
            simulator.cancel_query(query_id, simulator._now)
            assert len(simulator._cpu_heap) <= max(
                32, 2 * len(simulator._running)
            )
        # The survivors still run to completion on the compacted heap.
        for _ in range(100_000):
            if simulator.is_done():
                break
            simulator.step(simulator.next_step_time())
        assert simulator.is_done()
        result = simulator.finish()
        assert len(result.queries) == 48 - len(victims)
