"""Tracing a service run must observe everything and change nothing."""

import pytest

from repro.common.config import ObservabilityConfig, ServiceConfig
from repro.obs import (
    FlightRecorder,
    chrome_trace,
    read_jsonl,
    render_run_timelines,
    to_jsonl,
    validate_chrome_trace,
)
from repro.obs.events import PH_ASYNC_BEGIN, PH_ASYNC_END
from repro.service import poisson_arrivals, run_service
from repro.sim.results import scheduling_fingerprint
from repro.sim.setup import make_dsm_abm, make_nsm_abm
from repro.workload.queries import QueryFamily, QueryTemplate


@pytest.fixture
def templates():
    fast = QueryFamily("F", cpu_per_chunk=0.002)
    slow = QueryFamily("S", cpu_per_chunk=0.02)
    return (
        QueryTemplate(fast, 25),
        QueryTemplate(fast, 50),
        QueryTemplate(slow, 25),
    )


def _run(layout, config, templates, policy, obs, abm_maker=make_nsm_abm,
         service=None):
    arrivals = poisson_arrivals(templates, layout, 2.5, 10, seed=11)
    return run_service(
        arrivals, config, abm_maker(layout, config, policy),
        service or ServiceConfig(max_concurrent=3), obs=obs,
    )


class TestTracingChangesNothing:
    @pytest.mark.parametrize("policy", ["normal", "attach", "relevance"])
    def test_nsm_fingerprints_identical(
        self, templates, nsm_layout, small_config, policy
    ):
        plain = _run(nsm_layout, small_config, templates, policy, obs=None)
        traced = _run(nsm_layout, small_config, templates, policy,
                      obs=ObservabilityConfig())
        assert scheduling_fingerprint(plain.run) == scheduling_fingerprint(
            traced.run
        )
        assert plain.slo.as_dict() == traced.slo.as_dict()
        assert plain.obs is None
        assert traced.obs is not None
        assert len(traced.obs.events) > 0

    def test_dsm_fingerprints_identical(
        self, templates, dsm_layout, small_config
    ):
        plain = _run(dsm_layout, small_config, templates, "relevance",
                     obs=None, abm_maker=make_dsm_abm)
        traced = _run(dsm_layout, small_config, templates, "relevance",
                      obs=ObservabilityConfig(), abm_maker=make_dsm_abm)
        assert scheduling_fingerprint(plain.run) == scheduling_fingerprint(
            traced.run
        )
        assert plain.slo.as_dict() == traced.slo.as_dict()

    def test_disabled_config_builds_no_recorder(
        self, templates, nsm_layout, small_config
    ):
        result = _run(nsm_layout, small_config, templates, "relevance",
                      obs=ObservabilityConfig(enabled=False))
        assert result.obs is None


class TestTraceContent:
    @pytest.fixture
    def traced(self, templates, nsm_layout, small_config):
        return _run(nsm_layout, small_config, templates, "relevance",
                    obs=ObservabilityConfig())

    def test_point_events_emitted_in_time_order(self, traced):
        # Complete spans are emitted retroactively (at span end, stamped
        # with span start), but point events of one layer must appear in
        # simulated-clock order.
        for cat in ("frontdoor", "admission", "query", "exec", "abm"):
            times = [event.ts for event in traced.obs.events
                     if event.cat == cat and event.ph != "X"]
            assert times, f"expected {cat} events in a traced run"
            assert all(a <= b + 1e-9 for a, b in zip(times, times[1:])), cat

    def test_every_query_has_paired_lifecycles(self, traced):
        # Each query gets a front-door ("query") and a simulator ("exec")
        # async pair; ends match begins id-for-id.
        for cat in ("query", "exec"):
            begins = [e.id for e in traced.obs.events
                      if e.cat == cat and e.ph == PH_ASYNC_BEGIN]
            ends = [e.id for e in traced.obs.events
                    if e.cat == cat and e.ph == PH_ASYNC_END]
            assert len(begins) == 10
            assert sorted(begins) == sorted(ends)

    def test_spans_nest_inside_their_query_lifecycle(self, traced):
        begin_at = {e.id: e.ts for e in traced.obs.events
                    if e.cat == "exec" and e.ph == PH_ASYNC_BEGIN}
        end_at = {e.id: e.ts for e in traced.obs.events
                  if e.cat == "exec" and e.ph == PH_ASYNC_END}
        spans = [e for e in traced.obs.events if e.name == "cpu.chunk"]
        assert spans, "expected cpu.chunk spans in a traced run"
        for span in spans:
            query = span.args["query"]
            assert span.ts >= begin_at[query] - 1e-9
            assert span.end <= end_at[query] + 1e-9

    def test_disk_spans_land_on_volume_tracks(self, traced):
        seeks = traced.obs.events_named("disk.seek")
        transfers = traced.obs.events_named("disk.transfer")
        assert seeks and len(seeks) == len(transfers)
        assert {event.tid for event in seeks} <= {"vol0"}
        for seek, transfer in zip(seeks, transfers):
            assert transfer.ts == pytest.approx(seek.end)

    def test_expected_metric_series_recorded(self, traced):
        names = set(traced.obs.metrics.names())
        assert "frontdoor.mpl.active" in names
        assert "frontdoor.mpl.limit" in names
        assert "service.abm.hit_rate" in names
        assert "service.abm.starved_queries" in names
        assert any(name.endswith(".depth") for name in names)

    def test_exports_round_trip_and_validate(self, traced):
        assert read_jsonl(to_jsonl(traced.obs)) == traced.obs.events
        assert validate_chrome_trace(chrome_trace(traced.obs)) >= len(
            traced.obs.events
        )

    def test_timeline_drilldown_renders(self, traced):
        text = render_run_timelines(traced.obs)
        assert "frontdoor.mpl.active" in text
        assert "window" in text

    def test_scheduler_profile_reconciles_with_run_totals(self, traced):
        profile = traced.run.scheduler_profile
        assert profile is not None
        # The profile's phase seconds partition the run's scheduling
        # wall-clock exactly; its call count covers every event-core phase
        # (the run's scheduling_calls is the policy's own narrower counter).
        assert profile.total_seconds == pytest.approx(
            traced.run.scheduling_seconds
        )
        assert profile.total_calls >= traced.run.scheduling_calls
        assert profile.phase("select_chunk").calls > 0
        assert profile.phase("register").calls == 10
        assert profile.phase("unregister").calls == 10


class TestDeprecatedAliasNeverTraced:
    def test_priority_discipline_traces_as_sjf(
        self, templates, nsm_layout, small_config
    ):
        # Config-level "priority" stays accepted as an alias, but the trace
        # vocabulary is canonical: every admission event says "sjf".
        result = _run(
            nsm_layout, small_config, templates, "relevance",
            obs=ObservabilityConfig(),
            service=ServiceConfig(max_concurrent=1, discipline="priority"),
        )
        disciplines = {
            event.args["discipline"]
            for event in result.obs.events
            if "discipline" in event.args
        }
        assert disciplines == {"sjf"}
        for event in result.obs.events:
            assert "priority" not in event.name
            assert event.args.get("discipline") != "priority"
