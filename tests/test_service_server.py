"""End-to-end tests for the open-system service loop and SLO reporting."""

import pytest

from repro.common.config import ServiceConfig
from repro.common.errors import SimulationError
from repro.service import (
    AdmissionController,
    Arrival,
    OpenSystemSource,
    build_slo_report,
    compare_service_policies,
    poisson_arrivals,
    render_slo_table,
    run_service,
)
from repro.sim.runner import run_simulation
from repro.sim.setup import make_nsm_abm, nsm_abm_factory
from repro.sim.source import ClosedStreamSource
from repro.workload.queries import QueryFamily, QueryTemplate
from tests.conftest import make_request


@pytest.fixture
def templates():
    fast = QueryFamily("F", cpu_per_chunk=0.002)
    slow = QueryFamily("S", cpu_per_chunk=0.02)
    return (
        QueryTemplate(fast, 25),
        QueryTemplate(fast, 50),
        QueryTemplate(slow, 25),
    )


def max_concurrency(result):
    """Highest number of simultaneously executing queries in a run."""
    events = []
    for query in result.queries:
        events.append((query.arrival_time, 1))
        events.append((query.finish_time, -1))
    # Completions sort before admissions at equal timestamps: the runner
    # releases a slot before admitting the next queued query.
    events.sort(key=lambda event: (event[0], event[1]))
    peak = active = 0
    for _, delta in events:
        active += delta
        peak = max(peak, active)
    return peak


class TestOpenSystemSource:
    def test_rejects_empty_arrivals(self):
        with pytest.raises(SimulationError):
            OpenSystemSource([], AdmissionController(ServiceConfig()))

    def test_rejects_unsorted_arrivals(self):
        arrivals = [
            Arrival(time=1.0, spec=make_request(0, range(2))),
            Arrival(time=0.5, spec=make_request(1, range(2))),
        ]
        with pytest.raises(SimulationError):
            OpenSystemSource(arrivals, AdmissionController(ServiceConfig()))

    def test_rejects_duplicate_query_ids(self):
        arrivals = [
            Arrival(time=0.5, spec=make_request(0, range(2))),
            Arrival(time=1.0, spec=make_request(0, range(2))),
        ]
        with pytest.raises(SimulationError):
            OpenSystemSource(arrivals, AdmissionController(ServiceConfig()))

    def test_on_complete_with_empty_queue_releases_slot(self):
        arrivals = [Arrival(time=0.0, spec=make_request(0, range(2)))]
        admission = AdmissionController(ServiceConfig(max_concurrent=2))
        source = OpenSystemSource(arrivals, admission)
        admitted = source.poll(0.0)
        assert len(admitted) == 1
        assert admission.active == 1
        # The only query completes with nobody waiting: no follow-up query
        # is released, the MPL slot is freed, and the source is drained.
        released = source.on_complete(0, 1.0)
        assert released == []
        assert admission.active == 0
        assert source.drained()

    def test_rejects_reuse_of_consumed_source(self, nsm_layout, small_config):
        # Sources are single-use: running the same instance twice must fail
        # loudly instead of returning an empty second result.
        arrivals = [Arrival(time=0.0, spec=make_request(0, range(4)))]
        source = OpenSystemSource(arrivals, AdmissionController(ServiceConfig()))
        run_simulation(
            source, small_config, make_nsm_abm(nsm_layout, small_config, "normal")
        )
        with pytest.raises(SimulationError, match="consumed"):
            run_simulation(
                source, small_config,
                make_nsm_abm(nsm_layout, small_config, "relevance"),
            )


class TestServiceRuns:
    def test_all_admitted_queries_complete(self, templates, nsm_layout, small_config):
        arrivals = poisson_arrivals(templates, nsm_layout, 2.0, 12, seed=3)
        service = ServiceConfig(max_concurrent=3)
        result = run_service(
            arrivals, small_config,
            make_nsm_abm(nsm_layout, small_config, "relevance"), service,
        )
        assert result.slo.offered == 12
        assert result.slo.completed == 12
        assert result.slo.shed == 0
        assert result.slo.throughput_qps > 0

    def test_concurrency_never_exceeds_mpl(self, templates, nsm_layout, small_config):
        arrivals = poisson_arrivals(templates, nsm_layout, 5.0, 20, seed=9)
        service = ServiceConfig(max_concurrent=2)
        result = run_service(
            arrivals, small_config,
            make_nsm_abm(nsm_layout, small_config, "relevance"), service,
        )
        assert max_concurrency(result.run) <= 2

    def test_queries_register_at_admission_not_arrival(
        self, templates, nsm_layout, small_config
    ):
        # MPL 1 under a fast arrival process: later queries must queue, so
        # their execution (arrival_time) starts strictly after submission.
        arrivals = poisson_arrivals(templates, nsm_layout, 10.0, 6, seed=4)
        service = ServiceConfig(max_concurrent=1)
        result = run_service(
            arrivals, small_config,
            make_nsm_abm(nsm_layout, small_config, "normal"), service,
        )
        waits = [query.queue_wait for query in result.run.queries]
        assert any(wait > 0 for wait in waits)
        for query in result.run.queries:
            assert query.submit_time is not None
            assert query.arrival_time >= query.submit_time - 1e-9
            assert query.end_to_end_latency == pytest.approx(
                query.queue_wait + query.latency
            )
        assert result.slo.queue_wait.p95 > 0

    def test_overload_with_zero_queue_sheds(self, templates, nsm_layout, small_config):
        arrivals = poisson_arrivals(templates, nsm_layout, 20.0, 25, seed=5)
        service = ServiceConfig(max_concurrent=1, queue_capacity=0)
        result = run_service(
            arrivals, small_config,
            make_nsm_abm(nsm_layout, small_config, "relevance"), service,
        )
        assert result.slo.shed > 0
        assert result.slo.completed == result.slo.offered - result.slo.shed
        assert 0 < result.slo.shed_rate < 1

    def test_same_seed_and_config_reproduce_identically(
        self, templates, nsm_layout, small_config
    ):
        def once():
            arrivals = poisson_arrivals(templates, nsm_layout, 3.0, 15, seed=21)
            service = ServiceConfig(max_concurrent=2, queue_capacity=4)
            return run_service(
                arrivals, small_config,
                make_nsm_abm(nsm_layout, small_config, "relevance"), service,
            )

        first, second = once(), once()
        assert first.slo == second.slo
        assert first.run.total_time == second.run.total_time
        assert first.run.io_requests == second.run.io_requests
        assert [
            (q.query_id, q.submit_time, q.arrival_time, q.finish_time)
            for q in first.run.queries
        ] == [
            (q.query_id, q.submit_time, q.arrival_time, q.finish_time)
            for q in second.run.queries
        ]

    def test_priority_discipline_prefers_small_queries(
        self, nsm_layout, small_config
    ):
        # One long-running query holds the only slot while a big and a small
        # query queue up behind it; SJF must run the small one first.
        arrivals = [
            Arrival(time=0.0, spec=make_request(0, range(16), name="running",
                                                cpu_per_chunk=0.02)),
            Arrival(time=0.1, spec=make_request(1, range(16), name="big",
                                                cpu_per_chunk=0.02)),
            Arrival(time=0.2, spec=make_request(2, range(2), name="small",
                                                cpu_per_chunk=0.02)),
        ]
        service = ServiceConfig(max_concurrent=1, discipline="sjf")
        result = run_service(
            arrivals, small_config,
            make_nsm_abm(nsm_layout, small_config, "normal"), service,
        )
        by_name = {query.name: query for query in result.run.queries}
        assert by_name["small"].arrival_time < by_name["big"].arrival_time

    def test_compare_service_policies_shares_arrivals(
        self, templates, nsm_layout, small_config
    ):
        arrivals = poisson_arrivals(templates, nsm_layout, 2.5, 12, seed=8)
        service = ServiceConfig(max_concurrent=3)
        results = compare_service_policies(
            arrivals, small_config,
            lambda policy: nsm_abm_factory(nsm_layout, small_config, policy),
            service, policies=("normal", "relevance"),
        )
        assert set(results) == {"normal", "relevance"}
        for outcome in results.values():
            assert outcome.slo.offered == 12
        # Sharing can only reduce I/O relative to no sharing.
        assert (
            results["relevance"].run.io_requests
            <= results["normal"].run.io_requests
        )
        table = render_slo_table([r.slo for r in results.values()])
        assert "lat p95" in table and "relevance" in table


class TestClosedStreamEquivalence:
    def test_explicit_source_matches_plain_streams(self, nsm_layout, small_config):
        def build():
            return [
                [make_request(0, range(0, 12), cpu_per_chunk=0.002, name="A"),
                 make_request(1, range(4, 16), cpu_per_chunk=0.004, name="B")],
                [make_request(2, range(8, 24), cpu_per_chunk=0.002, name="C")],
            ]

        plain = run_simulation(
            build(), small_config, make_nsm_abm(nsm_layout, small_config, "relevance")
        )
        explicit = run_simulation(
            ClosedStreamSource(build(), small_config.stream_start_delay_s),
            small_config,
            make_nsm_abm(nsm_layout, small_config, "relevance"),
        )
        assert plain.total_time == explicit.total_time
        assert plain.io_requests == explicit.io_requests
        assert plain.queries == explicit.queries
        assert plain.streams == explicit.streams

    def test_closed_queries_have_no_queue_wait(self, nsm_layout, small_config):
        streams = [[make_request(0, range(8), cpu_per_chunk=0.002)]]
        result = run_simulation(
            streams, small_config, make_nsm_abm(nsm_layout, small_config, "normal")
        )
        query = result.queries[0]
        assert query.submit_time is None
        assert query.queue_wait == 0.0
        assert query.end_to_end_latency == query.latency


class TestSLOReport:
    def test_report_fields_consistent(self, templates, nsm_layout, small_config):
        arrivals = poisson_arrivals(templates, nsm_layout, 2.0, 10, seed=13)
        service = ServiceConfig(max_concurrent=2)
        result = run_service(
            arrivals, small_config,
            make_nsm_abm(nsm_layout, small_config, "relevance"), service,
        )
        report = result.slo
        assert report.policy == "relevance"
        assert report.latency.p50 <= report.latency.p95 <= report.latency.p99
        # End-to-end latency dominates execution time query by query, and
        # percentiles preserve pointwise domination.
        assert report.latency.p95 >= report.execution.p95 - 1e-9
        assert report.throughput_qps == pytest.approx(
            report.completed / report.duration
        )
        flat = report.as_dict()
        assert flat["latency_p95"] == report.latency.p95
        assert flat["shed_rate"] == report.shed_rate

    def test_meets_slo_predicate(self, templates, nsm_layout, small_config):
        arrivals = poisson_arrivals(templates, nsm_layout, 1.0, 8, seed=17)
        service = ServiceConfig(max_concurrent=4)
        result = run_service(
            arrivals, small_config,
            make_nsm_abm(nsm_layout, small_config, "relevance"), service,
        )
        assert result.slo.meets(result.slo.latency.p95 + 1.0)
        assert not result.slo.meets(result.slo.latency.p95 / 2.0)

    def test_build_report_on_run_without_queries(self):
        from repro.sim.results import RunResult

        empty = RunResult(
            policy="normal", total_time=0.0, io_requests=0, bytes_read=0,
            cpu_utilisation=0.0, queries=[], streams=[],
        )
        report = build_slo_report(empty, offered=5, shed=5)
        assert report.shed_rate == 1.0
        assert report.throughput_qps == 0.0
        assert report.latency.count == 0
