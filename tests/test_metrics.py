"""Tests for the analytic models, statistics and report rendering."""

import math

import pytest

from repro.metrics.analytic import (
    average_query_latency_example,
    buffer_reuse_probability,
    buffer_reuse_probability_curve,
    dsm_block_reuse_probability,
    expected_ios_elevator,
    expected_ios_normal,
    monte_carlo_reuse_probability,
    nsm_block_reuse_probability,
)
from repro.metrics.reference import (
    TPCH_2006_RESULTS,
    average_disk_count,
    average_total_storage_tb,
    concurrency_slowdown,
    disk_fill_fraction,
    storage_cost_share,
)
from repro.metrics.report import format_table, render_policy_comparison, render_query_table
from repro.metrics.stats import (
    PolicyComparison,
    QueryTypeStats,
    compare_runs,
    per_query_type_stats,
    summarise_run,
)
from repro.sim.results import QueryResult, RunResult, StreamResult
from repro.common.errors import ConfigurationError


class TestEquationOne:
    def test_matches_figure2_anchor_point(self):
        # "over 50% for a 10% scan with a buffer pool holding 10% of the relation"
        probability = buffer_reuse_probability(100, 10, 10)
        assert probability > 0.5

    def test_zero_buffer_or_demand(self):
        assert buffer_reuse_probability(100, 10, 0) == 0.0
        assert buffer_reuse_probability(100, 0, 10) == 0.0

    def test_full_buffer_certain(self):
        assert buffer_reuse_probability(100, 1, 100) == pytest.approx(1.0)

    def test_monotone_in_buffer_size(self):
        probabilities = [
            buffer_reuse_probability(100, 10, buffer) for buffer in (1, 5, 10, 20, 50)
        ]
        assert probabilities == sorted(probabilities)

    def test_monotone_in_query_demand(self):
        probabilities = [
            buffer_reuse_probability(100, demand, 10) for demand in (1, 5, 10, 50, 100)
        ]
        assert probabilities == sorted(probabilities)

    def test_matches_monte_carlo(self):
        analytic = buffer_reuse_probability(50, 5, 10)
        simulated = monte_carlo_reuse_probability(50, 5, 10, trials=30_000, seed=1)
        assert analytic == pytest.approx(simulated, abs=0.02)

    def test_curve_shape(self):
        curves = buffer_reuse_probability_curve(
            100, buffer_fractions=[0.01, 0.5], query_demands=[1, 10, 100]
        )
        assert set(curves) == {0.01, 0.5}
        # Larger buffer fraction dominates pointwise.
        small = dict(curves[0.01])
        large = dict(curves[0.5])
        assert all(large[demand] >= small[demand] for demand in (1, 10, 100))

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            buffer_reuse_probability(0, 0, 0)
        with pytest.raises(ConfigurationError):
            buffer_reuse_probability(100, 101, 10)
        with pytest.raises(ConfigurationError):
            monte_carlo_reuse_probability(10, 1, 1, trials=0)


class TestExpectedIOs:
    def test_normal_formula(self):
        # Example from Section 1: Q1=30 chunks running, Q2=10 arrives.
        assert expected_ios_normal(10, [30]) == 20

    def test_elevator_capped_by_table(self):
        assert expected_ios_elevator(100, 80, [90]) == 100
        assert expected_ios_elevator(1000, 80, [90]) == 170

    def test_reuse_probabilities(self):
        nsm = nsm_block_reuse_probability(1000, 10_000)
        assert nsm == pytest.approx(0.1)
        dsm = dsm_block_reuse_probability(1000, 10_000, 0.5)
        assert dsm == pytest.approx(0.05)
        with pytest.raises(ConfigurationError):
            dsm_block_reuse_probability(1, 10, 2.0)

    def test_intro_example_latencies(self):
        example = average_query_latency_example()
        assert example["normal_round_robin"] == pytest.approx(30.0)
        assert example["elevator_good_order"] == pytest.approx(25.0)
        assert example["elevator_bad_order"] == pytest.approx(35.0)


class TestReferenceTable:
    def test_four_systems(self):
        assert len(TPCH_2006_RESULTS) == 4

    def test_average_disk_count_matches_paper(self):
        assert average_disk_count() == pytest.approx(149.25, abs=0.01)

    def test_average_storage_matches_paper(self):
        assert average_total_storage_tb() == pytest.approx(3.8, abs=0.05)

    def test_storage_cost_share_high(self):
        assert storage_cost_share() > 0.6

    def test_disks_less_than_ten_percent_full(self):
        assert all(fraction < 0.1 for fraction in disk_fill_fraction())

    def test_concurrency_hurts_throughput(self):
        assert all(ratio >= 1.0 for ratio in concurrency_slowdown())


def build_run(policy: str, scale: float = 1.0) -> RunResult:
    queries = [
        QueryResult(0, "F-10", 0, 0.0, 10.0 * scale, 4, 1.0, 4),
        QueryResult(1, "F-10", 1, 3.0, 18.0 * scale, 4, 1.0, 3),
        QueryResult(2, "S-50", 0, 10.0, 40.0 * scale, 16, 8.0, 10),
    ]
    streams = [
        StreamResult(0, 0.0, 40.0 * scale, ["F-10", "S-50"]),
        StreamResult(1, 3.0, 18.0 * scale, ["F-10"]),
    ]
    return RunResult(
        policy=policy,
        total_time=40.0 * scale,
        io_requests=int(17 * scale),
        bytes_read=1000,
        cpu_utilisation=0.8,
        queries=queries,
        streams=streams,
    )


STANDALONE = {"F-10": 5.0, "S-50": 20.0}


class TestStats:
    def test_summarise_run(self):
        stats = summarise_run(build_run("relevance"), STANDALONE)
        assert stats.policy == "relevance"
        assert stats.avg_stream_time == pytest.approx((40.0 + 15.0) / 2)
        assert stats.io_requests == 17

    def test_per_query_type_stats(self):
        stats = {s.name: s for s in per_query_type_stats(build_run("x"), STANDALONE)}
        assert stats["F-10"].count == 2
        assert stats["F-10"].avg_latency == pytest.approx((10.0 + 15.0) / 2)
        assert stats["F-10"].stddev_latency > 0
        assert stats["S-50"].avg_normalized_latency == pytest.approx(30.0 / 20.0)
        assert stats["F-10"].avg_ios == pytest.approx(3.5)

    def test_normalized_latency_infinite_without_baseline(self):
        stats = QueryTypeStats.from_results(
            "q", [QueryResult(0, "q", 0, 0.0, 5.0, 1, 0.1, 1)], standalone_time=0.0
        )
        assert math.isinf(stats.avg_normalized_latency)

    def test_policy_comparison_relative(self):
        comparison = PolicyComparison(standalone_times=STANDALONE)
        comparison.add(build_run("relevance"))
        comparison.add(build_run("normal", scale=2.0))
        relative = comparison.relative_to("relevance")
        assert relative["relevance"]["stream_time_ratio"] == pytest.approx(1.0)
        # The scaled run doubles finish times (but not stream start offsets),
        # so its stream-time ratio is a bit above 2.
        assert relative["normal"]["stream_time_ratio"] == pytest.approx(2.05, abs=0.05)

    def test_relative_to_missing_reference(self):
        comparison = PolicyComparison(standalone_times=STANDALONE)
        comparison.add(build_run("normal"))
        with pytest.raises(KeyError):
            comparison.relative_to("relevance")

    def test_compare_runs_builder(self):
        runs = {"normal": build_run("normal"), "relevance": build_run("relevance")}
        comparison = compare_runs(runs, STANDALONE)
        assert set(comparison.runs) == {"normal", "relevance"}


class TestReport:
    def make_comparison(self) -> PolicyComparison:
        comparison = PolicyComparison(standalone_times=STANDALONE)
        comparison.add(build_run("normal", scale=2.0))
        comparison.add(build_run("relevance"))
        return comparison

    def test_format_table_alignment(self):
        table = format_table(["a", "b"], [[1, 2.5], ["xx", 1234.0]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5

    def test_format_table_validates_width(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_render_policy_comparison_contains_metrics(self):
        text = render_policy_comparison(self.make_comparison(), policies=["normal", "relevance"])
        assert "Avg. stream time" in text
        assert "I/O requests" in text
        assert "normal" in text and "relevance" in text

    def test_render_query_table_lists_all_query_types(self):
        text = render_query_table(self.make_comparison(), policies=["normal", "relevance"])
        assert "F-10" in text
        assert "S-50" in text
