"""Tests for the open-system arrival generators."""

import pytest

from repro.common.errors import ConfigurationError
from repro.service.arrivals import (
    Arrival,
    offered_rate,
    onoff_arrivals,
    poisson_arrivals,
    replay_arrivals,
    write_arrival_trace,
)
from repro.workload.queries import QueryFamily, QueryTemplate


@pytest.fixture
def templates():
    fast = QueryFamily("F", cpu_per_chunk=0.001)
    slow = QueryFamily("S", cpu_per_chunk=0.01)
    return (
        QueryTemplate(fast, 10),
        QueryTemplate(fast, 50),
        QueryTemplate(slow, 10),
    )


class TestPoissonArrivals:
    def test_count_and_monotone_times(self, templates, nsm_layout):
        arrivals = poisson_arrivals(templates, nsm_layout, 2.0, 50, seed=1)
        assert len(arrivals) == 50
        times = [arrival.time for arrival in arrivals]
        assert times == sorted(times)
        assert all(time > 0 for time in times)

    def test_unique_consecutive_query_ids(self, templates, nsm_layout):
        arrivals = poisson_arrivals(
            templates, nsm_layout, 2.0, 20, seed=1, first_query_id=100
        )
        ids = [arrival.spec.query_id for arrival in arrivals]
        assert ids == list(range(100, 120))

    def test_same_seed_reproduces_exactly(self, templates, nsm_layout):
        first = poisson_arrivals(templates, nsm_layout, 3.0, 30, seed=7)
        second = poisson_arrivals(templates, nsm_layout, 3.0, 30, seed=7)
        assert first == second

    def test_different_seed_differs(self, templates, nsm_layout):
        first = poisson_arrivals(templates, nsm_layout, 3.0, 30, seed=7)
        second = poisson_arrivals(templates, nsm_layout, 3.0, 30, seed=8)
        assert first != second

    def test_empirical_rate_close_to_lambda(self, templates, nsm_layout):
        rate = 4.0
        arrivals = poisson_arrivals(templates, nsm_layout, rate, 4000, seed=5)
        assert offered_rate(arrivals) == pytest.approx(rate, rel=0.1)

    def test_specs_use_template_costs(self, templates, nsm_layout):
        arrivals = poisson_arrivals(templates, nsm_layout, 2.0, 40, seed=2)
        cpu_costs = {arrival.spec.cpu_per_chunk for arrival in arrivals}
        assert cpu_costs <= {0.001, 0.01}
        # With 40 draws over 3 templates both families should appear.
        assert len(cpu_costs) == 2

    def test_start_time_offsets_all_arrivals(self, templates, nsm_layout):
        base = poisson_arrivals(templates, nsm_layout, 2.0, 10, seed=3)
        offset = poisson_arrivals(
            templates, nsm_layout, 2.0, 10, seed=3, start_time=100.0
        )
        for a, b in zip(base, offset):
            assert b.time == pytest.approx(a.time + 100.0)
            assert b.spec == a.spec

    def test_error_paths(self, templates, nsm_layout):
        with pytest.raises(ConfigurationError):
            poisson_arrivals((), nsm_layout, 2.0, 10)
        with pytest.raises(ConfigurationError):
            poisson_arrivals(templates, nsm_layout, 0.0, 10)
        with pytest.raises(ConfigurationError):
            poisson_arrivals(templates, nsm_layout, 2.0, 0)


class TestOnOffArrivals:
    def test_arrivals_only_inside_on_windows(self, templates, nsm_layout):
        on_s, off_s = 5.0, 15.0
        arrivals = onoff_arrivals(
            templates, nsm_layout, 4.0, 100, on_s=on_s, off_s=off_s, seed=11
        )
        period = on_s + off_s
        for arrival in arrivals:
            assert arrival.time % period <= on_s + 1e-9

    def test_burstier_than_poisson_of_equal_average_rate(
        self, templates, nsm_layout
    ):
        # 25% duty cycle: the ON/OFF process packs the same queries into a
        # quarter of the wall-clock time, so its peak rate is ~4x the average.
        on_s, off_s = 5.0, 15.0
        arrivals = onoff_arrivals(
            templates, nsm_layout, 4.0, 400, on_s=on_s, off_s=off_s, seed=11
        )
        average = offered_rate(arrivals)
        assert average == pytest.approx(1.0, rel=0.2)

    def test_deterministic(self, templates, nsm_layout):
        first = onoff_arrivals(templates, nsm_layout, 4.0, 50, 2.0, 6.0, seed=4)
        second = onoff_arrivals(templates, nsm_layout, 4.0, 50, 2.0, 6.0, seed=4)
        assert first == second

    def test_error_paths(self, templates, nsm_layout):
        with pytest.raises(ConfigurationError):
            onoff_arrivals(templates, nsm_layout, 4.0, 10, on_s=0.0, off_s=1.0)
        with pytest.raises(ConfigurationError):
            onoff_arrivals(templates, nsm_layout, 4.0, 10, on_s=1.0, off_s=-1.0)
        with pytest.raises(ConfigurationError):
            onoff_arrivals(templates, nsm_layout, -1.0, 10, on_s=1.0, off_s=1.0)


class TestOfferedRate:
    def test_short_sequences(self, templates, nsm_layout):
        arrivals = poisson_arrivals(templates, nsm_layout, 2.0, 1, seed=1)
        assert offered_rate(arrivals) == 0.0
        assert offered_rate([]) == 0.0

    def test_single_arrival_has_no_measurable_rate(self, templates, nsm_layout):
        # One arrival spans no time at all: the empirical rate is undefined
        # and must come back as 0.0, not a division error.
        arrivals = poisson_arrivals(templates, nsm_layout, 100.0, 1, seed=2)
        assert offered_rate(arrivals) == 0.0

    def test_zero_duration_window_is_infinite_rate(self, templates, nsm_layout):
        from repro.service.arrivals import Arrival
        from tests.conftest import make_request

        burst = [
            Arrival(time=5.0, spec=make_request(0, range(2))),
            Arrival(time=5.0, spec=make_request(1, range(2))),
            Arrival(time=5.0, spec=make_request(2, range(2))),
        ]
        assert offered_rate(burst) == float("inf")


class TestTraceReplay:
    @pytest.mark.parametrize("extension", ["jsonl", "csv"])
    def test_round_trip_is_exact(self, templates, nsm_layout, tmp_path, extension):
        arrivals = poisson_arrivals(templates, nsm_layout, 1.5, 25, seed=5)
        path = write_arrival_trace(arrivals, str(tmp_path / f"trace.{extension}"))
        assert replay_arrivals(path) == arrivals

    def test_round_trip_preserves_columns_and_union_ranges(
        self, tmp_path, request_factory
    ):
        spec = request_factory(
            7, [0, 1, 2, 10, 11, 40], columns=("key", "price"), cpu_per_chunk=0.125
        )
        arrivals = [Arrival(time=0.75, spec=spec)]
        for name in ("t.csv", "t.jsonl"):
            back = replay_arrivals(write_arrival_trace(arrivals, str(tmp_path / name)))
            assert back == arrivals

    @pytest.mark.parametrize("extension", ["jsonl", "csv"])
    def test_round_trip_preserves_query_class(
        self, tmp_path, request_factory, extension
    ):
        arrivals = [
            Arrival(0.0, request_factory(0, [0, 1], query_class="interactive")),
            Arrival(0.5, request_factory(1, [2, 3], query_class="batch")),
            Arrival(1.0, request_factory(2, [4])),  # default class
        ]
        path = write_arrival_trace(arrivals, str(tmp_path / f"t.{extension}"))
        back = replay_arrivals(path)
        assert back == arrivals
        assert [a.spec.query_class for a in back] == [
            "interactive", "batch", "default",
        ]

    def test_pre_class_traces_replay_into_default_class(self, tmp_path):
        # Traces written before workload classes existed have no
        # query_class field; they must replay unchanged.
        path = str(tmp_path / "legacy.jsonl")
        with open(path, "w") as handle:
            handle.write('{"time": 0.0, "query_id": 4, "chunks": "0-3"}\n')
        (arrival,) = replay_arrivals(path)
        assert arrival.spec.query_class == "default"

    def test_replay_sorts_by_time_keeping_ties_stable(self, tmp_path, request_factory):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as handle:
            handle.write('{"time": 2.0, "query_id": 1, "chunks": [0]}\n')
            handle.write('{"time": 1.0, "query_id": 2, "chunks": [1]}\n')
            handle.write('{"time": 1.0, "query_id": 3, "chunks": [2]}\n')
        arrivals = replay_arrivals(path)
        assert [a.spec.query_id for a in arrivals] == [2, 3, 1]
        assert arrivals[0].spec.name == "trace-2"  # default name

    def test_jsonl_accepts_explicit_chunk_lists(self, tmp_path):
        path = str(tmp_path / "trace.ndjson")
        with open(path, "w") as handle:
            handle.write(
                '{"time": 0.0, "query_id": 0, "chunks": [3, 1, 2],'
                ' "columns": "a;b", "cpu_per_chunk": "0.5"}\n'
            )
        (arrival,) = replay_arrivals(path)
        assert arrival.spec.chunks == (1, 2, 3)
        assert arrival.spec.columns == ("a", "b")
        assert arrival.spec.cpu_per_chunk == 0.5

    def test_replayed_trace_drives_the_service(
        self, templates, nsm_layout, small_config, tmp_path
    ):
        from repro.common.config import ServiceConfig
        from repro.service import run_service
        from repro.sim.results import scheduling_fingerprint
        from repro.sim.setup import make_nsm_abm

        arrivals = poisson_arrivals(templates, nsm_layout, 1.0, 10, seed=9)
        replayed = replay_arrivals(
            write_arrival_trace(arrivals, str(tmp_path / "trace.csv"))
        )
        service = ServiceConfig(max_concurrent=3)

        def run(sequence):
            abm = make_nsm_abm(
                nsm_layout, small_config, "relevance", capacity_chunks=8
            )
            return run_service(sequence, small_config, abm, service, record_trace=True)

        direct = run(arrivals)
        from_trace = run(replayed)
        assert scheduling_fingerprint(direct.run) == scheduling_fingerprint(
            from_trace.run
        )
        assert direct.slo == from_trace.slo

    def test_error_paths(self, tmp_path):
        with pytest.raises(ConfigurationError):
            replay_arrivals(str(tmp_path / "trace.txt"))  # unknown extension
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ConfigurationError):
            replay_arrivals(str(empty))
        missing = tmp_path / "missing.jsonl"
        missing.write_text('{"time": 1.0, "chunks": [0]}\n')  # no query_id
        with pytest.raises(ConfigurationError):
            replay_arrivals(str(missing))
        malformed = tmp_path / "bad.csv"
        malformed.write_text("time,query_id,name,chunks,columns,cpu_per_chunk\n"
                             "1.0,0,q,3-x,,0.1\n")
        with pytest.raises(ConfigurationError):
            replay_arrivals(str(malformed))
        reversed_range = tmp_path / "reversed.csv"
        reversed_range.write_text("time,query_id,name,chunks,columns,cpu_per_chunk\n"
                                  "1.0,0,q,0-2;9-7,,0.1\n")
        with pytest.raises(ConfigurationError, match="reversed chunk range"):
            replay_arrivals(str(reversed_range))
        empty_chunks = tmp_path / "empty_chunks.csv"
        empty_chunks.write_text("time,query_id,name,chunks,columns,cpu_per_chunk\n"
                                "1.0,0,q,,,0.1\n")
        # ScanRequest's own validation surfaces with the trace location too.
        with pytest.raises(ConfigurationError, match="empty_chunks.csv:2"):
            replay_arrivals(str(empty_chunks))

    def test_write_rejects_unserialisable_specs(self, tmp_path, request_factory):
        semicolon = [Arrival(time=0.0, spec=request_factory(0, [0], columns=("a;b",)))]
        with pytest.raises(ConfigurationError, match="';'"):
            write_arrival_trace(semicolon, str(tmp_path / "t.jsonl"))
        nameless = [Arrival(time=0.0, spec=request_factory(0, [0], name=""))]
        with pytest.raises(ConfigurationError, match="non-empty name"):
            write_arrival_trace(nameless, str(tmp_path / "t.csv"))
        not_json = tmp_path / "bad.jsonl"
        not_json.write_text("{broken\n")
        with pytest.raises(ConfigurationError):
            replay_arrivals(str(not_json))
