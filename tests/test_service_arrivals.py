"""Tests for the open-system arrival generators."""

import pytest

from repro.common.errors import ConfigurationError
from repro.service.arrivals import (
    offered_rate,
    onoff_arrivals,
    poisson_arrivals,
)
from repro.workload.queries import QueryFamily, QueryTemplate


@pytest.fixture
def templates():
    fast = QueryFamily("F", cpu_per_chunk=0.001)
    slow = QueryFamily("S", cpu_per_chunk=0.01)
    return (
        QueryTemplate(fast, 10),
        QueryTemplate(fast, 50),
        QueryTemplate(slow, 10),
    )


class TestPoissonArrivals:
    def test_count_and_monotone_times(self, templates, nsm_layout):
        arrivals = poisson_arrivals(templates, nsm_layout, 2.0, 50, seed=1)
        assert len(arrivals) == 50
        times = [arrival.time for arrival in arrivals]
        assert times == sorted(times)
        assert all(time > 0 for time in times)

    def test_unique_consecutive_query_ids(self, templates, nsm_layout):
        arrivals = poisson_arrivals(
            templates, nsm_layout, 2.0, 20, seed=1, first_query_id=100
        )
        ids = [arrival.spec.query_id for arrival in arrivals]
        assert ids == list(range(100, 120))

    def test_same_seed_reproduces_exactly(self, templates, nsm_layout):
        first = poisson_arrivals(templates, nsm_layout, 3.0, 30, seed=7)
        second = poisson_arrivals(templates, nsm_layout, 3.0, 30, seed=7)
        assert first == second

    def test_different_seed_differs(self, templates, nsm_layout):
        first = poisson_arrivals(templates, nsm_layout, 3.0, 30, seed=7)
        second = poisson_arrivals(templates, nsm_layout, 3.0, 30, seed=8)
        assert first != second

    def test_empirical_rate_close_to_lambda(self, templates, nsm_layout):
        rate = 4.0
        arrivals = poisson_arrivals(templates, nsm_layout, rate, 4000, seed=5)
        assert offered_rate(arrivals) == pytest.approx(rate, rel=0.1)

    def test_specs_use_template_costs(self, templates, nsm_layout):
        arrivals = poisson_arrivals(templates, nsm_layout, 2.0, 40, seed=2)
        cpu_costs = {arrival.spec.cpu_per_chunk for arrival in arrivals}
        assert cpu_costs <= {0.001, 0.01}
        # With 40 draws over 3 templates both families should appear.
        assert len(cpu_costs) == 2

    def test_start_time_offsets_all_arrivals(self, templates, nsm_layout):
        base = poisson_arrivals(templates, nsm_layout, 2.0, 10, seed=3)
        offset = poisson_arrivals(
            templates, nsm_layout, 2.0, 10, seed=3, start_time=100.0
        )
        for a, b in zip(base, offset):
            assert b.time == pytest.approx(a.time + 100.0)
            assert b.spec == a.spec

    def test_error_paths(self, templates, nsm_layout):
        with pytest.raises(ConfigurationError):
            poisson_arrivals((), nsm_layout, 2.0, 10)
        with pytest.raises(ConfigurationError):
            poisson_arrivals(templates, nsm_layout, 0.0, 10)
        with pytest.raises(ConfigurationError):
            poisson_arrivals(templates, nsm_layout, 2.0, 0)


class TestOnOffArrivals:
    def test_arrivals_only_inside_on_windows(self, templates, nsm_layout):
        on_s, off_s = 5.0, 15.0
        arrivals = onoff_arrivals(
            templates, nsm_layout, 4.0, 100, on_s=on_s, off_s=off_s, seed=11
        )
        period = on_s + off_s
        for arrival in arrivals:
            assert arrival.time % period <= on_s + 1e-9

    def test_burstier_than_poisson_of_equal_average_rate(
        self, templates, nsm_layout
    ):
        # 25% duty cycle: the ON/OFF process packs the same queries into a
        # quarter of the wall-clock time, so its peak rate is ~4x the average.
        on_s, off_s = 5.0, 15.0
        arrivals = onoff_arrivals(
            templates, nsm_layout, 4.0, 400, on_s=on_s, off_s=off_s, seed=11
        )
        average = offered_rate(arrivals)
        assert average == pytest.approx(1.0, rel=0.2)

    def test_deterministic(self, templates, nsm_layout):
        first = onoff_arrivals(templates, nsm_layout, 4.0, 50, 2.0, 6.0, seed=4)
        second = onoff_arrivals(templates, nsm_layout, 4.0, 50, 2.0, 6.0, seed=4)
        assert first == second

    def test_error_paths(self, templates, nsm_layout):
        with pytest.raises(ConfigurationError):
            onoff_arrivals(templates, nsm_layout, 4.0, 10, on_s=0.0, off_s=1.0)
        with pytest.raises(ConfigurationError):
            onoff_arrivals(templates, nsm_layout, 4.0, 10, on_s=1.0, off_s=-1.0)
        with pytest.raises(ConfigurationError):
            onoff_arrivals(templates, nsm_layout, -1.0, 10, on_s=1.0, off_s=1.0)


class TestOfferedRate:
    def test_short_sequences(self, templates, nsm_layout):
        arrivals = poisson_arrivals(templates, nsm_layout, 2.0, 1, seed=1)
        assert offered_rate(arrivals) == 0.0
        assert offered_rate([]) == 0.0

    def test_single_arrival_has_no_measurable_rate(self, templates, nsm_layout):
        # One arrival spans no time at all: the empirical rate is undefined
        # and must come back as 0.0, not a division error.
        arrivals = poisson_arrivals(templates, nsm_layout, 100.0, 1, seed=2)
        assert offered_rate(arrivals) == 0.0

    def test_zero_duration_window_is_infinite_rate(self, templates, nsm_layout):
        from repro.service.arrivals import Arrival
        from tests.conftest import make_request

        burst = [
            Arrival(time=5.0, spec=make_request(0, range(2))),
            Arrival(time=5.0, spec=make_request(1, range(2))),
            Arrival(time=5.0, spec=make_request(2, range(2))),
        ]
        assert offered_rate(burst) == float("inf")
