"""Tests for replacement policies and the classic buffer pool."""

import pytest

from repro.bufman.buffer_pool import BufferPool
from repro.bufman.replacement import (
    ClockReplacement,
    FIFOReplacement,
    LRUReplacement,
    MRUReplacement,
    make_replacement,
)
from repro.common.errors import BufferPoolError


class TestLRU:
    def test_victim_is_least_recent(self):
        lru = LRUReplacement()
        for key in "abc":
            lru.insert(key)
        lru.touch("a")
        assert lru.victim(["a", "b", "c"]) == "b"

    def test_victim_respects_candidates(self):
        lru = LRUReplacement()
        for key in "abc":
            lru.insert(key)
        assert lru.victim(["c"]) == "c"
        assert lru.victim([]) is None

    def test_double_insert_raises(self):
        lru = LRUReplacement()
        lru.insert("a")
        with pytest.raises(BufferPoolError):
            lru.insert("a")

    def test_touch_unknown_raises(self):
        with pytest.raises(BufferPoolError):
            LRUReplacement().touch("x")

    def test_remove(self):
        lru = LRUReplacement()
        lru.insert("a")
        lru.remove("a")
        assert "a" not in lru
        with pytest.raises(BufferPoolError):
            lru.remove("a")


class TestMRU:
    def test_victim_is_most_recent(self):
        mru = MRUReplacement()
        for key in "abc":
            mru.insert(key)
        mru.touch("a")
        assert mru.victim(["a", "b", "c"]) == "a"


class TestFIFO:
    def test_touch_does_not_change_order(self):
        fifo = FIFOReplacement()
        for key in "abc":
            fifo.insert(key)
        fifo.touch("a")
        assert fifo.victim(["a", "b", "c"]) == "a"


class TestClock:
    def test_second_chance(self):
        clock = ClockReplacement()
        for key in "abc":
            clock.insert(key)
        # First sweep clears reference bits, second evicts the first key.
        assert clock.victim(["a", "b", "c"]) == "a"

    def test_referenced_key_survives_one_round(self):
        clock = ClockReplacement()
        for key in "abc":
            clock.insert(key)
        clock.victim(["a", "b", "c"])  # clears + evicts "a" conceptually
        clock.touch("b")
        assert clock.victim(["b", "c"]) == "c"

    def test_remove_adjusts_hand(self):
        clock = ClockReplacement()
        for key in "abcd":
            clock.insert(key)
        clock.victim(["a", "b", "c", "d"])
        clock.remove("d")
        assert "d" not in clock


class TestFactory:
    def test_known_names(self):
        assert make_replacement("lru").name == "lru"
        assert make_replacement("MRU").name == "mru"
        assert make_replacement("clock").name == "clock"
        assert make_replacement("fifo").name == "fifo"

    def test_unknown_name(self):
        with pytest.raises(BufferPoolError):
            make_replacement("arc")


class TestBufferPool:
    def test_fetch_miss_then_hit(self):
        pool = BufferPool(capacity=2)
        loads = []
        frame = pool.fetch("p1", loader=lambda key: loads.append(key) or key)
        assert frame.payload == "p1"
        pool.unpin("p1")
        pool.fetch("p1")
        assert pool.hits == 1
        assert pool.misses == 1
        assert loads == ["p1"]

    def test_eviction_prefers_lru(self):
        pool = BufferPool(capacity=2)
        pool.fetch("a")
        pool.fetch("b")
        pool.unpin("a")
        pool.unpin("b")
        pool.fetch("a", pin=False)  # touch a
        pool.fetch("c", pin=False)
        assert "b" not in pool
        assert "a" in pool

    def test_pinned_frames_are_not_evicted(self):
        pool = BufferPool(capacity=2)
        pool.fetch("a")
        pool.fetch("b")
        pool.unpin("b")
        pool.fetch("c", pin=False)
        assert "a" in pool
        assert "b" not in pool

    def test_all_pinned_raises(self):
        pool = BufferPool(capacity=1)
        pool.fetch("a")
        with pytest.raises(BufferPoolError):
            pool.fetch("b")

    def test_unpin_errors(self):
        pool = BufferPool(capacity=2)
        with pytest.raises(BufferPoolError):
            pool.unpin("missing")
        pool.fetch("a")
        pool.unpin("a")
        with pytest.raises(BufferPoolError):
            pool.unpin("a")

    def test_explicit_evict_checks_pins(self):
        pool = BufferPool(capacity=2)
        pool.fetch("a")
        with pytest.raises(BufferPoolError):
            pool.evict("a")
        pool.unpin("a")
        pool.evict("a")
        assert "a" not in pool

    def test_hit_ratio(self):
        pool = BufferPool(capacity=4)
        pool.fetch("a", pin=False)
        pool.fetch("a", pin=False)
        assert pool.hit_ratio == pytest.approx(0.5)

    def test_clear_drops_unpinned_only(self):
        pool = BufferPool(capacity=4)
        pool.fetch("a")
        pool.fetch("b", pin=False)
        pool.clear()
        assert "a" in pool
        assert "b" not in pool

    def test_mark_dirty(self):
        pool = BufferPool(capacity=2)
        pool.fetch("a")
        pool.mark_dirty("a")
        assert pool.pinned_keys() == ["a"]
        with pytest.raises(BufferPoolError):
            pool.mark_dirty("missing")

    def test_rejects_zero_capacity(self):
        with pytest.raises(BufferPoolError):
            BufferPool(capacity=0)
