"""Unit tests for the flight recorder: events, buffers, exporters."""

import pytest

from repro.common.config import ObservabilityConfig
from repro.common.errors import ConfigurationError
from repro.obs import (
    FlightRecorder,
    TraceEvent,
    TraceRecorder,
    build_flight_recorder,
    chrome_trace,
    read_jsonl,
    to_jsonl,
    validate_chrome_trace,
)
from repro.obs.events import PH_ASYNC_BEGIN, PH_ASYNC_END, PH_COMPLETE, PH_INSTANT


class TestTraceEvent:
    def test_round_trips_through_dict(self):
        event = TraceEvent("disk.seek", "disk", PH_COMPLETE, 1.5,
                           "service", "vol0", dur=0.002, args={"chunk": 3})
        assert TraceEvent.from_dict(event.as_dict()) == event

    def test_equality_covers_all_fields(self):
        base = TraceEvent("a", "cat", PH_INSTANT, 0.0, "p", "t")
        assert base == TraceEvent("a", "cat", PH_INSTANT, 0.0, "p", "t")
        assert base != TraceEvent("b", "cat", PH_INSTANT, 0.0, "p", "t")
        assert base != TraceEvent("a", "cat", PH_INSTANT, 0.5, "p", "t")
        assert base != TraceEvent("a", "cat", PH_INSTANT, 0.0, "p", "t",
                                  args={"x": 1})

    def test_complete_span_end(self):
        event = TraceEvent("cpu.chunk", "cpu", PH_COMPLETE, 2.0,
                           "service", "cpu", dur=0.5)
        assert event.end == pytest.approx(2.5)


class TestTraceRecorder:
    def test_appends_in_emission_order(self):
        recorder = TraceRecorder()
        recorder.instant("b", "cat", 1.0, "p", "t")
        recorder.instant("a", "cat", 0.5, "p", "t")
        assert [event.name for event in recorder.events] == ["b", "a"]

    def test_caps_events_and_counts_dropped(self):
        recorder = TraceRecorder(max_events=3)
        for index in range(5):
            recorder.instant(f"e{index}", "cat", float(index), "p", "t")
        assert len(recorder) == 3
        assert recorder.dropped == 2
        assert [event.name for event in recorder.events] == ["e0", "e1", "e2"]


class TestFlightRecorder:
    def test_tracing_disabled_leaves_metrics_working(self):
        flight = FlightRecorder(ObservabilityConfig(trace=False))
        flight.instant("x", "cat", 0.0, "p", "t")
        flight.set_gauge("depth", 0.0, 2.0)
        assert flight.trace is None
        assert flight.events == []
        assert flight.metrics.gauge("depth").value == 2.0

    def test_metrics_disabled_leaves_tracing_working(self):
        flight = FlightRecorder(ObservabilityConfig(metrics=False))
        flight.set_gauge("depth", 0.0, 2.0)
        flight.inc_counter("shed", 0.0)
        flight.observe("latency", 0.0, 1.0)
        flight.instant("x", "cat", 0.0, "p", "t")
        assert flight.metrics is None
        assert [event.name for event in flight.events] == ["x"]

    def test_events_named_filters(self):
        flight = FlightRecorder()
        flight.instant("a", "cat", 0.0, "p", "t")
        flight.instant("b", "cat", 1.0, "p", "t")
        flight.instant("a", "cat", 2.0, "p", "t")
        assert len(flight.events_named("a")) == 2

    def test_summary_lines_mention_drops(self):
        flight = FlightRecorder(ObservabilityConfig(max_trace_events=1))
        flight.instant("a", "cat", 0.0, "p", "t")
        flight.instant("b", "cat", 1.0, "p", "t")
        assert any("1 dropped at cap" in line for line in flight.summary_lines())

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(max_trace_events=0)


class TestBuildFlightRecorder:
    def test_none_is_none(self):
        assert build_flight_recorder(None) is None

    def test_disabled_config_is_none(self):
        assert build_flight_recorder(ObservabilityConfig(enabled=False)) is None

    def test_config_builds_fresh_recorder(self):
        config = ObservabilityConfig(max_trace_events=7)
        flight = build_flight_recorder(config)
        assert isinstance(flight, FlightRecorder)
        assert flight.trace.max_events == 7

    def test_existing_recorder_passes_through(self):
        flight = FlightRecorder()
        assert build_flight_recorder(flight) is flight

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            build_flight_recorder(object())


def _populated_recorder() -> FlightRecorder:
    flight = FlightRecorder()
    flight.async_begin("Q0", "query", 0.0, 0, "frontdoor", "queries",
                       query_class="default")
    flight.complete("disk.seek", "disk", 0.1, 0.002, "service", "vol0",
                    chunk=1)
    flight.instant("frontdoor.arrival", "frontdoor", 0.2, "frontdoor",
                   "arrivals", query=1)
    flight.async_end("Q0", "query", 0.9, 0, "frontdoor", "queries")
    flight.set_gauge("frontdoor.mpl.active", 0.0, 1.0)
    flight.set_gauge("frontdoor.mpl.active", 0.9, 0.0)
    return flight


class TestJsonlExport:
    def test_round_trip_is_exact(self):
        flight = _populated_recorder()
        assert read_jsonl(to_jsonl(flight)) == flight.events

    def test_header_carries_schema_and_count(self):
        import json

        flight = _populated_recorder()
        header = json.loads(to_jsonl(flight).splitlines()[0])
        assert header["schema"] == "repro-trace-jsonl"
        assert header["events"] == len(flight.events)


class TestChromeTrace:
    def test_validates_and_counts_records(self):
        flight = _populated_recorder()
        payload = chrome_trace(flight)
        # 4 trace events + 2 counter samples; metadata records excluded.
        assert validate_chrome_trace(payload) == 6

    def test_labels_become_metadata_records(self):
        payload = chrome_trace(_populated_recorder())
        names = {
            record["args"]["name"]
            for record in payload["traceEvents"]
            if record["ph"] == "M" and record["name"] == "process_name"
        }
        assert names == {"frontdoor", "service", "metrics"}

    def test_timestamps_are_microseconds(self):
        payload = chrome_trace(_populated_recorder())
        seek = next(record for record in payload["traceEvents"]
                    if record.get("name") == "disk.seek")
        assert seek["ts"] == pytest.approx(0.1 * 1e6)
        assert seek["dur"] == pytest.approx(0.002 * 1e6)

    def test_rejects_unknown_phase(self):
        payload = chrome_trace(_populated_recorder())
        payload["traceEvents"].append(
            {"name": "bad", "ph": "Z", "ts": 0, "pid": 1, "tid": 1}
        )
        with pytest.raises(ValueError, match="unknown phase"):
            validate_chrome_trace(payload)

    def test_rejects_unnamed_pid(self):
        payload = chrome_trace(_populated_recorder())
        payload["traceEvents"].append(
            {"name": "orphan", "cat": "x", "ph": "i", "s": "t",
             "ts": 0.0, "pid": 99, "tid": 1}
        )
        with pytest.raises(ValueError, match="no process_name"):
            validate_chrome_trace(payload)

    def test_rejects_span_without_duration(self):
        payload = chrome_trace(_populated_recorder())
        payload["traceEvents"].append(
            {"name": "span", "cat": "x", "ph": "X", "ts": 0.0,
             "pid": 1, "tid": 1}
        )
        with pytest.raises(ValueError, match="needs dur"):
            validate_chrome_trace(payload)

    def test_rejects_async_without_id(self):
        payload = chrome_trace(_populated_recorder())
        payload["traceEvents"].append(
            {"name": "life", "cat": "x", "ph": "b", "ts": 0.0,
             "pid": 1, "tid": 1}
        )
        with pytest.raises(ValueError, match="needs an id"):
            validate_chrome_trace(payload)

    def test_rejects_missing_trace_events_array(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"foo": []})
