"""The coordinator as a real resource: cost threading + zero-cost gating.

Two halves.  The *gating* half pins the acceptance bar of the refactor:
a zero-cost :class:`CoordinatorConfig`/:class:`NetworkConfig` (the
defaults, passed implicitly or explicitly) must reproduce the legacy
free-coordinator behaviour bit for bit — same scheduling fingerprints,
same SLO dicts, no coordinator section anywhere — across NSM/DSM, every
policy and 1/4 shards.  The *costed* half checks the modeled resource
actually does something: deliveries and completions gain delay, the books
balance (ops and messages against the scatter/gather protocol), the
merged SLO report carries utilisations and saturation warnings, the
utilisation timelines validate, the lockstep frontier guard fires on
causality violations, and tracing a costed run changes nothing.
"""

from __future__ import annotations

import pytest

from repro.cluster import ShardMap, run_cluster_service
from repro.common.config import (
    ClusterConfig,
    CoordinatorConfig,
    NetworkConfig,
    ObservabilityConfig,
)
from repro.common.errors import SimulationError
from repro.metrics.timeline import validate_timeline
from repro.service.arrivals import poisson_arrivals
from repro.sim.lockstep import LockstepRunner
from repro.sim.results import scheduling_fingerprint as _fingerprint
from repro.sim.setup import make_dsm_abm, make_nsm_abm
from repro.storage.dsm import DSMTableLayout
from repro.storage.nsm import NSMTableLayout
from repro.workload.queries import QueryFamily, QueryTemplate

ARRIVAL_SEED = 41
NUM_QUERIES = 12
RATE_QPS = 1.2

#: A deliberately expensive coordinator for the costed tests.
COSTED_COORDINATOR = CoordinatorConfig(
    classify_s=0.01,
    scatter_per_subquery_s=0.005,
    gather_per_subquery_s=0.005,
    merge_per_query_s=0.01,
)
COSTED_NETWORK = NetworkConfig(
    bandwidth_bytes_per_s=10 * 1024 * 1024,
    per_message_s=0.002,
)


def _nsm_templates():
    fast = QueryFamily("F", cpu_per_chunk=0.002)
    slow = QueryFamily("S", cpu_per_chunk=0.02)
    return [QueryTemplate(fast, 25), QueryTemplate(slow, 50)]


def _dsm_templates():
    narrow = QueryFamily("F", cpu_per_chunk=0.002, columns=("key", "price"))
    wide = QueryFamily("S", cpu_per_chunk=0.02, columns=("key", "ref", "date"))
    return [QueryTemplate(narrow, 25), QueryTemplate(wide, 50)]


def _nsm_cluster(tiny_schema, small_config, shards, **cluster_kwargs):
    """(arrivals, cluster, shard_abms factory) for an NSM cluster."""
    cluster = ClusterConfig(
        shards=shards, placement="range", mpl_per_shard=2, **cluster_kwargs
    )
    tuples_per_chunk = small_config.buffer.chunk_bytes // 32
    num_chunks = 32
    global_layout = NSMTableLayout.from_buffer_config(
        tiny_schema, num_chunks * tuples_per_chunk, small_config.buffer
    )
    shard_map = ShardMap.from_cluster_config(cluster, num_chunks)
    arrivals = poisson_arrivals(
        _nsm_templates(), global_layout, RATE_QPS, NUM_QUERIES,
        seed=ARRIVAL_SEED,
    )

    def shard_abms():
        return [
            make_nsm_abm(
                NSMTableLayout.from_buffer_config(
                    tiny_schema,
                    shard_map.chunks_owned(shard) * tuples_per_chunk,
                    small_config.buffer,
                ),
                small_config,
                "relevance",
                capacity_chunks=8,
            )
            for shard in range(shards)
        ]

    return arrivals, cluster, shard_abms


def _dsm_cluster(dsm_schema, small_config, shards, **cluster_kwargs):
    """(arrivals, cluster, shard_abms factory) for a DSM cluster."""
    cluster = ClusterConfig(
        shards=shards, placement="range", mpl_per_shard=2, **cluster_kwargs
    )
    tuples_per_chunk = 25_000
    num_chunks = 32
    global_layout = DSMTableLayout(
        schema=dsm_schema,
        num_tuples=num_chunks * tuples_per_chunk,
        tuples_per_chunk=tuples_per_chunk,
        page_bytes=small_config.buffer.page_bytes,
    )
    shard_map = ShardMap.from_cluster_config(cluster, num_chunks)
    arrivals = poisson_arrivals(
        _dsm_templates(), global_layout, RATE_QPS, NUM_QUERIES,
        seed=ARRIVAL_SEED,
    )

    def shard_abms():
        abms = []
        for shard in range(shards):
            local = DSMTableLayout(
                schema=dsm_schema,
                num_tuples=shard_map.chunks_owned(shard) * tuples_per_chunk,
                tuples_per_chunk=tuples_per_chunk,
                page_bytes=small_config.buffer.page_bytes,
            )
            capacity_pages = max(64, int(local.table_pages() * 0.35))
            abms.append(
                make_dsm_abm(
                    local, small_config, "relevance",
                    capacity_pages=capacity_pages,
                )
            )
        return abms

    return arrivals, cluster, shard_abms


def _policy_cluster(tiny_schema, small_config, shards, policy, **cluster_kwargs):
    arrivals, cluster, _ = _nsm_cluster(
        tiny_schema, small_config, shards, **cluster_kwargs
    )
    tuples_per_chunk = small_config.buffer.chunk_bytes // 32
    shard_map = ShardMap.from_cluster_config(cluster, 32)

    def shard_abms():
        return [
            make_nsm_abm(
                NSMTableLayout.from_buffer_config(
                    tiny_schema,
                    shard_map.chunks_owned(shard) * tuples_per_chunk,
                    small_config.buffer,
                ),
                small_config,
                policy,
                capacity_chunks=8,
            )
            for shard in range(shards)
        ]

    return arrivals, cluster, shard_abms


class TestZeroCostDefaultsAreLegacy:
    """Default (free) configs select the legacy path, bit for bit."""

    @pytest.mark.parametrize("shards", [1, 4])
    @pytest.mark.parametrize(
        "policy", ["normal", "attach", "elevator", "relevance"]
    )
    def test_nsm_explicit_free_configs_change_nothing(
        self, tiny_schema, small_config, shards, policy
    ):
        arrivals, implicit, shard_abms = _policy_cluster(
            tiny_schema, small_config, shards, policy
        )
        explicit = ClusterConfig(
            shards=shards,
            placement="range",
            mpl_per_shard=2,
            coordinator=CoordinatorConfig(),
            network=NetworkConfig(),
        )
        assert not implicit.models_coordinator
        assert not explicit.models_coordinator
        baseline = run_cluster_service(
            arrivals, small_config, shard_abms(), implicit, record_trace=True
        )
        rerun = run_cluster_service(
            arrivals, small_config, shard_abms(), explicit, record_trace=True
        )
        for run_a, run_b in zip(baseline.shard_runs, rerun.shard_runs):
            assert _fingerprint(run_a) == _fingerprint(run_b)
        assert baseline.slo == rerun.slo
        assert baseline.slo.as_dict() == rerun.slo.as_dict()

    @pytest.mark.parametrize("shards", [1, 4])
    @pytest.mark.parametrize("policy", ["normal", "relevance"])
    def test_dsm_explicit_free_configs_change_nothing(
        self, dsm_schema, small_config, shards, policy
    ):
        arrivals, implicit, _ = _dsm_cluster(dsm_schema, small_config, shards)
        explicit = ClusterConfig(
            shards=shards,
            placement="range",
            mpl_per_shard=2,
            coordinator=CoordinatorConfig(),
            network=NetworkConfig(),
        )
        tuples_per_chunk = 25_000
        shard_map = ShardMap.from_cluster_config(implicit, 32)

        def shard_abms():
            abms = []
            for shard in range(shards):
                local = DSMTableLayout(
                    schema=dsm_schema,
                    num_tuples=shard_map.chunks_owned(shard) * tuples_per_chunk,
                    tuples_per_chunk=tuples_per_chunk,
                    page_bytes=small_config.buffer.page_bytes,
                )
                abms.append(
                    make_dsm_abm(
                        local, small_config, policy,
                        capacity_pages=max(64, int(local.table_pages() * 0.35)),
                    )
                )
            return abms

        baseline = run_cluster_service(
            arrivals, small_config, shard_abms(), implicit, record_trace=True
        )
        rerun = run_cluster_service(
            arrivals, small_config, shard_abms(), explicit, record_trace=True
        )
        for run_a, run_b in zip(baseline.shard_runs, rerun.shard_runs):
            assert _fingerprint(run_a) == _fingerprint(run_b)
        assert baseline.slo == rerun.slo

    def test_free_run_has_no_coordinator_section(
        self, tiny_schema, small_config
    ):
        arrivals, cluster, shard_abms = _nsm_cluster(
            tiny_schema, small_config, shards=2
        )
        result = run_cluster_service(
            arrivals, small_config, shard_abms(), cluster
        )
        assert result.coordinator is None
        assert result.slo.coordinator is None
        assert result.coordinator_timelines == {}
        assert not any(
            key.startswith("coordinator_") for key in result.slo.as_dict()
        )


class TestCostedCoordinator:
    def _run(self, tiny_schema, small_config, shards=2, obs=None, **costs):
        arrivals, cluster, shard_abms = _nsm_cluster(
            tiny_schema, small_config, shards,
            coordinator=costs.pop("coordinator", COSTED_COORDINATOR),
            network=costs.pop("network", COSTED_NETWORK),
        )
        assert cluster.models_coordinator
        return run_cluster_service(
            arrivals, small_config, shard_abms(), cluster, obs=obs
        )

    def test_costed_run_completes_every_query(self, tiny_schema, small_config):
        result = self._run(tiny_schema, small_config)
        assert len(result.records) == NUM_QUERIES
        assert result.slo.completed == NUM_QUERIES

    def test_coordinator_delay_shows_in_latencies(
        self, tiny_schema, small_config
    ):
        arrivals, free_cluster, shard_abms = _nsm_cluster(
            tiny_schema, small_config, shards=2
        )
        free = run_cluster_service(
            arrivals, small_config, shard_abms(), free_cluster
        )
        costed = self._run(tiny_schema, small_config)
        free_by_id = {record.query_id: record for record in free.records}
        for record in costed.records:
            twin = free_by_id[record.query_id]
            # Gather messages + gather/merge CPU push every completion
            # strictly past its free-coordinator twin.
            assert record.finish_time > twin.finish_time
            assert record.execution_latency > 0.0
        assert costed.slo.latency.mean > free.slo.latency.mean
        assert costed.slo.duration >= free.slo.duration

    def test_books_balance_with_the_protocol(self, tiny_schema, small_config):
        result = self._run(tiny_schema, small_config)
        section = result.coordinator
        assert section is not None
        subqueries = sum(record.num_subqueries for record in result.records)
        # One scatter CPU charge per admitted query, one gather charge per
        # sub-query completion.
        assert section.cpu_ops == len(result.records) + subqueries
        # The coordinator NIC carries every scatter out and every gather in.
        assert section.nic_messages == 2 * subqueries
        expected_bytes = subqueries * (
            COSTED_NETWORK.scatter_message_bytes
            + COSTED_NETWORK.gather_message_bytes
        )
        assert section.nic_bytes == expected_bytes
        assert 0.0 < section.cpu_utilisation <= 1.0
        assert 0.0 < section.nic_utilisation <= 1.0

    def test_slo_dict_carries_the_coordinator_section(
        self, tiny_schema, small_config
    ):
        result = self._run(tiny_schema, small_config)
        as_dict = result.slo.as_dict()
        assert as_dict["coordinator_cpu_utilisation"] == (
            result.coordinator.cpu_utilisation
        )
        assert as_dict["coordinator_nic_messages"] == (
            result.coordinator.nic_messages
        )
        assert "coordinator_warnings" in as_dict

    def test_timelines_come_back_validated_and_nonempty(
        self, tiny_schema, small_config
    ):
        result = self._run(tiny_schema, small_config)
        assert result.coordinator_timelines["coordinator_cpu"]
        assert result.coordinator_timelines["coordinator_nic"]
        for name, points in result.coordinator_timelines.items():
            validate_timeline(points, where=name)

    def test_saturated_coordinator_is_blamed(self, tiny_schema, small_config):
        result = self._run(
            tiny_schema,
            small_config,
            coordinator=CoordinatorConfig(
                classify_s=2.0,
                scatter_per_subquery_s=0.8,
                gather_per_subquery_s=0.8,
                merge_per_query_s=0.8,
                queue_delay_warn_s=0.25,
            ),
            network=COSTED_NETWORK,
        )
        section = result.coordinator
        assert section.saturated
        assert section.cpu_utilisation >= 0.9
        assert any("bottleneck" in warning for warning in section.warnings)

    def test_determinism(self, tiny_schema, small_config):
        first = self._run(tiny_schema, small_config)
        second = self._run(tiny_schema, small_config)
        for run_a, run_b in zip(first.shard_runs, second.shard_runs):
            assert _fingerprint(run_a) == _fingerprint(run_b)
        assert first.slo == second.slo
        assert first.coordinator == second.coordinator

    def test_tracing_a_costed_run_changes_nothing(
        self, tiny_schema, small_config
    ):
        plain = self._run(tiny_schema, small_config)
        traced = self._run(
            tiny_schema, small_config, obs=ObservabilityConfig()
        )
        for run_a, run_b in zip(plain.shard_runs, traced.shard_runs):
            assert _fingerprint(run_a) == _fingerprint(run_b)
        assert plain.slo.as_dict() == traced.slo.as_dict()
        assert plain.coordinator == traced.coordinator

    def test_costed_run_emits_coordinator_trace_events(
        self, tiny_schema, small_config
    ):
        result = self._run(
            tiny_schema, small_config, obs=ObservabilityConfig()
        )
        recorder = result.obs
        assert recorder.events_named("coordinator.cpu.scatter")
        assert recorder.events_named("coordinator.net.scatter")
        assert recorder.events_named("coordinator.net.gather")
        gather_merges = recorder.events_named("coordinator.cpu.gather-merge")
        assert len(gather_merges) == NUM_QUERIES
        assert "coordinator.cpu.util" in recorder.metrics.names()
        assert "coordinator.nic.util" in recorder.metrics.names()

    def test_records_order_and_mpl_timeline_stay_valid(
        self, tiny_schema, small_config
    ):
        result = self._run(tiny_schema, small_config)
        validate_timeline(result.mpl_timeline, where="costed MPL timeline")
        ids = [record.query_id for record in result.records]
        assert ids == sorted(ids)


class _StuckSimulator:
    """Minimal ScanSimulator stand-in whose first event is at ``when``."""

    flight_recorder = None

    def __init__(self, when: float) -> None:
        self.when = when
        self.stepped = False

    def begin_run(self):
        pass

    def is_done(self):
        return self.stepped

    def next_step_time(self):
        return self.when

    def step(self, now):
        self.stepped = True

    def finish(self):
        return None

    def progress_summary(self):
        return "stub"


class _FrozenMessages:
    def __init__(self, due: float) -> None:
        self.due = due

    def earliest_in_flight(self):
        return self.due


class TestLockstepMessageGuard:
    def test_frontier_may_not_pass_an_undelivered_message(self):
        runner = LockstepRunner(
            [_StuckSimulator(when=5.0)],
            message_source=_FrozenMessages(due=1.0),
        )
        with pytest.raises(SimulationError, match="undelivered"):
            runner.run()

    def test_messages_at_the_frontier_are_fine(self):
        runner = LockstepRunner(
            [_StuckSimulator(when=5.0)],
            message_source=_FrozenMessages(due=5.0),
        )
        assert runner.run() == [None]

    def test_no_message_source_is_the_legacy_path(self):
        runner = LockstepRunner([_StuckSimulator(when=5.0)])
        assert runner.run() == [None]
