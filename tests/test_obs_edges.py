"""Edge-case pins for the observability helpers.

The empty-input paths of :class:`repro.obs.metrics.Histogram` and
:class:`repro.obs.profile.SchedulerProfile` are load-bearing for postmortem
reports on idle runs (a class with zero completions, a cluster merge over
zero shards); these tests pin the all-zeros behaviour so a refactor can't
silently reintroduce a division by zero.
"""

from __future__ import annotations

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.profile import (
    PhaseStats,
    SchedulerProfile,
    render_scheduler_profile,
)


class TestEmptyHistogram:
    def test_summary_on_zero_observations_is_all_zeros(self):
        summary = Histogram("lat").summary()
        assert summary.count == 0
        assert summary.mean == 0.0
        assert summary.p50 == 0.0
        assert summary.p95 == 0.0
        assert summary.p99 == 0.0
        assert summary.minimum == 0.0
        assert summary.maximum == 0.0

    def test_registry_as_dict_with_empty_histogram(self):
        registry = MetricsRegistry()
        registry.histogram("lat")
        registry.counter("hits")
        payload = registry.as_dict()
        assert payload["lat"] == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0,
        }
        assert payload["hits"] == 0.0

    def test_observing_after_empty_summary_still_works(self):
        histogram = Histogram("lat")
        assert histogram.summary().count == 0
        histogram.observe(0.0, 2.0)
        summary = histogram.summary()
        assert summary.count == 1
        assert summary.maximum == 2.0


class TestSchedulerProfileEdges:
    def test_merge_of_zero_profiles_is_empty(self):
        merged = SchedulerProfile.merge([])
        assert merged.phases == {}
        assert merged.total_calls == 0
        assert merged.total_seconds == 0.0
        assert merged.per_decision_seconds == 0.0
        assert merged.recorder_overhead_seconds == 0.0

    def test_render_empty_profile_produces_sane_table(self):
        table = render_scheduler_profile(SchedulerProfile.merge([]))
        assert "total" in table
        assert "0.000" in table
        # No per-phase rows, no crash, still a framed table.
        assert "phase" in table and "per-call" in table

    def test_per_call_seconds_with_zero_calls(self):
        assert PhaseStats().per_call_seconds == 0.0

    def test_phase_lookup_on_missing_name(self):
        profile = SchedulerProfile()
        stats = profile.phase("select_chunk")
        assert stats.calls == 0 and stats.seconds == 0.0

    def test_merge_is_associative_with_empty(self):
        profile = SchedulerProfile.from_counts(
            {"select_chunk": 4}, {"select_chunk": 0.002}
        )
        merged = SchedulerProfile.merge([SchedulerProfile.merge([]), profile])
        assert merged.total_calls == 4
        assert merged.per_decision_seconds == profile.per_decision_seconds

    def test_as_dict_on_empty_profile(self):
        payload = SchedulerProfile().as_dict()
        assert payload["total_calls"] == 0
        assert payload["per_decision_seconds"] == 0.0
        assert payload["phases"] == {}
